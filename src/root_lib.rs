//! Workspace root helper crate; see `loopapalooza` for the real API.
pub use loopapalooza as lp;
