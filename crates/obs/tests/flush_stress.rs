//! Loom-free stress tests for concurrent metric flushing: N worker
//! threads, each accumulating M increments/samples/spans into a private
//! `LocalStats` and flushing once, must sum **exactly** into the shared
//! registry — no lost updates, no double counts, no racing on a shared
//! summary. Also hammers the legacy direct-to-registry path to show the
//! two coexist.

use lp_obs::{Counter, Hist, LocalStats, Registry, SpanRecord};
use std::sync::Arc;

const WORKERS: usize = 8;
const INCREMENTS: u64 = 10_000;

#[test]
fn n_threads_times_m_increments_sum_exactly_via_local_flush() {
    let reg = Arc::new(Registry::new());
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                let mut local = LocalStats::new();
                for i in 0..INCREMENTS {
                    local.add(Counter::EvalsPerformed, 1);
                    local.add(Counter::SweepTasksStolen, 2);
                    local.record_hist(Hist::EvalNanos, i % 1024);
                    if i % 1000 == 0 {
                        local.record_span(SpanRecord {
                            name: "stress",
                            start_ns: i,
                            end_ns: i + 1,
                            depth: 0,
                            tid: worker as u64,
                        });
                    }
                }
                local.flush(&reg);
            });
        }
    });
    let n = WORKERS as u64;
    assert_eq!(reg.counters().get(Counter::EvalsPerformed), n * INCREMENTS);
    assert_eq!(
        reg.counters().get(Counter::SweepTasksStolen),
        2 * n * INCREMENTS
    );
    let hist = reg.hist(Hist::EvalNanos);
    assert_eq!(hist.count, n * INCREMENTS);
    // Each worker's samples are 0..M mod 1024, so the merged sum is
    // exactly N times one worker's arithmetic series.
    let per_worker: u64 = (0..INCREMENTS).map(|i| i % 1024).sum();
    assert_eq!(hist.sum, n * per_worker);
    assert_eq!(hist.min, 0);
    assert_eq!(hist.max, 1023);
    // One span per 1000 increments per worker, all retained.
    assert_eq!(reg.spans().len(), WORKERS * (INCREMENTS as usize / 1000));
    assert_eq!(reg.counters().get(Counter::SpansDropped), 0);
}

#[test]
fn interleaved_local_and_direct_recording_still_sums_exactly() {
    let reg = Arc::new(Registry::new());
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                let mut local = LocalStats::new();
                for i in 0..INCREMENTS {
                    if i % 2 == 0 {
                        local.add(Counter::RawConflicts, 1);
                    } else {
                        // The legacy path: straight at the shared bank.
                        reg.counters().add(Counter::RawConflicts, 1);
                    }
                }
                local.flush(&reg);
            });
        }
    });
    assert_eq!(
        reg.counters().get(Counter::RawConflicts),
        WORKERS as u64 * INCREMENTS
    );
}

#[test]
fn concurrent_batch_span_appends_respect_capacity_exactly() {
    const CAP: usize = 1_000;
    let reg = Arc::new(Registry::with_capacity(CAP));
    let per_worker = 300usize;
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                let batch: Vec<SpanRecord> = (0..per_worker)
                    .map(|i| SpanRecord {
                        name: "batch",
                        start_ns: i as u64,
                        end_ns: i as u64 + 1,
                        depth: 0,
                        tid: w as u64,
                    })
                    .collect();
                reg.record_spans(batch);
            });
        }
    });
    let total = WORKERS * per_worker;
    assert_eq!(reg.spans().len(), CAP, "capacity must bound retention");
    assert_eq!(
        reg.counters().get(Counter::SpansDropped) as usize,
        total - CAP,
        "every span is either retained or counted dropped"
    );
}

#[test]
fn tree_merge_then_single_flush_is_equivalent_to_per_worker_flushes() {
    let reg_a = Registry::new();
    let reg_b = Registry::new();
    let locals: Vec<LocalStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                scope.spawn(move || {
                    let mut local = LocalStats::new();
                    for i in 0..500u64 {
                        local.add(Counter::SweepProfileCacheHits, 1);
                        local.record_hist(Hist::ConflictDistance, (w as u64 + 1) * (i % 7));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Path A: merge everything into one accumulator, flush once.
    let mut root = LocalStats::new();
    for l in &locals {
        root.merge(l);
    }
    root.flush(&reg_a);
    // Path B: flush each worker's accumulator separately.
    for mut l in locals {
        l.flush(&reg_b);
    }
    assert_eq!(
        reg_a.counters().get(Counter::SweepProfileCacheHits),
        reg_b.counters().get(Counter::SweepProfileCacheHits)
    );
    let (ha, hb) = (
        reg_a.hist(Hist::ConflictDistance),
        reg_b.hist(Hist::ConflictDistance),
    );
    assert_eq!(ha.count, hb.count);
    assert_eq!(ha.sum, hb.sum);
    assert_eq!((ha.min, ha.max), (hb.min, hb.max));
    assert_eq!(ha.buckets, hb.buckets);
}
