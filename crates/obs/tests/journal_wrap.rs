//! Ring wraparound under concurrent writers: once the flight recorder
//! has wrapped several times over, the dump must still be well-formed
//! JSON, the bookkeeping totals must be exact, and each writer's
//! retained records must form the *contiguous tail* of its own sequence
//! (the ring drops oldest-first, so no writer's history can have holes).

use lp_obs::export::JsonValue;
use lp_obs::journal::{EventKind, Journal, JournalRecord, JOURNAL_CAP};
use std::sync::{Arc, Barrier};

/// Writers and per-writer record count, chosen so the ring wraps twice.
const WRITERS: usize = 8;
const PER_WRITER: usize = JOURNAL_CAP / 4 * 3; // 8 * 3072 = 24576 >> 4096

#[test]
fn concurrent_writers_past_capacity_keep_the_dump_coherent() {
    let journal = Arc::new(Journal::with_capacity(JOURNAL_CAP));
    let start = Arc::new(Barrier::new(WRITERS));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let journal = Arc::clone(&journal);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                for seq in 0..PER_WRITER {
                    journal.record(JournalRecord {
                        ms: 0,
                        tid: w as u16,
                        kind: EventKind::Mark,
                        a: seq as u64,
                        b: w as u64,
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread panicked");
    }

    let (total, records) = journal.snapshot();
    assert_eq!(total, (WRITERS * PER_WRITER) as u64);
    assert_eq!(records.len(), JOURNAL_CAP);

    // Per-writer coherence: eviction is strictly oldest-first in global
    // insertion order, and each writer's records enter in sequence
    // order — so whatever a writer still has must be a contiguous run
    // of its sequence numbers ending at its last write. (A writer that
    // finished long before the others may legitimately have nothing
    // left.) A hole or an out-of-order pair would mean the wraparound
    // dropped records from the middle instead of the front.
    let mut survivors = 0;
    for w in 0..WRITERS {
        let seqs: Vec<u64> = records
            .iter()
            .filter(|r| r.tid == w as u16)
            .map(|r| r.a)
            .collect();
        if seqs.is_empty() {
            continue;
        }
        survivors += 1;
        for pair in seqs.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "writer {w} has a hole: {pair:?}");
        }
        assert_eq!(
            *seqs.last().expect("non-empty"),
            (PER_WRITER - 1) as u64,
            "writer {w} lost its newest records"
        );
    }
    assert!(survivors >= 1, "a full ring must retain someone's records");

    // The dump must stay machine-readable and agree with the snapshot.
    let dump = journal.dump_json();
    let doc = JsonValue::parse(&dump).expect("dump is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("lp-journal-v1")
    );
    assert_eq!(
        doc.get("total_recorded").and_then(JsonValue::as_u64),
        Some(total)
    );
    assert_eq!(
        doc.get("retained").and_then(JsonValue::as_u64),
        Some(JOURNAL_CAP as u64)
    );
    let dumped = doc
        .get("records")
        .and_then(JsonValue::as_array)
        .expect("records array");
    assert_eq!(dumped.len(), JOURNAL_CAP);
    // Spot-check the dump preserves snapshot order record-for-record.
    for (rec, json) in records.iter().zip(dumped) {
        assert_eq!(
            json.get("tid").and_then(JsonValue::as_u64),
            Some(u64::from(rec.tid))
        );
        assert_eq!(json.get("a").and_then(JsonValue::as_u64), Some(rec.a));
    }
}

#[test]
fn exactly_full_ring_reports_every_record_once() {
    let journal = Journal::with_capacity(JOURNAL_CAP);
    for seq in 0..JOURNAL_CAP {
        journal.record(JournalRecord {
            ms: 0,
            tid: 0,
            kind: EventKind::Mark,
            a: seq as u64,
            b: 0,
        });
    }
    let (total, records) = journal.snapshot();
    assert_eq!(total, JOURNAL_CAP as u64);
    let seqs: Vec<u64> = records.iter().map(|r| r.a).collect();
    assert_eq!(seqs, (0..JOURNAL_CAP as u64).collect::<Vec<_>>());
}
