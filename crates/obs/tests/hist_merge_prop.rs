//! Property tests for histogram merging and percentile math — the
//! invariant the sweep engine's per-worker `LocalStats` single-flush
//! path relies on: partitioning a sample stream across N workers, each
//! recording into a private `Histogram`, and merging the parts must be
//! *indistinguishable* from recording every sample into one histogram.
//! In particular p50/p90/p99 (what every exporter prints) must match
//! exactly, not just approximately, because the merge adds bucket
//! counts and the percentile walk only looks at buckets, count, min,
//! and max.

use lp_obs::{Hist, Histogram, Registry};
use proptest::prelude::*;

/// Sample values spanning several buckets, including the 0/1 shared
/// bucket and values far enough apart to exercise min/max clamping.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..4).boxed(),
            (4u64..1024).boxed(),
            (1024u64..1_000_000).boxed(),
            (u64::MAX - 1000..u64::MAX).boxed(),
        ],
        1..200,
    )
}

/// Cut points partitioning the stream into up to 8 worker shards.
fn partition() -> impl Strategy<Value = (Vec<u64>, usize)> {
    (samples(), 1usize..8).prop_map(|(s, n)| (s, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merging_worker_histograms_equals_one_combined_histogram(
        part in partition()
    ) {
        let (values, workers) = part;
        // One histogram over the whole stream...
        let mut combined = Histogram::default();
        for &v in &values {
            combined.record(v);
        }
        // ...versus per-worker shards merged pairwise (round-robin
        // assignment, like the sweep's work-stealing index).
        let mut shards: Vec<Histogram> = (0..workers).map(|_| Histogram::default()).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % workers].record(v);
        }
        let mut merged = Histogram::default();
        for shard in &shards {
            merged.merge(shard);
        }

        prop_assert_eq!(merged.buckets, combined.buckets);
        prop_assert_eq!(merged.count, combined.count);
        prop_assert_eq!(merged.sum, combined.sum);
        prop_assert_eq!(merged.min, combined.min);
        prop_assert_eq!(merged.max, combined.max);
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(merged.percentile(p), combined.percentile(p));
        }
        prop_assert_eq!(merged.quantile_summary(), combined.quantile_summary());
    }

    #[test]
    fn merge_order_is_irrelevant(values in samples()) {
        let mid = values.len() / 2;
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for &v in &values[..mid] {
            a.record(v);
        }
        for &v in &values[mid..] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.quantile_summary(), ba.quantile_summary());
        prop_assert_eq!(ab.buckets, ba.buckets);
        prop_assert_eq!((ab.count, ab.sum, ab.min, ab.max), (ba.count, ba.sum, ba.min, ba.max));
    }

    #[test]
    fn registry_merge_hist_matches_local_accumulation(values in samples()) {
        // The actual flush path: a local accumulator folded into a
        // registry slot via `Registry::merge_hist` must leave the slot
        // identical to having recorded every sample there directly.
        let mut local = Histogram::default();
        for &v in &values {
            local.record(v);
        }
        let reg = Registry::new();
        reg.record_hist(Hist::EvalNanos, 7);
        reg.merge_hist(Hist::EvalNanos, &local);
        let merged = reg.hist(Hist::EvalNanos);
        let mut direct = Histogram::default();
        direct.record(7);
        for &v in &values {
            direct.record(v);
        }
        prop_assert_eq!(merged.buckets, direct.buckets);
        prop_assert_eq!((merged.count, merged.sum, merged.min, merged.max),
                        (direct.count, direct.sum, direct.min, direct.max));
        prop_assert_eq!(merged.quantile_summary(), direct.quantile_summary());
    }
}
