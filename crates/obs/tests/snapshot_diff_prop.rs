//! Property tests for the cross-run layer: snapshot JSON must
//! round-trip *exactly* (the diff engine compares two documents that
//! may have crossed a filesystem and a CI artifact store), a snapshot
//! diffed against itself must be silent, and swapping the operands must
//! flip a diff without changing what it flags.

use lp_obs::diff::{diff, DiffOptions};
use lp_obs::{Histogram, RunSnapshot};
use proptest::prelude::*;

/// A histogram built the only way production code builds one: by
/// recording samples (keeps count/sum/min/max consistent with buckets).
fn hist() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(
        prop_oneof![
            (0u64..4).boxed(),
            (4u64..100_000).boxed(),
            (u64::MAX - 100..u64::MAX).boxed(),
        ],
        0..60,
    )
    .prop_map(|samples| {
        let mut h = Histogram::default();
        for v in samples {
            h.record(v);
        }
        h
    })
}

/// Sorts `(name, payload)` pairs and drops duplicate names — the real
/// capture path guarantees unique names via `Counter::all`.
fn dedup<T>(mut pairs: Vec<(String, T)>) -> Vec<(String, T)> {
    pairs.sort_by(|x, y| x.0.cmp(&y.0));
    pairs.dedup_by(|a, b| a.0 == b.0);
    pairs
}

/// Named counter values drawn from a small id space (so two generated
/// snapshots share some names and disagree on others).
fn counters() -> impl Strategy<Value = Vec<(String, u64)>> {
    prop::collection::vec((0u8..40, any::<u64>()), 0..12).prop_map(|pairs| {
        dedup(
            pairs
                .into_iter()
                .map(|(id, v)| (format!("ctr_{id:02}"), v))
                .collect(),
        )
    })
}

/// Named histograms drawn from a small id space.
fn hists() -> impl Strategy<Value = Vec<(String, Histogram)>> {
    prop::collection::vec((0u8..10, hist()), 0..5).prop_map(|pairs| {
        dedup(
            pairs
                .into_iter()
                .map(|(id, h)| (format!("hist_{id:02}"), h))
                .collect(),
        )
    })
}

/// An arbitrary-but-plausible snapshot: unique names, free counter
/// values, recorded histograms, and free ring totals.
fn snapshot() -> impl Strategy<Value = RunSnapshot> {
    (
        (0u32..1000, counters(), hists()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((p, counters, hists), (spans_retained, journal_total, journal_retained))| {
                RunSnapshot {
                    process: format!("proc{p}"),
                    counters,
                    hists,
                    spans_retained,
                    journal_total,
                    journal_retained,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn snapshot_json_round_trips_exactly(snap in snapshot()) {
        let json = snap.to_json();
        let back = RunSnapshot::from_json(&json).expect("own output must parse");
        prop_assert_eq!(&back, &snap);
        // And the round trip is a fixed point: re-serialising the
        // parsed snapshot reproduces the document byte-for-byte.
        prop_assert_eq!(back.to_json(), json);
    }

    #[test]
    fn self_diff_is_always_empty(snap in snapshot()) {
        let d = diff(&snap, &snap, &DiffOptions::default());
        prop_assert!(d.is_empty(), "self-diff flagged: {}", d.render());
        prop_assert_eq!(d.significant(), 0);
    }

    #[test]
    fn diff_is_antisymmetric(a in snapshot(), b in snapshot()) {
        let opts = DiffOptions::default();
        let ab = diff(&a, &b, &opts);
        let ba = diff(&b, &a, &opts);
        prop_assert_eq!(ab.significant(), ba.significant());

        // Counter deltas mirror exactly: same names, operands swapped,
        // identical relative delta and significance.
        let mut fwd: Vec<_> = ab.counters.iter()
            .map(|c| (c.name.clone(), c.a, c.b, c.significant))
            .collect();
        let mut rev: Vec<_> = ba.counters.iter()
            .map(|c| (c.name.clone(), c.b, c.a, c.significant))
            .collect();
        fwd.sort();
        rev.sort();
        prop_assert_eq!(fwd, rev);

        // Histogram deltas mirror too, with per-bucket z-scores negated.
        let mut hfwd: Vec<_> = ab.hists.iter()
            .map(|h| (h.name.clone(), h.count_a, h.count_b, h.significant))
            .collect();
        let mut hrev: Vec<_> = ba.hists.iter()
            .map(|h| (h.name.clone(), h.count_b, h.count_a, h.significant))
            .collect();
        hfwd.sort();
        hrev.sort();
        prop_assert_eq!(hfwd, hrev);
        for h in &ab.hists {
            let Some(mirror) = ba.hists.iter().find(|m| m.name == h.name) else {
                prop_assert!(false, "hist {} missing from the reverse diff", h.name);
                continue;
            };
            for bd in &h.buckets {
                let Some(mb) = mirror.buckets.iter().find(|m| m.bucket == bd.bucket) else {
                    prop_assert!(false, "bucket {} missing from the reverse diff", bd.bucket);
                    continue;
                };
                prop_assert!((bd.z + mb.z).abs() < 1e-12,
                    "bucket z not negated: {} vs {}", bd.z, mb.z);
            }
        }
    }
}
