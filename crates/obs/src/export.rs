//! Exporters: human-readable summary, machine-readable JSON, and Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` or Perfetto).
//!
//! All JSON is emitted by hand — the workspace has no serde — via a
//! strict string escaper, and the Chrome output uses the object form
//! (`{"traceEvents": [...]}`) with complete-event (`ph: "X"`) spans,
//! one metadata (`ph: "M"`) process-name record, and a final counter
//! (`ph: "C"`) sample carrying every non-zero pipeline counter.

use crate::metrics::Hist;
use crate::registry::Registry;
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Strict JSON validation via a small recursive-descent parser — the
/// workspace has no serde, so every hand-rolled exporter is checked
/// against this in tests and in the binaries' `--explain-out` smoke
/// paths.
///
/// # Errors
/// Returns a short description of the first syntax error, or of trailing
/// garbage after the top-level value.
pub fn validate_json(text: &str) -> Result<(), String> {
    let rest = parse_value(text)?;
    let rest = skip_ws(rest);
    if rest.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "trailing garbage: {:?}",
            &rest[..rest.len().min(24)]
        ))
    }
}

fn skip_ws(s: &str) -> &str {
    s.trim_start_matches([' ', '\t', '\n', '\r'])
}

fn parse_value(s: &str) -> Result<&str, String> {
    let s = skip_ws(s);
    match s.chars().next() {
        Some('{') => parse_object(s),
        Some('[') => parse_array(s),
        Some('"') => parse_string(s),
        Some('t') => s.strip_prefix("true").ok_or_else(|| bad(s)),
        Some('f') => s.strip_prefix("false").ok_or_else(|| bad(s)),
        Some('n') => s.strip_prefix("null").ok_or_else(|| bad(s)),
        Some(c) if c == '-' || c.is_ascii_digit() => parse_number(s),
        _ => Err(bad(s)),
    }
}

fn bad(s: &str) -> String {
    format!("unexpected input at {:?}", &s[..s.len().min(24)])
}

fn parse_string(s: &str) -> Result<&str, String> {
    if !s.starts_with('"') {
        return Err(bad(s));
    }
    let mut it = s.char_indices().skip(1);
    while let Some((i, c)) = it.next() {
        match c {
            '"' => return Ok(&s[i + 1..]),
            '\\' => {
                let (_, esc) = it.next().ok_or("truncated escape")?;
                if esc == 'u' {
                    for _ in 0..4 {
                        let (_, h) = it.next().ok_or("truncated \\u escape")?;
                        if !h.is_ascii_hexdigit() {
                            return Err(format!("bad hex digit {h:?}"));
                        }
                    }
                } else if !matches!(esc, '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') {
                    return Err(format!("bad escape \\{esc}"));
                }
            }
            c if (c as u32) < 0x20 => return Err("raw control char in string".into()),
            _ => {}
        }
    }
    Err("unterminated string".into())
}

fn parse_number(s: &str) -> Result<&str, String> {
    let end = s
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(s.len());
    s[..end].parse::<f64>().map_err(|e| e.to_string())?;
    Ok(&s[end..])
}

fn parse_array(s: &str) -> Result<&str, String> {
    let mut s = skip_ws(&s[1..]);
    if let Some(rest) = s.strip_prefix(']') {
        return Ok(rest);
    }
    loop {
        s = skip_ws(parse_value(s)?);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s.strip_prefix(']').ok_or_else(|| bad(s));
        }
    }
}

fn parse_object(s: &str) -> Result<&str, String> {
    let mut s = skip_ws(&s[1..]);
    if let Some(rest) = s.strip_prefix('}') {
        return Ok(rest);
    }
    loop {
        s = skip_ws(s);
        s = parse_string(s)?;
        s = skip_ws(s).strip_prefix(':').ok_or("missing colon")?;
        s = skip_ws(parse_value(s)?);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s.strip_prefix('}').ok_or_else(|| bad(s));
        }
    }
}

/// Per-name span aggregate used by [`summary`].
#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

fn aggregate(spans: &[SpanRecord]) -> BTreeMap<&'static str, SpanAgg> {
    let mut by_name: BTreeMap<&'static str, SpanAgg> = BTreeMap::new();
    for s in spans {
        let agg = by_name.entry(s.name).or_default();
        agg.count += 1;
        agg.total_ns += s.duration_ns();
        agg.max_ns = agg.max_ns.max(s.duration_ns());
    }
    by_name
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The human-readable run summary (what `--trace-out`-less binaries print
/// to stderr at exit when logging is enabled).
#[must_use]
pub fn summary(reg: &Registry) -> String {
    let spans = reg.spans();
    let mut out = String::from("== observability summary ==\n");
    if spans.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        let mut rows: Vec<(&'static str, SpanAgg)> = aggregate(&spans).into_iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1.total_ns));
        out.push_str("phase spans (by total time):\n");
        for (name, agg) in rows {
            let mean = agg.total_ns / agg.count.max(1);
            let _ = writeln!(
                out,
                "  {name:<12} x{:<6} total {:>10}  mean {:>10}  max {:>10}",
                agg.count,
                fmt_ns(agg.total_ns),
                fmt_ns(mean),
                fmt_ns(agg.max_ns),
            );
        }
    }
    let counters = reg.counters().snapshot();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in counters {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
    }
    for h in Hist::ALL {
        let hist = reg.hist(h);
        if hist.count > 0 {
            let (p50, p90, p99) = hist.quantile_summary();
            let _ = writeln!(
                out,
                "hist {:<20} n={} mean={:.1} min={} max={} p50<={p50} p90<={p90} p99<={p99}",
                h.name(),
                hist.count,
                hist.mean(),
                hist.min,
                hist.max,
            );
        }
    }
    out
}

/// Machine-readable JSON snapshot of spans, counters, and histograms.
#[must_use]
pub fn to_json(reg: &Registry) -> String {
    let mut out = String::from("{\"spans\":[");
    for (i, s) in reg.spans().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"depth\":{},\"tid\":{}}}",
            json_escape(s.name),
            s.start_ns,
            s.end_ns,
            s.depth,
            s.tid
        );
    }
    out.push_str("],\"counters\":{");
    for (i, (name, value)) in reg.counters().snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(name), value);
    }
    out.push_str("},\"histograms\":{");
    let mut first = true;
    for h in Hist::ALL {
        let hist = reg.hist(h);
        if hist.count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
            h.name(),
            hist.count,
            hist.sum,
            hist.min,
            hist.max,
            hist.mean()
        );
    }
    out.push_str("}}");
    out
}

/// Chrome `trace_event` JSON for the registry's spans and counters.
///
/// Timestamps are microseconds since the registry epoch; spans become
/// complete events (`ph: "X"`), and the snapshot of every non-zero
/// counter rides along both as a `ph: "C"` counter sample and inside
/// `otherData` for tools that read the object wrapper.
#[must_use]
pub fn chrome_trace(reg: &Registry, process_name: &str) -> String {
    let spans = reg.spans();
    let mut out = String::from("{\"traceEvents\":[");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        json_escape(process_name)
    );
    let mut last_ts = 0.0f64;
    for s in &spans {
        let ts = s.start_ns as f64 / 1e3;
        let dur = s.duration_ns() as f64 / 1e3;
        last_ts = last_ts.max(s.end_ns as f64 / 1e3);
        let _ = write!(
            out,
            ",{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":1,\"tid\":{}}}",
            json_escape(s.name),
            s.tid
        );
    }
    let counters = reg.counters().snapshot();
    if !counters.is_empty() {
        let mut args = String::new();
        for (i, (name, value)) in counters.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":{}", json_escape(name), value);
        }
        let _ = write!(
            out,
            ",{{\"name\":\"lp_counters\",\"ph\":\"C\",\"ts\":{last_ts},\"pid\":1,\
             \"args\":{{{args}}}}}"
        );
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{{args}}}}}"
        ));
    } else {
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{}}");
    }
    out
}

/// Writes the global registry's Chrome trace to `path`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_chrome_trace(path: &std::path::Path, process_name: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(crate::registry::global(), process_name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Counter;

    fn seeded() -> Registry {
        let reg = Registry::new();
        reg.record_span(SpanRecord {
            name: "parse",
            start_ns: 1_000,
            end_ns: 5_000,
            depth: 0,
            tid: 0,
        });
        reg.record_span(SpanRecord {
            name: "evaluate",
            start_ns: 6_000,
            end_ns: 9_000,
            depth: 1,
            tid: 0,
        });
        reg.counters().add(Counter::EvalsPerformed, 14);
        reg.record_hist(Hist::LoopIterations, 100);
        reg
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn summary_mentions_phases_and_counters() {
        let text = summary(&seeded());
        assert!(text.contains("parse"));
        assert!(text.contains("evaluate"));
        assert!(text.contains("evals_performed"));
        assert!(text.contains("loop_iterations"));
        // Percentile columns: one sample, so every quantile is exact.
        assert!(text.contains("p50<=100 p90<=100 p99<=100"), "{text}");
    }

    #[test]
    fn validator_accepts_exports_and_rejects_garbage() {
        let reg = seeded();
        validate_json(&to_json(&reg)).unwrap();
        validate_json(&chrome_trace(&reg, "t")).unwrap();
        validate_json("  {\"a\": [1, -2.5e3, \"x\\n\", true, null]} ").unwrap();
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("\"bad \\q escape\"").is_err());
        assert!(validate_json("").is_err());
    }

    #[test]
    fn json_has_expected_shape() {
        let json = to_json(&seeded());
        assert!(json.starts_with("{\"spans\":["));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"evals_performed\":14"));
        assert!(json.contains("\"loop_iterations\":{\"count\":1"));
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let trace = chrome_trace(&seeded(), "test");
        assert!(trace.contains("\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"M\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"C\""));
        // ts/dur in microseconds: 1000ns span start = 1us.
        assert!(trace.contains("\"ts\":1,"));
        assert!(trace.contains("\"dur\":4,"));
        // Counters ride along in otherData too.
        assert!(trace.contains("\"otherData\":{\"evals_performed\":14}"));
    }
}
