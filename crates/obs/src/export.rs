//! Exporters: human-readable summary, machine-readable JSON, and Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` or Perfetto).
//!
//! All JSON is emitted by hand — the workspace has no serde — through
//! one shared [`JsonWriter`] (single escaper, compact and pretty modes)
//! that every emitter in the workspace builds on. The Chrome output uses
//! the object form (`{"traceEvents": [...]}`) with complete-event
//! (`ph: "X"`) spans, one metadata (`ph: "M"`) process-name record, and
//! a final counter (`ph: "C"`) sample carrying every non-zero pipeline
//! counter.

use crate::metrics::Hist;
use crate::registry::Registry;
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The one JSON emitter every exporter in the workspace shares.
///
/// Hand-rolled emitters used to repeat the comma/escaping bookkeeping in
/// three places (the sweep, attribution, and Chrome-trace writers); the
/// writer centralizes it behind a small push API:
///
/// ```
/// use lp_obs::JsonWriter;
///
/// let mut w = JsonWriter::compact();
/// w.begin_object();
/// w.key("name");
/// w.string("demo");
/// w.key("values");
/// w.begin_array();
/// w.uint(1);
/// w.uint(2);
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), "{\"name\":\"demo\",\"values\":[1,2]}");
/// ```
///
/// Compact mode emits no whitespace at all — byte-identical to the
/// historical hand-rolled documents — while pretty mode indents two
/// spaces per level for human inspection. Both validate against
/// [`validate_json`] as long as the begin/end calls balance.
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    pretty: bool,
    /// Per open container: whether it already holds an entry (drives
    /// comma insertion and closing-bracket placement in pretty mode).
    has_entry: Vec<bool>,
    /// The next value completes a `key:` pair — suppress the comma logic
    /// the key already ran.
    expect_value: bool,
}

impl JsonWriter {
    /// A writer emitting no whitespace (the machine-readable default).
    #[must_use]
    pub fn compact() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            pretty: false,
            has_entry: Vec::new(),
            expect_value: false,
        }
    }

    /// A writer indenting two spaces per nesting level.
    #[must_use]
    pub fn pretty() -> JsonWriter {
        JsonWriter {
            pretty: true,
            ..JsonWriter::compact()
        }
    }

    fn indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.has_entry.len() {
            self.out.push_str("  ");
        }
    }

    /// Comma/indent bookkeeping before an array element or object key.
    fn before_entry(&mut self) {
        if self.expect_value {
            self.expect_value = false;
            return;
        }
        if let Some(has) = self.has_entry.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
            if self.pretty {
                self.indent();
            }
        }
    }

    /// Closing-bracket bookkeeping: pretty mode drops the bracket to its
    /// own line unless the container stayed empty.
    fn close(&mut self, bracket: char) {
        let had_entry = self.has_entry.pop().unwrap_or(false);
        if self.pretty && had_entry {
            self.indent();
        }
        self.out.push(bracket);
    }

    /// Opens an object (`{`), as a value or array element.
    pub fn begin_object(&mut self) {
        self.before_entry();
        self.out.push('{');
        self.has_entry.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.close('}');
    }

    /// Opens an array (`[`), as a value or array element.
    pub fn begin_array(&mut self) {
        self.before_entry();
        self.out.push('[');
        self.has_entry.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.close(']');
    }

    /// Writes an object key; the next write supplies its value.
    pub fn key(&mut self, name: &str) {
        self.before_entry();
        let _ = write!(self.out, "\"{}\":", json_escape(name));
        if self.pretty {
            self.out.push(' ');
        }
        self.expect_value = true;
    }

    /// Writes an escaped string value.
    pub fn string(&mut self, value: &str) {
        self.before_entry();
        let _ = write!(self.out, "\"{}\"", json_escape(value));
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, value: u64) {
        self.before_entry();
        let _ = write!(self.out, "{value}");
    }

    /// Writes a signed integer value.
    pub fn int(&mut self, value: i64) {
        self.before_entry();
        let _ = write!(self.out, "{value}");
    }

    /// Writes a float with a fixed number of decimal places (the
    /// workspace convention: speedups `.6`, coverages `.3`, factors `.4`).
    pub fn fixed(&mut self, value: f64, decimals: usize) {
        self.before_entry();
        let _ = write!(self.out, "{value:.decimals$}");
    }

    /// Writes a float with the shortest round-trip `Display` form.
    pub fn float(&mut self, value: f64) {
        self.before_entry();
        let _ = write!(self.out, "{value}");
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, value: bool) {
        self.before_entry();
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Writes a JSON `null`.
    pub fn null(&mut self) {
        self.before_entry();
        self.out.push_str("null");
    }

    /// Consumes the writer and returns the document.
    ///
    /// # Panics
    /// Panics if a container is still open — an unbalanced emitter is a
    /// bug, not a runtime condition.
    #[must_use]
    pub fn finish(self) -> String {
        assert!(
            self.has_entry.is_empty(),
            "JsonWriter finished with {} unclosed container(s)",
            self.has_entry.len()
        );
        self.out
    }
}

/// Strict JSON validation via a small recursive-descent parser — the
/// workspace has no serde, so every hand-rolled exporter is checked
/// against this in tests and in the binaries' `--explain-out` smoke
/// paths. Delegates to [`JsonValue::parse`] and discards the tree.
///
/// # Errors
/// Returns a short description of the first syntax error, or of trailing
/// garbage after the top-level value.
pub fn validate_json(text: &str) -> Result<(), String> {
    JsonValue::parse(text).map(|_| ())
}

/// A parsed JSON document — the read-side companion to [`JsonWriter`],
/// used by the snapshot/diff/trend machinery to load documents the
/// workspace wrote in earlier runs.
///
/// Numbers keep their raw source token: `u64` counters round-trip
/// exactly ([`JsonValue::as_u64`] reparses the token as an integer)
/// instead of being squeezed through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw (validated) source token.
    Num(String),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, entries in source order (duplicate keys kept as-is).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document.
    ///
    /// # Errors
    /// Returns a short description of the first syntax error, or of
    /// trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let (value, rest) = parse_value(text)?;
        let rest = skip_ws(rest);
        if rest.is_empty() {
            Ok(value)
        } else {
            Err(format!(
                "trailing garbage: {:?}",
                &rest[..rest.len().min(24)]
            ))
        }
    }

    /// Object field lookup (first entry wins); `None` for non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's entries, in source order.
    #[must_use]
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array's elements.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string's decoded text.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if its token is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as a float.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean's value.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(s: &str) -> &str {
    s.trim_start_matches([' ', '\t', '\n', '\r'])
}

fn parse_value(s: &str) -> Result<(JsonValue, &str), String> {
    let s = skip_ws(s);
    match s.chars().next() {
        Some('{') => parse_object(s),
        Some('[') => parse_array(s),
        Some('"') => {
            let (text, rest) = parse_string(s)?;
            Ok((JsonValue::Str(text), rest))
        }
        Some('t') => s
            .strip_prefix("true")
            .map(|rest| (JsonValue::Bool(true), rest))
            .ok_or_else(|| bad(s)),
        Some('f') => s
            .strip_prefix("false")
            .map(|rest| (JsonValue::Bool(false), rest))
            .ok_or_else(|| bad(s)),
        Some('n') => s
            .strip_prefix("null")
            .map(|rest| (JsonValue::Null, rest))
            .ok_or_else(|| bad(s)),
        Some(c) if c == '-' || c.is_ascii_digit() => parse_number(s),
        _ => Err(bad(s)),
    }
}

fn bad(s: &str) -> String {
    format!("unexpected input at {:?}", &s[..s.len().min(24)])
}

fn parse_string(s: &str) -> Result<(String, &str), String> {
    if !s.starts_with('"') {
        return Err(bad(s));
    }
    let mut out = String::new();
    let mut it = s.char_indices().skip(1);
    while let Some((i, c)) = it.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => {
                let (_, esc) = it.next().ok_or("truncated escape")?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = it.next().ok_or("truncated \\u escape")?;
                            let digit = h.to_digit(16).ok_or(format!("bad hex digit {h:?}"))?;
                            code = code * 16 + digit;
                        }
                        // Lone surrogates cannot form a char; emit the
                        // replacement character (the writer never emits
                        // surrogate escapes, so this is belt-and-braces).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape \\{esc}")),
                }
            }
            c if (c as u32) < 0x20 => return Err("raw control char in string".into()),
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(s: &str) -> Result<(JsonValue, &str), String> {
    let end = s
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(s.len());
    s[..end].parse::<f64>().map_err(|e| e.to_string())?;
    Ok((JsonValue::Num(s[..end].to_string()), &s[end..]))
}

fn parse_array(s: &str) -> Result<(JsonValue, &str), String> {
    let mut items = Vec::new();
    let mut s = skip_ws(&s[1..]);
    if let Some(rest) = s.strip_prefix(']') {
        return Ok((JsonValue::Arr(items), rest));
    }
    loop {
        let (value, rest) = parse_value(s)?;
        items.push(value);
        s = skip_ws(rest);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s
                .strip_prefix(']')
                .map(|rest| (JsonValue::Arr(items), rest))
                .ok_or_else(|| bad(s));
        }
    }
}

fn parse_object(s: &str) -> Result<(JsonValue, &str), String> {
    let mut entries = Vec::new();
    let mut s = skip_ws(&s[1..]);
    if let Some(rest) = s.strip_prefix('}') {
        return Ok((JsonValue::Obj(entries), rest));
    }
    loop {
        s = skip_ws(s);
        let (key, rest) = parse_string(s)?;
        s = skip_ws(rest).strip_prefix(':').ok_or("missing colon")?;
        let (value, rest) = parse_value(s)?;
        entries.push((key, value));
        s = skip_ws(rest);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s
                .strip_prefix('}')
                .map(|rest| (JsonValue::Obj(entries), rest))
                .ok_or_else(|| bad(s));
        }
    }
}

/// Per-name span aggregate used by [`summary`].
#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

fn aggregate(spans: &[SpanRecord]) -> BTreeMap<&'static str, SpanAgg> {
    let mut by_name: BTreeMap<&'static str, SpanAgg> = BTreeMap::new();
    for s in spans {
        let agg = by_name.entry(s.name).or_default();
        agg.count += 1;
        agg.total_ns += s.duration_ns();
        agg.max_ns = agg.max_ns.max(s.duration_ns());
    }
    by_name
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The human-readable run summary (what `--trace-out`-less binaries print
/// to stderr at exit when logging is enabled).
#[must_use]
pub fn summary(reg: &Registry) -> String {
    let spans = reg.spans();
    let mut out = String::from("== observability summary ==\n");
    if spans.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        let mut rows: Vec<(&'static str, SpanAgg)> = aggregate(&spans).into_iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1.total_ns));
        out.push_str("phase spans (by total time):\n");
        for (name, agg) in rows {
            let mean = agg.total_ns / agg.count.max(1);
            let _ = writeln!(
                out,
                "  {name:<12} x{:<6} total {:>10}  mean {:>10}  max {:>10}",
                agg.count,
                fmt_ns(agg.total_ns),
                fmt_ns(mean),
                fmt_ns(agg.max_ns),
            );
        }
    }
    let counters = reg.counters().snapshot();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in counters {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
    }
    for h in Hist::ALL {
        let hist = reg.hist(h);
        if hist.count > 0 {
            let (p50, p90, p99) = hist.quantile_summary();
            let _ = writeln!(
                out,
                "hist {:<20} n={} mean={:.1} min={} max={} p50<={p50} p90<={p90} p99<={p99}",
                h.name(),
                hist.count,
                hist.mean(),
                hist.min,
                hist.max,
            );
        }
    }
    out
}

/// Machine-readable JSON snapshot of spans, counters, and histograms.
#[must_use]
pub fn to_json(reg: &Registry) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("spans");
    w.begin_array();
    for s in reg.spans().iter() {
        w.begin_object();
        w.key("name");
        w.string(s.name);
        w.key("start_ns");
        w.uint(s.start_ns);
        w.key("end_ns");
        w.uint(s.end_ns);
        w.key("depth");
        w.uint(u64::from(s.depth));
        w.key("tid");
        w.uint(s.tid);
        w.end_object();
    }
    w.end_array();
    w.key("counters");
    w.begin_object();
    for (name, value) in reg.counters().snapshot() {
        w.key(&name);
        w.uint(value);
    }
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for h in Hist::ALL {
        let hist = reg.hist(h);
        if hist.count == 0 {
            continue;
        }
        w.key(h.name());
        w.begin_object();
        w.key("count");
        w.uint(hist.count);
        w.key("sum");
        w.uint(hist.sum);
        w.key("min");
        w.uint(hist.min);
        w.key("max");
        w.uint(hist.max);
        w.key("mean");
        w.float(hist.mean());
        w.end_object();
    }
    w.end_object();
    w.end_object();
    w.finish()
}

/// Chrome `trace_event` JSON for the registry's spans and counters.
///
/// Timestamps are microseconds since the registry epoch; spans become
/// complete events (`ph: "X"`), and the snapshot of every non-zero
/// counter rides along both as a `ph: "C"` counter sample and inside
/// `otherData` for tools that read the object wrapper.
#[must_use]
pub fn chrome_trace(reg: &Registry, process_name: &str) -> String {
    let spans = reg.spans();
    let counters = reg.counters().snapshot();
    let counter_args = |w: &mut JsonWriter| {
        w.begin_object();
        for (name, value) in &counters {
            w.key(name);
            w.uint(*value);
        }
        w.end_object();
    };
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();
    w.begin_object();
    w.key("name");
    w.string("process_name");
    w.key("ph");
    w.string("M");
    w.key("pid");
    w.uint(1);
    w.key("tid");
    w.uint(0);
    w.key("args");
    w.begin_object();
    w.key("name");
    w.string(process_name);
    w.end_object();
    w.end_object();
    let mut last_ts = 0.0f64;
    for s in &spans {
        last_ts = last_ts.max(s.end_ns as f64 / 1e3);
        w.begin_object();
        w.key("name");
        w.string(s.name);
        w.key("cat");
        w.string("phase");
        w.key("ph");
        w.string("X");
        w.key("ts");
        w.float(s.start_ns as f64 / 1e3);
        w.key("dur");
        w.float(s.duration_ns() as f64 / 1e3);
        w.key("pid");
        w.uint(1);
        w.key("tid");
        w.uint(s.tid);
        w.end_object();
    }
    if !counters.is_empty() {
        w.begin_object();
        w.key("name");
        w.string("lp_counters");
        w.key("ph");
        w.string("C");
        w.key("ts");
        w.float(last_ts);
        w.key("pid");
        w.uint(1);
        w.key("args");
        counter_args(&mut w);
        w.end_object();
    }
    w.end_array();
    w.key("displayTimeUnit");
    w.string("ms");
    w.key("otherData");
    counter_args(&mut w);
    w.end_object();
    w.finish()
}

/// Writes the global registry's Chrome trace to `path`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_chrome_trace(path: &std::path::Path, process_name: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(crate::registry::global(), process_name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Counter;

    fn seeded() -> Registry {
        let reg = Registry::new();
        reg.record_span(SpanRecord {
            name: "parse",
            start_ns: 1_000,
            end_ns: 5_000,
            depth: 0,
            tid: 0,
        });
        reg.record_span(SpanRecord {
            name: "evaluate",
            start_ns: 6_000,
            end_ns: 9_000,
            depth: 1,
            tid: 0,
        });
        reg.counters().add(Counter::EvalsPerformed, 14);
        reg.record_hist(Hist::LoopIterations, 100);
        reg
    }

    #[test]
    fn writer_compact_matches_handwritten_form() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.key("s");
        w.string("a\"b");
        w.key("n");
        w.uint(7);
        w.key("i");
        w.int(-3);
        w.key("f");
        w.fixed(1.5, 3);
        w.key("b");
        w.boolean(true);
        w.key("v");
        w.begin_array();
        w.uint(1);
        w.begin_object();
        w.end_object();
        w.begin_array();
        w.end_array();
        w.end_array();
        w.end_object();
        let json = w.finish();
        assert_eq!(
            json,
            "{\"s\":\"a\\\"b\",\"n\":7,\"i\":-3,\"f\":1.500,\"b\":true,\"v\":[1,{},[]]}"
        );
        validate_json(&json).unwrap();
    }

    #[test]
    fn writer_pretty_indents_and_validates() {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.key("a");
        w.uint(1);
        w.key("v");
        w.begin_array();
        w.uint(2);
        w.uint(3);
        w.end_array();
        w.key("empty");
        w.begin_object();
        w.end_object();
        w.end_object();
        let json = w.finish();
        assert_eq!(
            json,
            "{\n  \"a\": 1,\n  \"v\": [\n    2,\n    3\n  ],\n  \"empty\": {}\n}"
        );
        validate_json(&json).unwrap();
    }

    #[test]
    #[should_panic(expected = "unclosed container")]
    fn writer_panics_on_unbalanced_finish() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        let _ = w.finish();
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn summary_mentions_phases_and_counters() {
        let text = summary(&seeded());
        assert!(text.contains("parse"));
        assert!(text.contains("evaluate"));
        assert!(text.contains("evals_performed"));
        assert!(text.contains("loop_iterations"));
        // Percentile columns: one sample, so every quantile is exact.
        assert!(text.contains("p50<=100 p90<=100 p99<=100"), "{text}");
    }

    #[test]
    fn validator_accepts_exports_and_rejects_garbage() {
        let reg = seeded();
        validate_json(&to_json(&reg)).unwrap();
        validate_json(&chrome_trace(&reg, "t")).unwrap();
        validate_json("  {\"a\": [1, -2.5e3, \"x\\n\", true, null]} ").unwrap();
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("\"bad \\q escape\"").is_err());
        assert!(validate_json("").is_err());
    }

    #[test]
    fn json_value_parses_and_navigates() {
        let v = JsonValue::parse(
            "{\"s\":\"a\\n\\u0041\",\"n\":18446744073709551615,\"f\":-2.5e3,\
             \"b\":false,\"z\":null,\"arr\":[1,2,3]}",
        )
        .unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("a\nA"));
        // The full u64 range round-trips (raw-token numbers, not f64).
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(-2500.0));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("z"), Some(&JsonValue::Null));
        assert_eq!(v.get("arr").and_then(JsonValue::as_array).unwrap().len(), 3);
        assert!(v.get("missing").is_none());
        assert_eq!(v.entries().unwrap().len(), 6);
        // Scalar accessors reject mismatched variants.
        assert!(v.get("s").unwrap().as_u64().is_none());
        assert!(v.get("n").unwrap().as_str().is_none());
    }

    #[test]
    fn json_value_round_trips_writer_output() {
        let reg = seeded();
        let v = JsonValue::parse(&to_json(&reg)).unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("evals_performed"))
                .and_then(JsonValue::as_u64),
            Some(14)
        );
        let spans = v.get("spans").and_then(JsonValue::as_array).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[0].get("name").and_then(JsonValue::as_str),
            Some("parse")
        );
    }

    #[test]
    fn json_has_expected_shape() {
        let json = to_json(&seeded());
        assert!(json.starts_with("{\"spans\":["));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"evals_performed\":14"));
        assert!(json.contains("\"loop_iterations\":{\"count\":1"));
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let trace = chrome_trace(&seeded(), "test");
        assert!(trace.contains("\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"M\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"C\""));
        // ts/dur in microseconds: 1000ns span start = 1us.
        assert!(trace.contains("\"ts\":1,"));
        assert!(trace.contains("\"dur\":4,"));
        // Counters ride along in otherData too.
        assert!(trace.contains("\"otherData\":{\"evals_performed\":14}"));
    }
}
