//! Typed counters and histograms.
//!
//! Every countable event in the pipeline has a named slot in [`Counter`];
//! the registry backs each slot with one relaxed atomic, so incrementing
//! from the interpreter hot path costs a single uncontended RMW (hot
//! loops should still batch locally and flush once — see
//! `lp_interp::MeteredSink`). Histograms use power-of-two buckets.

use std::sync::atomic::{AtomicU64, Ordering};

/// One per-predictor-kind family of hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Last-value predictor.
    LastValue,
    /// Constant-stride predictor.
    Stride,
    /// Two-delta stride predictor.
    TwoDeltaStride,
    /// Finite-context-method predictor.
    Fcm,
    /// The arbitrating hybrid over the four components.
    Hybrid,
}

impl PredictorKind {
    /// All predictor kinds, component order first, hybrid last.
    pub const ALL: [PredictorKind; 5] = [
        PredictorKind::LastValue,
        PredictorKind::Stride,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Fcm,
        PredictorKind::Hybrid,
    ];

    /// Short lowercase label used in exports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PredictorKind::LastValue => "last_value",
            PredictorKind::Stride => "stride",
            PredictorKind::TwoDeltaStride => "two_delta_stride",
            PredictorKind::Fcm => "fcm",
            PredictorKind::Hybrid => "hybrid",
        }
    }
}

/// Every counter the pipeline maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Instrumentation events consumed by sinks (all kinds).
    EventsConsumed,
    /// Basic-block entry events.
    BlocksEntered,
    /// Load events.
    Loads,
    /// Store events.
    Stores,
    /// Phi-resolution events.
    PhisResolved,
    /// Function-entry events.
    FuncsEntered,
    /// Builtin-invocation events.
    BuiltinCalls,
    /// Watched-value definition events.
    ValueDefs,
    /// Cross-iteration memory RAW conflicts detected.
    RawConflicts,
    /// Accesses the cactus-stack frame filter proved iteration-local.
    CactusFilterHits,
    /// Value-predictor hits, per kind.
    PredictorHit(PredictorKind),
    /// Value-predictor misses, per kind.
    PredictorMiss(PredictorKind),
    /// Region-tree nodes created by the profiler.
    RegionsCreated,
    /// Loop instances recorded by the profiler.
    LoopInstances,
    /// Instrumented profiling runs completed.
    ProfilesTaken,
    /// `(model, config)` evaluations performed.
    EvalsPerformed,
    /// Spans discarded because the registry hit its capacity.
    SpansDropped,
    /// Sweep evaluations served from an already-shared profile (every
    /// evaluation of a unit beyond its first reuses the `Arc<Profile>`
    /// instead of re-profiling).
    SweepProfileCacheHits,
    /// Sweep tasks a worker claimed outside its static fair share (the
    /// work-stealing index handed it another shard's task).
    SweepTasksStolen,
    /// Profile-store lookups served from the persistent cache (the
    /// interpreter run was skipped entirely).
    StoreHits,
    /// Profile-store lookups that found no usable entry and fell back to
    /// a fresh instrumented run.
    StoreMisses,
    /// Persistent cache entries discarded because they were corrupt,
    /// truncated, or written by another format version.
    StoreCorruptDiscarded,
    /// Interpreter memory accesses served by the one-entry last-page
    /// cache (no directory walk).
    MemPageCacheHits,
    /// Interpreter memory accesses that walked the page directory (the
    /// last-page cache held a different page).
    MemPageCacheMisses,
    /// Shadow-memory stamp lookups served by a table's one-entry
    /// last-page cache.
    ShadowPageCacheHits,
    /// Shadow-memory stamp lookups that walked the shadow directory.
    ShadowPageCacheMisses,
    /// Profile-store garbage collections skipped because the cheap size
    /// pre-scan found the cache already under budget.
    StoreGcSkipped,
    /// Loops that passed the full replay certification (static DOALL
    /// classification, observed-dependence absence, and the independence
    /// witness) and were executed across threads.
    ReplayLoopsCertified,
    /// Candidate loops the independence witness rejected before any
    /// parallel execution (footprints overlapped across iterations).
    ReplayWitnessRejected,
    /// Replayed runs whose final memory image or observable output
    /// diverged from the serial reference (hard failures).
    ReplayDivergences,
    /// Heap bytes of block-batch event buffers the interpreter reused
    /// from the batch pool instead of reallocating (growth churn saved
    /// across profiled runs).
    BatchBytesReused,
}

/// Number of distinct counter slots (scalar slots 0..=17 plus one
/// reserved, the per-predictor pairs, then the store slots appended
/// after the predictor block, then the hot-path cache slots, then the
/// replay slots, then the batch-reuse slot — every historical slot
/// stays stable).
pub const COUNTER_SLOTS: usize = 30 + 2 * PredictorKind::ALL.len();

impl Counter {
    /// Every counter, in export order.
    #[must_use]
    pub fn all() -> Vec<Counter> {
        let mut out = vec![
            Counter::EventsConsumed,
            Counter::BlocksEntered,
            Counter::Loads,
            Counter::Stores,
            Counter::PhisResolved,
            Counter::FuncsEntered,
            Counter::BuiltinCalls,
            Counter::ValueDefs,
            Counter::RawConflicts,
            Counter::CactusFilterHits,
            Counter::RegionsCreated,
            Counter::LoopInstances,
            Counter::ProfilesTaken,
            Counter::EvalsPerformed,
            Counter::SpansDropped,
            Counter::SweepProfileCacheHits,
            Counter::SweepTasksStolen,
            Counter::StoreHits,
            Counter::StoreMisses,
            Counter::StoreCorruptDiscarded,
            Counter::StoreGcSkipped,
            Counter::MemPageCacheHits,
            Counter::MemPageCacheMisses,
            Counter::ShadowPageCacheHits,
            Counter::ShadowPageCacheMisses,
            Counter::ReplayLoopsCertified,
            Counter::ReplayWitnessRejected,
            Counter::ReplayDivergences,
            Counter::BatchBytesReused,
        ];
        for kind in PredictorKind::ALL {
            out.push(Counter::PredictorHit(kind));
            out.push(Counter::PredictorMiss(kind));
        }
        out
    }

    /// Dense slot index into the registry's atomic array.
    #[must_use]
    pub fn slot(self) -> usize {
        match self {
            Counter::EventsConsumed => 0,
            Counter::BlocksEntered => 1,
            Counter::Loads => 2,
            Counter::Stores => 3,
            Counter::PhisResolved => 4,
            Counter::FuncsEntered => 5,
            Counter::BuiltinCalls => 6,
            Counter::ValueDefs => 7,
            Counter::RawConflicts => 8,
            Counter::CactusFilterHits => 9,
            Counter::RegionsCreated => 10,
            Counter::LoopInstances => 11,
            Counter::ProfilesTaken => 12,
            Counter::EvalsPerformed => 13,
            Counter::SpansDropped => 14,
            Counter::SweepProfileCacheHits => 15,
            Counter::SweepTasksStolen => 16,
            // Slot 17 is reserved so predictor slots stay stable if a
            // scalar counter is added.
            Counter::PredictorHit(kind) => 18 + 2 * kind as usize,
            Counter::PredictorMiss(kind) => 19 + 2 * kind as usize,
            // The store slots sit after the predictor block (which ends
            // at 18 + 2 * 4 + 1 = 27) so older slots never move.
            Counter::StoreHits => 28,
            Counter::StoreMisses => 29,
            Counter::StoreCorruptDiscarded => 30,
            // Hot-path cache slots, appended after the store block.
            Counter::MemPageCacheHits => 31,
            Counter::MemPageCacheMisses => 32,
            Counter::ShadowPageCacheHits => 33,
            Counter::ShadowPageCacheMisses => 34,
            Counter::StoreGcSkipped => 35,
            // Replay slots, appended after the hot-path cache block.
            Counter::ReplayLoopsCertified => 36,
            Counter::ReplayWitnessRejected => 37,
            Counter::ReplayDivergences => 38,
            // Allocation-reuse slot, appended after the replay block.
            Counter::BatchBytesReused => 39,
        }
    }

    /// Stable snake-case name used by every exporter.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            Counter::EventsConsumed => "events_consumed".to_string(),
            Counter::BlocksEntered => "blocks_entered".to_string(),
            Counter::Loads => "loads".to_string(),
            Counter::Stores => "stores".to_string(),
            Counter::PhisResolved => "phis_resolved".to_string(),
            Counter::FuncsEntered => "funcs_entered".to_string(),
            Counter::BuiltinCalls => "builtin_calls".to_string(),
            Counter::ValueDefs => "value_defs".to_string(),
            Counter::RawConflicts => "raw_conflicts".to_string(),
            Counter::CactusFilterHits => "cactus_filter_hits".to_string(),
            Counter::RegionsCreated => "regions_created".to_string(),
            Counter::LoopInstances => "loop_instances".to_string(),
            Counter::ProfilesTaken => "profiles_taken".to_string(),
            Counter::EvalsPerformed => "evals_performed".to_string(),
            Counter::SpansDropped => "spans_dropped".to_string(),
            Counter::SweepProfileCacheHits => "sweep_profile_cache_hits".to_string(),
            Counter::SweepTasksStolen => "sweep_tasks_stolen".to_string(),
            Counter::StoreHits => "store_hits".to_string(),
            Counter::StoreMisses => "store_misses".to_string(),
            Counter::StoreCorruptDiscarded => "store_corrupt_discarded".to_string(),
            Counter::MemPageCacheHits => "mem_page_cache_hits".to_string(),
            Counter::MemPageCacheMisses => "mem_page_cache_misses".to_string(),
            Counter::ShadowPageCacheHits => "shadow_page_cache_hits".to_string(),
            Counter::ShadowPageCacheMisses => "shadow_page_cache_misses".to_string(),
            Counter::StoreGcSkipped => "store_gc_skipped".to_string(),
            Counter::ReplayLoopsCertified => "replay_loops_certified".to_string(),
            Counter::ReplayWitnessRejected => "replay_witness_rejected".to_string(),
            Counter::ReplayDivergences => "replay_divergences".to_string(),
            Counter::BatchBytesReused => "batch_bytes_reused".to_string(),
            Counter::PredictorHit(kind) => format!("predictor_hit_{}", kind.label()),
            Counter::PredictorMiss(kind) => format!("predictor_miss_{}", kind.label()),
        }
    }
}

/// The atomic backing store for all counters.
#[derive(Debug)]
pub struct CounterBank {
    slots: [AtomicU64; COUNTER_SLOTS],
}

impl Default for CounterBank {
    fn default() -> CounterBank {
        CounterBank {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl CounterBank {
    /// Adds `n` to `counter`.
    pub fn add(&self, counter: Counter, n: u64) {
        self.slots[counter.slot()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `counter`.
    #[must_use]
    pub fn get(&self, counter: Counter) -> u64 {
        self.slots[counter.slot()].load(Ordering::Relaxed)
    }

    /// Zeroes every slot.
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// `(name, value)` for every non-zero counter, in export order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        Counter::all()
            .into_iter()
            .filter_map(|c| {
                let v = self.get(c);
                (v > 0).then(|| (c.name(), v))
            })
            .collect()
    }
}

/// A power-of-two-bucket histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[k]` counts samples with `floor(log2(v)) == k` (`v == 0`
    /// lands in bucket 0).
    pub buckets: [u64; 64],
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Minimum sample (`u64::MAX` when empty).
    pub min: u64,
    /// Maximum sample.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean sample (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the log2 bucket containing the `p`-th percentile
    /// sample (0 when empty), clamped to the observed `[min, max]` range
    /// so degenerate distributions report exact values.
    ///
    /// The estimate is conservative: a sample in bucket `k` lies in
    /// `[2^k, 2^(k+1))`, and we report the bucket's inclusive upper end
    /// `2^(k+1) - 1`. `p` is clamped to `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the percentile sample, 1-based (nearest-rank method).
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if k >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (k + 1)) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The `(p50, p90, p99)` triple every exporter prints.
    #[must_use]
    pub fn quantile_summary(&self) -> (u64, u64, u64) {
        (
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
        )
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Named histogram slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Iterations per recorded loop instance.
    LoopIterations,
    /// Wall-clock nanoseconds per profiling run.
    ProfileNanos,
    /// Wall-clock nanoseconds per `(model, config)` evaluation.
    EvalNanos,
    /// Iteration distance (consumer − producer) of each cross-iteration
    /// memory RAW edge the tracker observes.
    ConflictDistance,
}

impl Hist {
    /// All histogram slots, in export order.
    pub const ALL: [Hist; 4] = [
        Hist::LoopIterations,
        Hist::ProfileNanos,
        Hist::EvalNanos,
        Hist::ConflictDistance,
    ];

    /// Stable snake-case name used by every exporter.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Hist::LoopIterations => "loop_iterations",
            Hist::ProfileNanos => "profile_nanos",
            Hist::EvalNanos => "eval_nanos",
            Hist::ConflictDistance => "conflict_distance",
        }
    }

    /// Dense index into the registry's histogram array.
    #[must_use]
    pub fn slot(self) -> usize {
        match self {
            Hist::LoopIterations => 0,
            Hist::ProfileNanos => 1,
            Hist::EvalNanos => 2,
            Hist::ConflictDistance => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_slots_are_unique_and_in_range() {
        let all = Counter::all();
        let slots: std::collections::HashSet<usize> = all.iter().map(|c| c.slot()).collect();
        assert_eq!(slots.len(), all.len());
        assert!(slots.iter().all(|&s| s < COUNTER_SLOTS));
    }

    #[test]
    fn counter_names_are_unique() {
        let all = Counter::all();
        let names: std::collections::HashSet<String> = all.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn bank_adds_and_snapshots() {
        let bank = CounterBank::default();
        bank.add(Counter::Loads, 3);
        bank.add(Counter::Loads, 2);
        bank.add(Counter::PredictorHit(PredictorKind::Fcm), 7);
        assert_eq!(bank.get(Counter::Loads), 5);
        let snap = bank.snapshot();
        assert_eq!(
            snap,
            vec![
                ("loads".to_string(), 5),
                ("predictor_hit_fcm".to_string(), 7)
            ]
        );
        bank.reset();
        assert!(bank.snapshot().is_empty());
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1031);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 3); // 0, 1, 1
        assert_eq!(h.buckets[1], 2); // 2, 3
        assert_eq!(h.buckets[10], 1); // 1024
        assert!((h.mean() - 1031.0 / 6.0).abs() < 1e-9);

        let mut other = Histogram::default();
        other.record(5);
        h.merge(&other);
        assert_eq!(h.count, 7);
        assert_eq!(h.buckets[2], 1);
    }

    #[test]
    fn percentile_empty_and_degenerate() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0);
        // One sample: every percentile is that sample (clamped to
        // [min, max] even though bucket 2's upper bound is 7).
        let mut h = Histogram::default();
        h.record(5);
        assert_eq!(h.percentile(0.0), 5);
        assert_eq!(h.percentile(50.0), 5);
        assert_eq!(h.percentile(100.0), 5);
    }

    #[test]
    fn percentile_walks_buckets_by_rank() {
        // 4 samples in bucket 0 (values ≤ 1), 4 in bucket 1 (2..4),
        // 1 in bucket 3 (8..16), 1 in bucket 10 (1024..2048).
        let mut h = Histogram::default();
        for v in [1u64, 1, 1, 1, 2, 2, 3, 3, 9, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 10);
        // rank(p50) = 5 → bucket 1, upper bound 3.
        assert_eq!(h.percentile(50.0), 3);
        // rank(p40) = 4 → still bucket 0; upper bound 1.
        assert_eq!(h.percentile(40.0), 1);
        // rank(p90) = 9 → bucket 3, upper bound 15.
        assert_eq!(h.percentile(90.0), 15);
        // rank(p99) = 10 → bucket 10, upper 2047, clamped to max 1024.
        assert_eq!(h.percentile(99.0), 1024);
        let (p50, p90, p99) = h.quantile_summary();
        assert_eq!((p50, p90, p99), (3, 15, 1024));
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let mut h = Histogram::default();
        for v in 0..2000u64 {
            h.record(v * 37 % 4096);
        }
        let mut prev = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let q = h.percentile(p);
            assert!(q >= prev, "p{p}: {q} < {prev}");
            prev = q;
        }
        assert_eq!(h.percentile(100.0), h.max);
    }

    #[test]
    fn hist_slots_cover_all() {
        let slots: std::collections::HashSet<usize> = Hist::ALL.iter().map(|h| h.slot()).collect();
        assert_eq!(slots.len(), Hist::ALL.len());
        assert!(Hist::ALL.iter().any(|h| h.name() == "conflict_distance"));
    }
}
