//! Append-only run ledger and noise-aware regression check.
//!
//! Every measuring `lpbench` invocation appends one self-describing
//! JSONL record (schema `lp-trend-v1`) to `results/BENCH_trend.jsonl`:
//! bench id, scale, rep count, throughput point estimates, the machine
//! digest, key counters, and an optional free-form label. `lpbench
//! trend` summarises a ledger; `lpbench trend --check` compares the
//! newest record against a rolling window of prior records from the
//! *same series* (bench + scale + machine digest) and fails — exit 2 —
//! only when the new profile throughput falls below a robust noise
//! band:
//!
//! ```text
//! center = median(window)
//! spread = max(1.4826 · MAD(window), |center| · REL_FLOOR)
//! lower  = center − K · spread
//! ```
//!
//! Median/MAD instead of mean/stddev so one flaky historical rep can't
//! widen or shift the band; the relative floor keeps the band from
//! collapsing to zero width when history is eerily stable. With fewer
//! than `min_history` prior records the check passes trivially — a
//! fresh ledger must not block CI.

use crate::export::{JsonValue, JsonWriter};
use std::path::Path;

/// Schema tag of one ledger record.
pub const TREND_SCHEMA: &str = "lp-trend-v1";

/// Band half-width in robust standard deviations.
pub const BAND_K: f64 = 3.0;
/// Minimum band spread as a fraction of the center.
pub const BAND_REL_FLOOR: f64 = 0.02;
/// Default rolling-window length (prior records consulted).
pub const DEFAULT_WINDOW: usize = 8;
/// Default minimum history before the check can fail.
pub const DEFAULT_MIN_HISTORY: usize = 3;

/// Median of `values` (sorts in place; 0 when empty).
#[must_use]
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// Median absolute deviation of `values` around `center`.
#[must_use]
pub fn mad(values: &[f64], center: f64) -> f64 {
    let mut devs: Vec<f64> = values.iter().map(|v| (v - center).abs()).collect();
    median(&mut devs)
}

/// A robust noise band around historical values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    pub center: f64,
    pub spread: f64,
    pub lower: f64,
    pub upper: f64,
}

/// Builds the band over `history` with half-width `k` robust sigmas
/// and a relative floor on the spread. `1.4826 · MAD` estimates the
/// standard deviation for normally distributed noise.
#[must_use]
pub fn noise_band(history: &[f64], k: f64, rel_floor: f64) -> Band {
    let mut values = history.to_vec();
    let center = median(&mut values);
    let spread = (1.4826 * mad(history, center)).max(center.abs() * rel_floor);
    Band {
        center,
        spread,
        lower: center - k * spread,
        upper: center + k * spread,
    }
}

/// FNV-1a over `bytes` — stable fingerprint for machine digests.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One ledger line: everything needed to interpret the measurement
/// without the commit that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRecord {
    /// Bench identifier (picked bench names joined with `+`).
    pub bench: String,
    /// Workload scale (`test` / `small` / `default`).
    pub scale: String,
    /// Free-form `--label`, empty when not given.
    pub label: String,
    /// Repetitions the point estimates were computed over.
    pub reps: u64,
    /// Wall-clock of the run, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Hex digest of the machine model + host arch/OS.
    pub machine: String,
    /// Median-of-reps profiled throughput, Mi instructions/s.
    pub profile_mips: f64,
    /// Median-of-reps plain-interpreter throughput, Mi instructions/s.
    pub interp_mips: f64,
    /// `interp_mips / profile_mips`.
    pub slowdown: f64,
    /// Journal-enabled vs journal-disabled profiling overhead.
    pub journal_overhead: f64,
    /// Non-zero registry counters at the end of the run.
    pub counters: Vec<(String, u64)>,
}

impl TrendRecord {
    /// Records belong to the same series when bench, scale, and machine
    /// all match — the only axes along which throughput is comparable.
    #[must_use]
    pub fn series_key(&self) -> String {
        format!("{}|{}|{}", self.bench, self.scale, self.machine)
    }

    /// One JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.key("schema");
        w.string(TREND_SCHEMA);
        w.key("bench");
        w.string(&self.bench);
        w.key("scale");
        w.string(&self.scale);
        w.key("label");
        w.string(&self.label);
        w.key("reps");
        w.uint(self.reps);
        w.key("unix_ms");
        w.uint(self.unix_ms);
        w.key("machine");
        w.string(&self.machine);
        w.key("profile_mips");
        w.fixed(self.profile_mips, 3);
        w.key("interp_mips");
        w.fixed(self.interp_mips, 3);
        w.key("slowdown");
        w.fixed(self.slowdown, 4);
        w.key("journal_overhead");
        w.fixed(self.journal_overhead, 4);
        w.key("counters");
        w.begin_object();
        for (name, value) in &self.counters {
            w.key(name);
            w.uint(*value);
        }
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Parses one ledger line.
    ///
    /// # Errors
    /// Returns a description of the first structural problem.
    pub fn from_json(text: &str) -> Result<TrendRecord, String> {
        let doc = JsonValue::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema tag")?;
        if schema != TREND_SCHEMA {
            return Err(format!(
                "schema {schema:?} is not a trend record (expected {TREND_SCHEMA:?})"
            ));
        }
        let s = |k: &str| {
            doc.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(format!("missing field {k:?}"))
        };
        let u = |k: &str| {
            doc.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or(format!("missing field {k:?}"))
        };
        let f = |k: &str| {
            doc.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("missing field {k:?}"))
        };
        let mut counters = Vec::new();
        for (name, value) in doc
            .get("counters")
            .and_then(JsonValue::entries)
            .ok_or("missing counters object")?
        {
            let value = value
                .as_u64()
                .ok_or(format!("counter {name:?} is not an integer"))?;
            counters.push((name.clone(), value));
        }
        Ok(TrendRecord {
            bench: s("bench")?,
            scale: s("scale")?,
            label: s("label")?,
            reps: u("reps")?,
            unix_ms: u("unix_ms")?,
            machine: s("machine")?,
            profile_mips: f("profile_mips")?,
            interp_mips: f("interp_mips")?,
            slowdown: f("slowdown")?,
            journal_overhead: f("journal_overhead")?,
            counters,
        })
    }
}

/// Reads every record from a JSONL ledger, oldest first. A missing
/// file is an empty ledger; a malformed line is an error naming the
/// line number.
///
/// # Errors
/// Returns a description of the I/O or parse failure.
pub fn read_ledger(path: &Path) -> Result<Vec<TrendRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = TrendRecord::from_json(line)
            .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
        records.push(rec);
    }
    Ok(records)
}

/// Appends one record to the ledger, creating parent directories as
/// needed.
///
/// # Errors
/// Propagates filesystem errors.
pub fn append_ledger(path: &Path, record: &TrendRecord) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", record.to_json())
}

/// Outcome of [`check_latest`].
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The newest point sits inside (or above) the noise band.
    Pass {
        band: Band,
        value: f64,
        history: usize,
    },
    /// Not enough prior same-series records to form a band; passes.
    InsufficientHistory { history: usize, needed: usize },
    /// The newest point fell below the band — a real regression.
    Regression {
        band: Band,
        value: f64,
        history: usize,
    },
}

impl Verdict {
    /// True unless the verdict is a regression.
    #[must_use]
    pub fn passed(&self) -> bool {
        !matches!(self, Verdict::Regression { .. })
    }

    /// One-paragraph human summary.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Verdict::Pass {
                band,
                value,
                history,
            } => format!(
                "pass: profile {value:.2} Mi/s within band [{:.2}, {:.2}] \
                 (center {:.2}, {history} prior runs)",
                band.lower, band.upper, band.center
            ),
            Verdict::InsufficientHistory { history, needed } => format!(
                "pass: only {history} prior run(s) in this series \
                 (need {needed} to gate)"
            ),
            Verdict::Regression {
                band,
                value,
                history,
            } => format!(
                "REGRESSION: profile {value:.2} Mi/s below band lower bound \
                 {:.2} (center {:.2} over {history} prior runs)",
                band.lower, band.center
            ),
        }
    }
}

/// Judges the newest ledger record against the prior records of its
/// own series. The check is one-sided: only a *drop* in profiled
/// throughput fails — getting faster never should.
///
/// # Errors
/// Fails when the ledger is empty.
pub fn check_latest(
    records: &[TrendRecord],
    window: usize,
    min_history: usize,
) -> Result<Verdict, String> {
    let newest = records.last().ok_or("ledger is empty")?;
    let key = newest.series_key();
    let history: Vec<f64> = records[..records.len() - 1]
        .iter()
        .filter(|r| r.series_key() == key)
        .map(|r| r.profile_mips)
        .collect();
    let recent = &history[history.len().saturating_sub(window)..];
    if recent.len() < min_history {
        return Ok(Verdict::InsufficientHistory {
            history: recent.len(),
            needed: min_history,
        });
    }
    let band = noise_band(recent, BAND_K, BAND_REL_FLOOR);
    let value = newest.profile_mips;
    if value < band.lower {
        Ok(Verdict::Regression {
            band,
            value,
            history: recent.len(),
        })
    } else {
        Ok(Verdict::Pass {
            band,
            value,
            history: recent.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(profile_mips: f64, bench: &str) -> TrendRecord {
        TrendRecord {
            bench: bench.to_string(),
            scale: "small".to_string(),
            label: String::new(),
            reps: 5,
            unix_ms: 1_700_000_000_000,
            machine: "00deadbeef00cafe".to_string(),
            profile_mips,
            interp_mips: profile_mips * 2.1,
            slowdown: 2.1,
            journal_overhead: 0.001,
            counters: vec![("loads".to_string(), 42)],
        }
    }

    #[test]
    fn median_and_mad_are_robust() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [1.0, 9.0]), 5.0);
        // One wild outlier barely moves the median and not the MAD.
        let values = [10.0, 10.2, 9.9, 10.1, 500.0];
        let mut sorted = values.to_vec();
        let m = median(&mut sorted);
        assert_eq!(m, 10.1);
        assert!((mad(&values, m) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn noise_band_has_relative_floor() {
        // Perfectly stable history: MAD is 0, floor takes over.
        let band = noise_band(&[100.0, 100.0, 100.0], BAND_K, BAND_REL_FLOOR);
        assert_eq!(band.center, 100.0);
        assert_eq!(band.spread, 2.0);
        assert_eq!(band.lower, 94.0);
        assert_eq!(band.upper, 106.0);
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let r = rec(46.812, "eembc.matrix01+181.mcf");
        let line = r.to_json();
        assert!(!line.contains('\n'), "one record per line");
        crate::export::validate_json(&line).unwrap();
        let back = TrendRecord::from_json(&line).unwrap();
        assert_eq!(back.bench, r.bench);
        assert_eq!(back.machine, r.machine);
        assert_eq!(back.counters, r.counters);
        assert!((back.profile_mips - r.profile_mips).abs() < 1e-3);
        assert!(TrendRecord::from_json("{\"schema\":\"lp-diff-v1\"}").is_err());
    }

    #[test]
    fn ledger_appends_and_reads_in_order() {
        let dir = std::env::temp_dir().join(format!("lp-trend-test-{}", std::process::id()));
        let path = dir.join("nested/ledger.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(read_ledger(&path).unwrap().len(), 0, "missing = empty");
        for mips in [40.0, 41.0, 39.5] {
            append_ledger(&path, &rec(mips, "x")).unwrap();
        }
        let records = read_ledger(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].profile_mips, 40.0);
        assert_eq!(records[2].profile_mips, 39.5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn check_passes_stable_history_and_fails_ten_percent_drop() {
        // Three stable appended runs: each in turn passes the gate.
        let mut records = vec![rec(46.0, "m")];
        for mips in [46.3, 45.9, 46.1] {
            records.push(rec(mips, "m"));
        }
        for upto in 2..=records.len() {
            let v = check_latest(&records[..upto], DEFAULT_WINDOW, DEFAULT_MIN_HISTORY).unwrap();
            assert!(v.passed(), "stable run {upto} must pass: {}", v.render());
        }
        // Injected ≥10% slowdown fails.
        records.push(rec(46.0 * 0.88, "m"));
        let v = check_latest(&records, DEFAULT_WINDOW, DEFAULT_MIN_HISTORY).unwrap();
        assert!(!v.passed());
        assert!(v.render().starts_with("REGRESSION"));
        // ...but a speedup never does (one-sided).
        *records.last_mut().unwrap() = rec(46.0 * 1.5, "m");
        let v = check_latest(&records, DEFAULT_WINDOW, DEFAULT_MIN_HISTORY).unwrap();
        assert!(v.passed());
    }

    #[test]
    fn check_ignores_other_series_and_thin_history() {
        let records = vec![rec(10.0, "a"), rec(11.0, "a"), rec(99.0, "b")];
        let v = check_latest(&records, DEFAULT_WINDOW, DEFAULT_MIN_HISTORY).unwrap();
        match v {
            Verdict::InsufficientHistory { history, needed } => {
                assert_eq!(history, 0, "bench b has no prior runs");
                assert_eq!(needed, DEFAULT_MIN_HISTORY);
            }
            other => panic!("expected InsufficientHistory, got {other:?}"),
        }
        assert!(check_latest(&[], DEFAULT_WINDOW, DEFAULT_MIN_HISTORY).is_err());
    }

    #[test]
    fn window_limits_how_far_back_the_band_looks() {
        // Ancient slow history followed by a faster plateau: with a
        // window of 4 the band forms over the plateau only, so a point
        // back at the ancient level is flagged.
        let mut records: Vec<TrendRecord> = [20.0, 20.0, 20.0, 20.2, 40.0, 40.2, 39.8]
            .iter()
            .map(|&m| rec(m, "w"))
            .collect();
        records.push(rec(20.5, "w"));
        let v = check_latest(&records, 4, DEFAULT_MIN_HISTORY).unwrap();
        assert!(!v.passed(), "plateau-weighted band must flag the throwback");
        // A full-history window re-centers on the ancient majority.
        let v = check_latest(&records, 100, DEFAULT_MIN_HISTORY).unwrap();
        assert!(v.passed());
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"machine-a"), fnv1a(b"machine-b"));
    }
}
