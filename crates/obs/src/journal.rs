//! The always-on flight recorder.
//!
//! A bounded, preallocated ring buffer of compact fixed-width event
//! records — the post-mortem trail a crashed sweep or a hung CI job
//! leaves behind. Unlike spans (high-volume, per-phase timing) the
//! journal records *coarse lifecycle events* — a profiling run
//! completed, a sweep task finished, a panic fired — so the always-on
//! cost is one short mutex-protected write per event, far below the 3%
//! overhead budget (DESIGN.md §11 has the measurement; `lpbench`
//! enforces the budget in CI).
//!
//! The journal is dumped to JSON three ways:
//!
//! - **on panic**, via the hook installed by [`arm`];
//! - **on request**, via a `SIGUSR1`-style signal ([`arm`] installs the
//!   handler; the dump is written from the next [`record`] call, never
//!   from the handler itself);
//! - **at exit**, via the binaries' shared `--flight-out PATH` flag.
//!
//! When the ring is full, new records overwrite the oldest — a flight
//! recorder keeps the *last* `JOURNAL_CAP` events, which is what a
//! post-mortem needs.

use crate::export::JsonWriter;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Records retained before the ring wraps (overwriting the oldest).
pub const JOURNAL_CAP: usize = 4096;

/// What happened. The discriminant is the stable wire value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An interpreter run delivered its final event tallies
    /// (`a` = total events consumed, `b` = dynamic cost at the end).
    RunCompleted,
    /// A parallel phase started (`a` = tasks, `b` = workers).
    SweepStarted,
    /// One sweep task finished (`a` = tasks done, `b` = total tasks).
    SweepTaskDone,
    /// A parallel phase finished (`a` = tasks, `b` = elapsed ms).
    SweepCompleted,
    /// Estimated time to sweep completion
    /// (`a` = tasks remaining, `b` = estimated ms remaining).
    SweepEta,
    /// A benchmark measurement finished
    /// (`a` = instructions, `b` = profile ns).
    BenchMeasured,
    /// The process panicked (recorded by the [`arm`] hook just before
    /// the dump is written).
    Panic,
    /// A dump was requested by signal.
    DumpRequested,
    /// Free-form marker for callers without a dedicated kind.
    Mark,
}

impl EventKind {
    /// Every kind, in wire order.
    pub const ALL: [EventKind; 9] = [
        EventKind::RunCompleted,
        EventKind::SweepStarted,
        EventKind::SweepTaskDone,
        EventKind::SweepCompleted,
        EventKind::SweepEta,
        EventKind::BenchMeasured,
        EventKind::Panic,
        EventKind::DumpRequested,
        EventKind::Mark,
    ];

    /// Stable snake-case name used by the JSON dump.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RunCompleted => "run_completed",
            EventKind::SweepStarted => "sweep_started",
            EventKind::SweepTaskDone => "sweep_task_done",
            EventKind::SweepCompleted => "sweep_completed",
            EventKind::SweepEta => "sweep_eta",
            EventKind::BenchMeasured => "bench_measured",
            EventKind::Panic => "panic",
            EventKind::DumpRequested => "dump_requested",
            EventKind::Mark => "mark",
        }
    }
}

/// One fixed-width journal record: a coarse millisecond timestamp (the
/// registry epoch), the recording thread, the kind, and two payload
/// words whose meaning is per-kind (see [`EventKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRecord {
    /// Milliseconds since the global registry epoch (coarse on purpose:
    /// the journal is a lifecycle trail, not a profiler).
    pub ms: u32,
    /// Dense thread id (`lp_obs::span::thread_tid`, truncated).
    pub tid: u16,
    /// What happened.
    pub kind: EventKind,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl JournalRecord {
    /// A record stamped "now" on the calling thread.
    #[must_use]
    pub fn now(kind: EventKind, a: u64, b: u64) -> JournalRecord {
        JournalRecord {
            ms: u32::try_from(crate::registry::global().now_ns() / 1_000_000).unwrap_or(u32::MAX),
            tid: crate::span::thread_tid() as u16,
            kind,
            a,
            b,
        }
    }
}

/// The ring state behind the journal's one mutex.
#[derive(Debug)]
struct Ring {
    /// Preallocated storage (`len() <= JOURNAL_CAP`; grows to cap once).
    slots: Vec<JournalRecord>,
    /// Next write position once the ring is full.
    head: usize,
    /// Total records ever written (so dumps report overwrites).
    total: u64,
}

/// A bounded event journal. One global instance lives behind
/// [`global`]; tests may build private journals.
#[derive(Debug)]
pub struct Journal {
    ring: Mutex<Ring>,
    cap: usize,
    enabled: AtomicBool,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::with_capacity(JOURNAL_CAP)
    }
}

impl Journal {
    /// A fresh journal retaining at most `cap` records.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Journal {
        let cap = cap.max(1);
        Journal {
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(cap),
                head: 0,
                total: 0,
            }),
            cap,
            enabled: AtomicBool::new(true),
        }
    }

    /// Whether [`Journal::record`] currently retains anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (used by `lpbench` to measure the
    /// always-on overhead against a journal-free run).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Appends one record (overwriting the oldest when full).
    pub fn record(&self, rec: JournalRecord) {
        if !self.enabled() {
            return;
        }
        let mut ring = self.ring.lock().expect("journal poisoned");
        push(&mut ring, self.cap, rec);
    }

    /// Appends a batch of records under one lock acquisition (the
    /// per-worker merge path used by [`crate::LocalStats`]).
    pub fn record_batch(&self, batch: &[JournalRecord]) {
        if batch.is_empty() || !self.enabled() {
            return;
        }
        let mut ring = self.ring.lock().expect("journal poisoned");
        for &rec in batch {
            push(&mut ring, self.cap, rec);
        }
    }

    /// `(total_ever_recorded, retained records oldest-first)`.
    #[must_use]
    pub fn snapshot(&self) -> (u64, Vec<JournalRecord>) {
        let ring = self.ring.lock().expect("journal poisoned");
        let mut out = Vec::with_capacity(ring.slots.len());
        if ring.slots.len() == self.cap {
            out.extend_from_slice(&ring.slots[ring.head..]);
            out.extend_from_slice(&ring.slots[..ring.head]);
        } else {
            out.extend_from_slice(&ring.slots);
        }
        (ring.total, out)
    }

    /// Clears the ring (capacity is kept).
    pub fn reset(&self) {
        let mut ring = self.ring.lock().expect("journal poisoned");
        ring.slots.clear();
        ring.head = 0;
        ring.total = 0;
    }

    /// The JSON dump: schema header, recording totals, and every
    /// retained record oldest-first.
    #[must_use]
    pub fn dump_json(&self) -> String {
        let (total, records) = self.snapshot();
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.key("schema");
        w.string("lp-journal-v1");
        w.key("total_recorded");
        w.uint(total);
        w.key("retained");
        w.uint(records.len() as u64);
        w.key("records");
        w.begin_array();
        for r in &records {
            w.begin_object();
            w.key("ms");
            w.uint(u64::from(r.ms));
            w.key("tid");
            w.uint(u64::from(r.tid));
            w.key("kind");
            w.string(r.kind.name());
            w.key("a");
            w.uint(r.a);
            w.key("b");
            w.uint(r.b);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Writes [`Journal::dump_json`] to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_dump(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.dump_json())
    }
}

fn push(ring: &mut Ring, cap: usize, rec: JournalRecord) {
    ring.total += 1;
    if ring.slots.len() < cap {
        ring.slots.push(rec);
    } else {
        let head = ring.head;
        ring.slots[head] = rec;
        ring.head = (head + 1) % cap;
    }
}

/// The process-wide journal.
pub fn global() -> &'static Journal {
    static GLOBAL: OnceLock<Journal> = OnceLock::new();
    GLOBAL.get_or_init(Journal::default)
}

/// Records one event in the process-wide journal, stamped "now". Also
/// services a pending signal-requested dump (the handler itself only
/// sets a flag — see [`arm`]).
pub fn record(kind: EventKind, a: u64, b: u64) {
    service_dump_request();
    global().record(JournalRecord::now(kind, a, b));
}

/// The dump path registered by [`arm`] (panic hook + signal requests).
fn armed_path() -> &'static Mutex<Option<PathBuf>> {
    static PATH: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

/// Writes the journal to the armed path, if any (best-effort: dump
/// failures must never take down the dumping process).
fn dump_to_armed_path() {
    let path = armed_path().lock().ok().and_then(|p| p.clone());
    if let Some(path) = path {
        let _ = global().write_dump(&path);
    }
}

/// If a signal requested a dump, clear the request and write the dump
/// (called from [`record`], i.e. from safe, non-handler context).
pub fn service_dump_request() {
    #[cfg(unix)]
    if sig::DUMP_REQUESTED.swap(false, Ordering::Relaxed) {
        global().record(JournalRecord::now(EventKind::DumpRequested, 0, 0));
        dump_to_armed_path();
    }
}

/// Arms post-mortem dumping to `path`: registers the path, installs a
/// panic hook that records [`EventKind::Panic`] and writes the dump
/// before delegating to the previous hook, and (on Unix) installs a
/// `SIGUSR1` handler that requests a dump from the next [`record`]
/// call. Safe to call more than once; the newest path wins.
pub fn arm(path: &Path) {
    if let Ok(mut armed) = armed_path().lock() {
        *armed = Some(path.to_path_buf());
    }
    static HOOKED: OnceLock<()> = OnceLock::new();
    HOOKED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            global().record(JournalRecord::now(EventKind::Panic, 0, 0));
            dump_to_armed_path();
            previous(info);
        }));
        #[cfg(unix)]
        sig::install();
    });
}

/// `SIGUSR1` plumbing. The handler only flips an atomic flag; the dump
/// itself is written from the next [`record`] call on a normal thread
/// (writing files from a signal handler is not async-signal-safe).
#[cfg(unix)]
mod sig {
    use std::sync::atomic::AtomicBool;

    /// Set by the handler, consumed by [`super::service_dump_request`].
    pub static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

    #[cfg(target_os = "macos")]
    const SIGUSR1: i32 = 30;
    #[cfg(not(target_os = "macos"))]
    const SIGUSR1: i32 = 10;

    extern "C" fn on_sigusr1(_signum: i32) {
        DUMP_REQUESTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Registers the handler via the libc `signal(2)` symbol directly —
    /// the workspace has no libc crate, and `signal` is in every Unix
    /// libc the toolchain links anyway.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        // SAFETY: `on_sigusr1` is an `extern "C" fn(i32)` matching the
        // sighandler_t ABI, and it only performs an atomic store, which
        // is async-signal-safe. A failed registration returns SIG_ERR,
        // which we deliberately ignore (the journal still works, only
        // signal-requested dumps are unavailable).
        unsafe {
            signal(SIGUSR1, on_sigusr1 as *const () as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_last_cap_records_in_order() {
        let j = Journal::with_capacity(4);
        for i in 0..10u64 {
            j.record(JournalRecord {
                ms: i as u32,
                tid: 0,
                kind: EventKind::Mark,
                a: i,
                b: 0,
            });
        }
        let (total, recs) = j.snapshot();
        assert_eq!(total, 10);
        assert_eq!(
            recs.iter().map(|r| r.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        j.reset();
        assert_eq!(j.snapshot(), (0, Vec::new()));
    }

    #[test]
    fn partial_ring_dumps_in_insertion_order() {
        let j = Journal::with_capacity(8);
        j.record(JournalRecord::now(EventKind::SweepStarted, 3, 2));
        j.record(JournalRecord::now(EventKind::SweepCompleted, 3, 17));
        let (total, recs) = j.snapshot();
        assert_eq!(total, 2);
        assert_eq!(recs[0].kind, EventKind::SweepStarted);
        assert_eq!(recs[1].kind, EventKind::SweepCompleted);
        assert_eq!((recs[1].a, recs[1].b), (3, 17));
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::with_capacity(4);
        j.set_enabled(false);
        j.record(JournalRecord::now(EventKind::Mark, 1, 2));
        j.record_batch(&[JournalRecord::now(EventKind::Mark, 3, 4)]);
        assert_eq!(j.snapshot().0, 0);
        j.set_enabled(true);
        j.record(JournalRecord::now(EventKind::Mark, 1, 2));
        assert_eq!(j.snapshot().0, 1);
    }

    #[test]
    fn batch_appends_under_one_lock_and_wraps() {
        let j = Journal::with_capacity(3);
        let batch: Vec<JournalRecord> = (0..5)
            .map(|i| JournalRecord {
                ms: 0,
                tid: 1,
                kind: EventKind::SweepTaskDone,
                a: i,
                b: 5,
            })
            .collect();
        j.record_batch(&batch);
        let (total, recs) = j.snapshot();
        assert_eq!(total, 5);
        assert_eq!(recs.iter().map(|r| r.a).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn dump_is_valid_json_with_schema_and_kinds() {
        let j = Journal::with_capacity(4);
        j.record(JournalRecord {
            ms: 12,
            tid: 3,
            kind: EventKind::RunCompleted,
            a: 100,
            b: 200,
        });
        let dump = j.dump_json();
        crate::export::validate_json(&dump).unwrap();
        assert!(dump.contains("\"schema\":\"lp-journal-v1\""));
        assert!(dump.contains("\"total_recorded\":1"));
        assert!(dump.contains("\"kind\":\"run_completed\""));
        assert!(dump.contains("\"a\":100"));
    }

    #[test]
    fn kind_names_are_unique() {
        let names: std::collections::HashSet<&str> =
            EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn write_dump_round_trips_through_fs() {
        let j = Journal::with_capacity(4);
        j.record(JournalRecord::now(EventKind::Mark, 7, 8));
        let path =
            std::env::temp_dir().join(format!("lp-journal-test-{}.json", std::process::id()));
        j.write_dump(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, j.dump_json());
        let _ = std::fs::remove_file(&path);
    }
}
