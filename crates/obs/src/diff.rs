//! Ranked comparison of two [`RunSnapshot`]s.
//!
//! `diff(a, b)` aligns every counter and histogram by name and ranks
//! the divergences: counters get an absolute and a relative delta
//! (`|b − a| / max(a, b)`, so an appear/vanish is exactly 1.0),
//! histograms get a per-bucket z-score against the pooled count.
//! A divergence is **significant** only when it clears both the
//! relative threshold and an absolute noise floor — tiny counters
//! flapping by one event don't page anyone. Wall-clock histograms
//! (`*_nanos`) and inherently racy counters (work stealing, span
//! drops) are reported but never significant unless explicitly
//! included, so same-seed CI diffs converge to zero.
//!
//! Surfaced as `lpstudy diff A.json B.json [--json]`.

use crate::export::JsonWriter;
use crate::snapshot::RunSnapshot;

/// Schema tag of the JSON diff report.
pub const DIFF_SCHEMA: &str = "lp-diff-v1";

/// Counters whose values legitimately vary between identical runs
/// (scheduling races); never significant.
pub const NOISY_COUNTERS: &[&str] = &["sweep_tasks_stolen", "spans_dropped"];

/// Tuning knobs for significance.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Minimum relative delta for a counter to be significant.
    pub rel_threshold: f64,
    /// Minimum absolute delta (events) for counters and buckets.
    pub noise_floor: u64,
    /// Minimum per-bucket |z| for a histogram to be significant.
    pub z_threshold: f64,
    /// Treat timing histograms (`*_nanos`) like any other.
    pub include_timing: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            rel_threshold: 0.05,
            noise_floor: 16,
            z_threshold: 3.0,
            include_timing: false,
        }
    }
}

/// One counter that differs between the two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDelta {
    pub name: String,
    pub a: u64,
    pub b: u64,
    /// `|b − a| / max(a, b)` — in `[0, 1]`, 1.0 for appear/vanish.
    pub rel: f64,
    pub significant: bool,
}

/// One histogram bucket whose count moved.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketDelta {
    /// log2 bucket index.
    pub bucket: usize,
    pub a: u64,
    pub b: u64,
    /// `(b − a) / sqrt(max(1, (a + b) / 2))` — Poisson-ish z-score.
    pub z: f64,
}

/// One histogram that differs between the two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct HistDelta {
    pub name: String,
    pub count_a: u64,
    pub count_b: u64,
    /// Buckets with any movement, largest |z| first.
    pub buckets: Vec<BucketDelta>,
    /// Largest |z| over all buckets.
    pub max_z: f64,
    pub significant: bool,
}

/// The full comparison, ranked most-divergent first.
#[derive(Debug, Clone, PartialEq)]
pub struct Diff {
    pub counters: Vec<CounterDelta>,
    pub hists: Vec<HistDelta>,
}

fn rel_delta(a: u64, b: u64) -> f64 {
    let hi = a.max(b);
    if hi == 0 {
        return 0.0;
    }
    (a.abs_diff(b)) as f64 / hi as f64
}

fn union_names<'a, T>(a: &'a [(String, T)], b: &'a [(String, T)]) -> Vec<&'a str> {
    let mut names: Vec<&str> = a.iter().map(|(n, _)| n.as_str()).collect();
    for (n, _) in b {
        if !names.iter().any(|have| have == n) {
            names.push(n);
        }
    }
    names
}

/// Compares two snapshots under `opts`. Entries with no movement are
/// omitted; the rest are ranked significant-first, then by relative
/// delta (counters) / max |z| (histograms), then absolute delta, then
/// name, so the output order is total and deterministic.
#[must_use]
pub fn diff(a: &RunSnapshot, b: &RunSnapshot, opts: &DiffOptions) -> Diff {
    let mut counters = Vec::new();
    for name in union_names(&a.counters, &b.counters) {
        let (va, vb) = (a.counter(name), b.counter(name));
        if va == vb {
            continue;
        }
        let rel = rel_delta(va, vb);
        let noisy = NOISY_COUNTERS.contains(&name);
        let significant =
            !noisy && rel >= opts.rel_threshold && va.abs_diff(vb) >= opts.noise_floor;
        counters.push(CounterDelta {
            name: name.to_string(),
            a: va,
            b: vb,
            rel,
            significant,
        });
    }
    counters.sort_by(|x, y| {
        y.significant
            .cmp(&x.significant)
            .then(y.rel.total_cmp(&x.rel))
            .then(y.a.abs_diff(y.b).cmp(&x.a.abs_diff(x.b)))
            .then(x.name.cmp(&y.name))
    });

    let empty = crate::metrics::Histogram::default();
    let mut hists = Vec::new();
    for name in union_names(&a.hists, &b.hists) {
        let ha = a.hist(name).unwrap_or(&empty);
        let hb = b.hist(name).unwrap_or(&empty);
        if ha.buckets == hb.buckets && ha.count == hb.count {
            continue;
        }
        let mut buckets = Vec::new();
        let mut max_z = 0.0f64;
        let mut any_bucket_significant = false;
        for k in 0..64 {
            let (ba, bb) = (ha.buckets[k], hb.buckets[k]);
            if ba == bb {
                continue;
            }
            let pooled = ((ba + bb) / 2).max(1) as f64;
            let z = (bb as f64 - ba as f64) / pooled.sqrt();
            if z.abs() > max_z {
                max_z = z.abs();
            }
            if z.abs() > opts.z_threshold && ba.abs_diff(bb) > opts.noise_floor {
                any_bucket_significant = true;
            }
            buckets.push(BucketDelta {
                bucket: k,
                a: ba,
                b: bb,
                z,
            });
        }
        buckets.sort_by(|x, y| {
            y.z.abs()
                .total_cmp(&x.z.abs())
                .then(x.bucket.cmp(&y.bucket))
        });
        let timing = name.ends_with("_nanos") && !opts.include_timing;
        hists.push(HistDelta {
            name: name.to_string(),
            count_a: ha.count,
            count_b: hb.count,
            buckets,
            max_z,
            significant: any_bucket_significant && !timing,
        });
    }
    hists.sort_by(|x, y| {
        y.significant
            .cmp(&x.significant)
            .then(y.max_z.total_cmp(&x.max_z))
            .then(x.name.cmp(&y.name))
    });

    Diff { counters, hists }
}

impl Diff {
    /// Number of significant divergences (counters + histograms).
    #[must_use]
    pub fn significant(&self) -> usize {
        self.counters.iter().filter(|c| c.significant).count()
            + self.hists.iter().filter(|h| h.significant).count()
    }

    /// True when nothing moved at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Human-readable report. The final line is always
    /// `N significant divergence(s)` so scripts can `grep '^0 significant'`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("snapshots are identical\n");
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                let mark = if c.significant { "!" } else { " " };
                let delta = c.b as i128 - c.a as i128;
                out.push_str(&format!(
                    " {mark} {:<28} {:>14} -> {:<14} ({delta:+}, {:.1}%)\n",
                    c.name,
                    c.a,
                    c.b,
                    c.rel * 100.0
                ));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.hists {
                let mark = if h.significant { "!" } else { " " };
                out.push_str(&format!(
                    " {mark} {:<28} count {} -> {} (max |z| {:.2})\n",
                    h.name, h.count_a, h.count_b, h.max_z
                ));
                for b in h.buckets.iter().take(4) {
                    out.push_str(&format!(
                        "     bucket 2^{:<2} {:>14} -> {:<14} (z {:+.2})\n",
                        b.bucket, b.a, b.b, b.z
                    ));
                }
            }
        }
        out.push_str(&format!(
            "{} significant divergence(s)\n",
            self.significant()
        ));
        out
    }

    /// Machine-readable report (schema `lp-diff-v1`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.key("schema");
        w.string(DIFF_SCHEMA);
        w.key("significant");
        w.uint(self.significant() as u64);
        w.key("counters");
        w.begin_array();
        for c in &self.counters {
            w.begin_object();
            w.key("name");
            w.string(&c.name);
            w.key("a");
            w.uint(c.a);
            w.key("b");
            w.uint(c.b);
            w.key("rel");
            w.fixed(c.rel, 6);
            w.key("significant");
            w.boolean(c.significant);
            w.end_object();
        }
        w.end_array();
        w.key("histograms");
        w.begin_array();
        for h in &self.hists {
            w.begin_object();
            w.key("name");
            w.string(&h.name);
            w.key("count_a");
            w.uint(h.count_a);
            w.key("count_b");
            w.uint(h.count_b);
            w.key("max_z");
            w.fixed(h.max_z, 3);
            w.key("significant");
            w.boolean(h.significant);
            w.key("buckets");
            w.begin_array();
            for b in &h.buckets {
                w.begin_object();
                w.key("bucket");
                w.uint(b.bucket as u64);
                w.key("a");
                w.uint(b.a);
                w.key("b");
                w.uint(b.b);
                w.key("z");
                w.fixed(b.z, 3);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Hist};
    use crate::registry::Registry;
    use crate::snapshot::capture;

    fn snap(build: impl Fn(&Registry)) -> RunSnapshot {
        let reg = Registry::new();
        build(&reg);
        capture(&reg, "diff-test")
    }

    #[test]
    fn self_diff_is_empty() {
        let s = snap(|r| {
            r.counters().add(Counter::Loads, 12345);
            r.record_hist(Hist::LoopIterations, 99);
        });
        let d = diff(&s, &s, &DiffOptions::default());
        assert!(d.is_empty());
        assert_eq!(d.significant(), 0);
        assert!(d.render().contains("snapshots are identical"));
        assert!(d.render().ends_with("0 significant divergence(s)\n"));
    }

    #[test]
    fn counter_divergence_is_ranked_and_marked() {
        let a = snap(|r| {
            r.counters().add(Counter::Loads, 1000);
            r.counters().add(Counter::StoreHits, 100);
        });
        let b = snap(|r| {
            r.counters().add(Counter::Loads, 1002); // 0.2% — below threshold
            r.counters().add(Counter::StoreMisses, 100); // hits vanish, misses appear
        });
        let d = diff(&a, &b, &DiffOptions::default());
        assert_eq!(d.significant(), 2);
        // Appear/vanish (rel 1.0) outrank the small drift.
        assert_eq!(d.counters[0].rel, 1.0);
        assert_eq!(d.counters[1].rel, 1.0);
        assert!(d.counters[0].significant && d.counters[1].significant);
        let loads = d.counters.iter().find(|c| c.name == "loads").unwrap();
        assert!(!loads.significant, "0.2% drift is below the 5% threshold");
    }

    #[test]
    fn noise_floor_and_noisy_counters_stay_quiet() {
        let a = snap(|r| r.counters().add(Counter::SweepTasksStolen, 4));
        let b = snap(|r| r.counters().add(Counter::SweepTasksStolen, 900));
        let d = diff(&a, &b, &DiffOptions::default());
        assert_eq!(d.counters.len(), 1);
        assert!(!d.counters[0].significant, "stealing is declared noisy");

        let a = snap(|r| r.counters().add(Counter::StoreHits, 2));
        let b = snap(|r| r.counters().add(Counter::StoreHits, 9));
        let d = diff(&a, &b, &DiffOptions::default());
        assert!(
            !d.counters[0].significant,
            "rel 0.78 but |delta|=7 < noise floor 16"
        );
    }

    #[test]
    fn histogram_shift_is_significant_but_timing_is_excluded() {
        let a = snap(|r| {
            for _ in 0..500 {
                r.record_hist(Hist::LoopIterations, 8);
                r.record_hist(Hist::ProfileNanos, 1 << 10);
            }
        });
        let b = snap(|r| {
            for _ in 0..500 {
                r.record_hist(Hist::LoopIterations, 1 << 20);
                r.record_hist(Hist::ProfileNanos, 1 << 14);
            }
        });
        let d = diff(&a, &b, &DiffOptions::default());
        let iters = d
            .hists
            .iter()
            .find(|h| h.name == "loop_iterations")
            .unwrap();
        assert!(iters.significant);
        assert!(iters.max_z > 3.0);
        assert_eq!(iters.buckets[0].z.abs(), iters.max_z);
        let timing = d.hists.iter().find(|h| h.name == "profile_nanos").unwrap();
        assert!(!timing.significant, "wall-clock hists excluded by default");
        let all = diff(
            &a,
            &b,
            &DiffOptions {
                include_timing: true,
                ..DiffOptions::default()
            },
        );
        let timing = all
            .hists
            .iter()
            .find(|h| h.name == "profile_nanos")
            .unwrap();
        assert!(timing.significant, "--include-timing lifts the exclusion");
    }

    #[test]
    fn diff_is_antisymmetric() {
        let a = snap(|r| {
            r.counters().add(Counter::Loads, 5000);
            r.record_hist(Hist::LoopIterations, 3);
        });
        let b = snap(|r| {
            r.counters().add(Counter::Loads, 9000);
            r.record_hist(Hist::LoopIterations, 300);
        });
        let ab = diff(&a, &b, &DiffOptions::default());
        let ba = diff(&b, &a, &DiffOptions::default());
        assert_eq!(ab.significant(), ba.significant());
        for (x, y) in ab.counters.iter().zip(&ba.counters) {
            assert_eq!(x.name, y.name);
            assert_eq!((x.a, x.b), (y.b, y.a));
            assert_eq!(x.rel, y.rel);
        }
        for (x, y) in ab.hists.iter().zip(&ba.hists) {
            assert_eq!(x.name, y.name);
            for (bx, by) in x.buckets.iter().zip(&y.buckets) {
                assert_eq!((bx.a, bx.b), (by.b, by.a));
                assert_eq!(bx.z, -by.z);
            }
        }
    }

    #[test]
    fn json_report_is_valid_and_tagged() {
        let a = snap(|r| r.counters().add(Counter::Loads, 100));
        let b = snap(|r| r.counters().add(Counter::Loads, 900));
        let d = diff(&a, &b, &DiffOptions::default());
        let json = d.to_json();
        crate::export::validate_json(&json).unwrap();
        assert!(json.contains("\"schema\":\"lp-diff-v1\""));
        assert!(json.contains("\"significant\":1"));
    }
}
