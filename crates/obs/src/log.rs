//! Leveled stderr logging with an `LP_LOG` environment filter.
//!
//! Levels are `off < info < debug`. The effective level comes from, in
//! priority order: an explicit [`set_level`] call, a `--quiet` flag
//! (via [`init`]), the `LP_LOG` environment variable (`off`, `info`,
//! `debug`), then the default `info`. Lines are prefixed with seconds
//! since the registry epoch so interleaved phases are easy to read:
//!
//! ```text
//! [   2.41s info] [7/40] profiled 429.mcf — 12.3M events/s
//! ```

use crate::registry::global;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Progress and status lines.
    Info = 1,
    /// Everything, including per-item detail.
    Debug = 2,
}

impl Level {
    fn from_env() -> Level {
        match std::env::var("LP_LOG").ok().as_deref() {
            Some("off") | Some("0") | Some("none") => Level::Off,
            Some("debug") => Level::Debug,
            Some("info") | None | Some(_) => Level::Info,
        }
    }
}

/// 255 = uninitialized (resolve from the environment on first use).
static LEVEL: AtomicU8 = AtomicU8::new(255);

fn current_level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Info,
        2 => Level::Debug,
        _ => {
            let l = Level::from_env();
            LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
    }
}

/// Resolves the level for a binary: `--quiet` forces `off`, otherwise
/// `LP_LOG` (default `info`) decides.
pub fn init(quiet: bool) {
    let level = if quiet { Level::Off } else { Level::from_env() };
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Overrides the level directly (tests, embedding).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether messages at `level` are currently emitted.
#[must_use]
pub fn enabled(level: Level) -> bool {
    level <= current_level() && level != Level::Off
}

/// Writes one formatted line to stderr (callers go through the macros,
/// which check [`enabled`] first so format arguments aren't evaluated
/// for suppressed lines).
pub fn emit(tag: &str, message: &str) {
    let secs = global().now_ns() as f64 / 1e9;
    eprintln!("[{secs:>7.2}s {tag}] {message}");
}

/// Logs at `info` level.
#[macro_export]
macro_rules! lp_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit("info", &format!($($arg)*));
        }
    };
}

/// Logs a warning: surprising-but-recoverable conditions. Emitted at
/// `info` verbosity (there is no separate warn level) with a `warn` tag
/// so it stands out in interleaved output.
#[macro_export]
macro_rules! lp_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit("warn", &format!($($arg)*));
        }
    };
}

/// Logs at `debug` level.
#[macro_export]
macro_rules! lp_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit("debug", &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_gate_correctly() {
        set_level(Level::Off);
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Info));
        assert!(enabled(Level::Debug));
        // Off is never "enabled", even at debug verbosity.
        assert!(!enabled(Level::Off));
        set_level(Level::Info);
    }

    #[test]
    fn init_quiet_silences() {
        init(true);
        assert!(!enabled(Level::Info));
        init(false);
    }
}
