//! Phase spans: nestable RAII timers over a monotonic clock.
//!
//! `let _s = span!("profile");` records one [`SpanRecord`] when the guard
//! drops. Nesting is tracked per thread, so exporters can rebuild the
//! phase tree without the recorder paying for one. The registry caps the
//! number of retained spans; overflow increments
//! [`crate::Counter::SpansDropped`] instead of growing without bound.

use crate::registry::global;
use std::sync::atomic::{AtomicU64, Ordering};

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (static so recording never allocates for it).
    pub name: &'static str,
    /// Nanoseconds since the registry epoch at which the span began.
    pub start_ns: u64,
    /// Nanoseconds since the registry epoch at which the span ended.
    pub end_ns: u64,
    /// Nesting depth on its thread at entry (top level = 0).
    pub depth: u32,
    /// Dense id of the recording thread (main thread observes 0 when it
    /// is the first to record).
    pub tid: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Dense id of the calling thread (assigned on first use).
#[must_use]
pub fn thread_tid() -> u64 {
    THREAD_TID.with(|t| *t)
}

/// An open span; records itself into the global registry on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    depth: u32,
    tid: u64,
}

impl SpanGuard {
    /// Opens a span named `name` at the current nesting depth.
    pub fn enter(name: &'static str) -> SpanGuard {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            name,
            start_ns: global().now_ns(),
            depth,
            tid: thread_tid(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end_ns = global().now_ns();
        global().record_span(SpanRecord {
            name: self.name,
            start_ns: self.start_ns,
            end_ns,
            depth: self.depth,
            tid: self.tid,
        });
    }
}

/// Opens a phase span for the enclosing scope: `let _s = span!("parse");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_duration_saturates() {
        let r = SpanRecord {
            name: "x",
            start_ns: 10,
            end_ns: 4,
            depth: 0,
            tid: 0,
        };
        assert_eq!(r.duration_ns(), 0);
    }

    #[test]
    fn tid_is_stable_within_a_thread() {
        assert_eq!(thread_tid(), thread_tid());
    }
}
