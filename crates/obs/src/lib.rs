//! # lp-obs — observability substrate for the limit-study pipeline
//!
//! The run-time component of Loopapalooza exists to *measure* programs;
//! this crate lets the reproduction measure **itself**:
//!
//! - **Phase spans** — `let _s = span!("profile");` times a scope on the
//!   monotonic clock, nestable per thread, recorded in a global registry;
//! - **Typed counters & histograms** — events consumed, RAW conflicts,
//!   cactus-stack filter hits, per-predictor hit/miss, regions created,
//!   evaluations performed ([`Counter`], [`Hist`]);
//! - **Per-worker accumulation** — parallel phases give each worker a
//!   [`LocalStats`] that buffers counters, histograms, and its span
//!   stream privately and merges everything into the registry in one
//!   flush, so concurrent workers never race on a shared summary;
//! - **Exporters** — a human summary for stderr ([`summary`]), plain
//!   JSON ([`to_json`]), Chrome `trace_event` JSON ([`chrome_trace`])
//!   loadable in `chrome://tracing` / Perfetto, and Prometheus text
//!   exposition ([`prometheus`]) with a coherent registry freeze;
//! - **Cross-run layer** — a serializable registry freeze
//!   ([`snapshot`], `--snapshot-out`), a ranked two-snapshot comparison
//!   ([`diff`], `lpstudy diff`), and an append-only run ledger with a
//!   MAD-band regression check ([`trend`], `lpbench trend --check`);
//! - **Flight recorder** — an always-on bounded ring journal of coarse
//!   lifecycle events ([`journal`]), dumped to JSON on panic, on
//!   `SIGUSR1`, or via the binaries' `--flight-out` flag;
//! - **Sampling self-profiler** — the interpreter publishes its
//!   dispatch position through a relaxed atomic and a sampler thread
//!   attributes wall time per opcode pair ([`sampler`]);
//! - **Logging** — `lp_info!` / `lp_debug!` macros filtered by the
//!   `LP_LOG` environment variable and the binaries' `--quiet` flag.
//!
//! The crate has no dependencies and never allocates on the counting
//! hot path; see DESIGN.md §7 for the measured overhead budget.
//!
//! ```
//! use lp_obs::{span, Counter};
//!
//! {
//!     let _phase = span!("parse");
//!     lp_obs::counters().add(Counter::EvalsPerformed, 1);
//! } // span recorded here
//! let trace = lp_obs::chrome_trace(lp_obs::registry(), "demo");
//! assert!(trace.contains("\"name\":\"parse\""));
//! ```

pub mod diff;
pub mod export;
pub mod journal;
pub mod local;
pub mod log;
pub mod metrics;
pub mod prometheus;
pub mod registry;
pub mod sampler;
pub mod snapshot;
pub mod span;
pub mod trend;

pub use diff::{Diff, DiffOptions};
pub use export::{
    chrome_trace, json_escape, summary, to_json, validate_json, write_chrome_trace, JsonValue,
    JsonWriter,
};
pub use journal::{EventKind, Journal, JournalRecord, JOURNAL_CAP};
pub use local::LocalStats;
pub use log::Level;
pub use metrics::{Counter, CounterBank, Hist, Histogram, PredictorKind, COUNTER_SLOTS};
pub use registry::{Registry, MAX_SPANS};
pub use snapshot::RunSnapshot;
pub use span::{SpanGuard, SpanRecord};
pub use trend::TrendRecord;

/// The process-wide registry (spans, counters, histograms).
#[must_use]
pub fn registry() -> &'static Registry {
    registry::global()
}

/// The process-wide counter bank (shorthand for `registry().counters()`).
#[must_use]
pub fn counters() -> &'static CounterBank {
    registry().counters()
}

/// Records one sample into a process-wide histogram.
pub fn record_hist(hist: Hist, value: u64) {
    registry().record_hist(hist, value);
}

/// Merges a locally-accumulated histogram into a process-wide slot
/// (shorthand for `registry().merge_hist(..)`).
pub fn merge_hist(hist: Hist, other: &Histogram) {
    registry().merge_hist(hist, other);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the global registry.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_order() {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        registry().reset();
        {
            let _outer = span!("outer");
            {
                let _inner = span!("inner");
            }
            let _sibling = span!("sibling");
        }
        let spans = registry().spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        // Completion order: inner closes first, outer last.
        assert_eq!(names, vec!["inner", "sibling", "outer"]);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("outer").depth, 0);
        assert_eq!(by_name("inner").depth, 1);
        assert_eq!(by_name("sibling").depth, 1);
        // The outer span brackets both children on the clock.
        assert!(by_name("outer").start_ns <= by_name("inner").start_ns);
        assert!(by_name("outer").end_ns >= by_name("sibling").end_ns);
        registry().reset();
    }

    #[test]
    fn counters_aggregate_across_adds() {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        registry().reset();
        counters().add(Counter::RawConflicts, 5);
        counters().add(Counter::RawConflicts, 7);
        counters().add(Counter::PredictorHit(PredictorKind::Hybrid), 3);
        assert_eq!(counters().get(Counter::RawConflicts), 12);
        assert_eq!(
            counters().get(Counter::PredictorHit(PredictorKind::Hybrid)),
            3
        );
        assert_eq!(
            counters().get(Counter::PredictorMiss(PredictorKind::Hybrid)),
            0
        );
        registry().reset();
    }

    #[test]
    fn doc_example_flow_produces_chrome_trace() {
        let _guard = GLOBAL_LOCK.lock().unwrap();
        registry().reset();
        {
            let _phase = span!("parse");
        }
        let trace = chrome_trace(registry(), "demo");
        assert!(trace.contains("\"name\":\"parse\""));
        registry().reset();
    }
}
