//! Prometheus text-exposition of the registry.
//!
//! [`snapshot`] freezes the registry coherently — every counter read in
//! one pass, every histogram cloned under a single lock — and
//! [`render`] emits the snapshot in the Prometheus text exposition
//! format (`# TYPE` headers, `name{label="value"} value` samples,
//! cumulative `_bucket`/`_sum`/`_count` histogram series). This is the
//! exact payload a future `lpd` daemon's `/metrics` endpoint serves,
//! and what the binaries' shared `--metrics-out PATH` flag writes at
//! exit.
//!
//! The workspace has no Prometheus client (or any dependency at all),
//! so [`parse`] is a small hand-rolled validator for the format; the
//! unit tests round-trip every counter in the registry through
//! render → parse.

use crate::metrics::{Counter, Hist, Histogram};
use crate::registry::Registry;
use std::fmt::Write as _;

/// A coherent freeze of the registry (plus journal occupancy).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Every counter with its value (zeros included), export order.
    pub counters: Vec<(Counter, u64)>,
    /// Every histogram slot, export order.
    pub hists: Vec<(Hist, Histogram)>,
    /// Spans currently retained by the registry.
    pub spans_retained: u64,
    /// Journal records ever recorded.
    pub journal_total: u64,
    /// Journal records currently retained in the ring.
    pub journal_retained: u64,
}

/// Freezes `reg` (and the process-wide journal) into a [`Snapshot`].
#[must_use]
pub fn snapshot(reg: &Registry) -> Snapshot {
    let counters = Counter::all()
        .into_iter()
        .map(|c| (c, reg.counters().get(c)))
        .collect();
    let hists = Hist::ALL
        .iter()
        .zip(reg.hists_snapshot())
        .map(|(&h, hist)| (h, hist))
        .collect();
    let (journal_total, journal_records) = crate::journal::global().snapshot();
    Snapshot {
        counters,
        hists,
        spans_retained: reg.span_count() as u64,
        journal_total,
        journal_retained: journal_records.len() as u64,
    }
}

/// The exposition family and optional label a counter renders as:
/// per-predictor counters share the two `lp_predictor_{hits,misses}`
/// families with a `kind` label; everything else is its own family.
#[must_use]
pub fn counter_series(counter: Counter) -> (String, Option<(&'static str, &'static str)>) {
    match counter {
        Counter::PredictorHit(kind) => (
            "lp_predictor_hits_total".to_string(),
            Some(("kind", kind.label())),
        ),
        Counter::PredictorMiss(kind) => (
            "lp_predictor_misses_total".to_string(),
            Some(("kind", kind.label())),
        ),
        c => (format!("lp_{}_total", c.name()), None),
    }
}

/// Escapes a label value per the text exposition format: backslash,
/// double quote, and line feed become `\\`, `\"`, and `\n`.
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text per the exposition format: only backslash and
/// line feed are escaped (`\\`, `\n`) — quotes are legal verbatim.
#[must_use]
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn counter_help(counter: Counter) -> String {
    match counter {
        Counter::PredictorHit(_) => "Value-predictor hits by predictor kind.".to_string(),
        Counter::PredictorMiss(_) => "Value-predictor misses by predictor kind.".to_string(),
        c => format!("Cumulative {} events.", c.name()),
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
#[must_use]
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
    for &(counter, value) in &snap.counters {
        let (family, label) = counter_series(counter);
        if typed.insert(family.clone()) {
            let _ = writeln!(
                out,
                "# HELP {family} {}",
                escape_help(&counter_help(counter))
            );
            let _ = writeln!(out, "# TYPE {family} counter");
        }
        match label {
            Some((k, v)) => {
                let _ = writeln!(out, "{family}{{{k}=\"{}\"}} {value}", escape_label_value(v));
            }
            None => {
                let _ = writeln!(out, "{family} {value}");
            }
        }
    }
    let gauges = [
        (
            "lp_spans_retained",
            snap.spans_retained,
            "Spans retained by the registry.",
        ),
        (
            "lp_journal_records_retained",
            snap.journal_retained,
            "Flight-recorder records retained in the ring.",
        ),
    ];
    for (name, value, help) in gauges {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    let _ = writeln!(
        out,
        "# HELP lp_journal_records_total Flight-recorder records ever recorded."
    );
    let _ = writeln!(out, "# TYPE lp_journal_records_total counter");
    let _ = writeln!(out, "lp_journal_records_total {}", snap.journal_total);
    for (h, hist) in &snap.hists {
        let family = format!("lp_{}", h.name());
        let _ = writeln!(
            out,
            "# HELP {family} {}",
            escape_help(&format!("Log2-bucket histogram of {} samples.", h.name()))
        );
        let _ = writeln!(out, "# TYPE {family} histogram");
        let mut cumulative = 0u64;
        for (k, &n) in hist.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            // Power-of-two bucket k covers values up to 2^(k+1) - 1.
            let le = if k >= 63 {
                u64::MAX
            } else {
                (1u64 << (k + 1)) - 1
            };
            let _ = writeln!(out, "{family}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{family}_sum {}", hist.sum);
        let _ = writeln!(out, "{family}_count {}", hist.count);
    }
    out
}

/// Renders the process-wide registry.
#[must_use]
pub fn render_global() -> String {
    render(&snapshot(crate::registry::global()))
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms this keeps the `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn parse_name(line: &str) -> Result<(String, &str), String> {
    let mut chars = line.char_indices();
    match chars.next() {
        Some((_, c)) if is_name_start(c) => {}
        _ => return Err(format!("bad metric name start: {line:?}")),
    }
    let end = line
        .char_indices()
        .find(|&(_, c)| !is_name_char(c))
        .map_or(line.len(), |(i, _)| i);
    Ok((line[..end].to_string(), &line[end..]))
}

/// Parsed label pairs plus the unconsumed remainder of the line.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

fn parse_labels(mut rest: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    rest = &rest[1..]; // consume '{'
    loop {
        rest = rest.trim_start();
        if let Some(tail) = rest.strip_prefix('}') {
            return Ok((labels, tail));
        }
        let (key, after_key) = parse_name(rest)?;
        let after_eq = after_key
            .strip_prefix('=')
            .ok_or_else(|| format!("missing '=' in label: {rest:?}"))?;
        let after_quote = after_eq
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted label value: {rest:?}"))?;
        let mut value = String::new();
        let mut chars = after_quote.char_indices();
        let close = loop {
            let (i, c) = chars.next().ok_or("unterminated label value")?;
            match c {
                '"' => break i,
                '\\' => {
                    let (_, esc) = chars.next().ok_or("truncated label escape")?;
                    match esc {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => return Err(format!("bad label escape \\{other}")),
                    }
                }
                c => value.push(c),
            }
        };
        labels.push((key, value));
        rest = &after_quote[close + 1..];
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail;
        }
    }
}

/// Validates Prometheus text exposition and returns the samples.
///
/// Checks line structure (`# TYPE`/`# HELP` comments, sample lines),
/// metric-name lexing, label quoting/escaping, numeric values, and
/// that every sample's family was declared by a preceding `# TYPE`
/// line (histogram samples match their base family).
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    let mut declared: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| err("TYPE without name".into()))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| err("TYPE without kind".into()))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(err(format!("unknown metric type {kind:?}")));
                }
                let (parsed, rest) = parse_name(name).map_err(err)?;
                if !rest.is_empty() {
                    return Err(err(format!("bad metric name {name:?}")));
                }
                declared.insert(parsed);
            } else if let Some(decl) = comment.strip_prefix("HELP ") {
                let (_, help) = parse_name(decl).map_err(err)?;
                // Only `\\` and `\n` are legal escapes in HELP text.
                let mut chars = help.trim_start().chars();
                while let Some(c) = chars.next() {
                    if c != '\\' {
                        continue;
                    }
                    match chars.next() {
                        Some('\\' | 'n') => {}
                        Some(other) => {
                            return Err(err(format!("bad HELP escape \\{other}")));
                        }
                        None => return Err(err("truncated HELP escape".into())),
                    }
                }
            }
            // Other comments pass through unchecked.
            continue;
        }
        let (name, rest) = parse_name(line).map_err(err)?;
        let (labels, rest) = if rest.starts_with('{') {
            parse_labels(rest).map_err(err)?
        } else {
            (Vec::new(), rest)
        };
        let mut fields = rest.split_whitespace();
        let value_text = fields
            .next()
            .ok_or_else(|| err(format!("sample {name:?} has no value")))?;
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|e| err(format!("bad value {v:?}: {e}")))?,
        };
        // At most one optional timestamp may follow.
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|e| err(format!("bad timestamp {ts:?}: {e}")))?;
        }
        if fields.next().is_some() {
            return Err(err(format!("trailing fields after sample {name:?}")));
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| declared.contains(*base))
            .unwrap_or(&name);
        if !declared.contains(family) {
            return Err(err(format!("sample {name:?} has no preceding # TYPE")));
        }
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PredictorKind;

    fn seeded() -> Registry {
        let reg = Registry::new();
        reg.counters().add(Counter::Loads, 1780096);
        reg.counters().add(Counter::PhisResolved, 42);
        reg.counters()
            .add(Counter::PredictorHit(PredictorKind::Fcm), 7);
        reg.record_hist(Hist::LoopIterations, 3);
        reg.record_hist(Hist::LoopIterations, 1000);
        reg
    }

    #[test]
    fn render_parses_and_round_trips_every_counter() {
        let reg = seeded();
        let snap = snapshot(&reg);
        let text = render(&snap);
        let samples = parse(&text).unwrap();
        // Every counter in the registry (zeros included) must come back
        // with its exact value under its exposition series name.
        for (counter, value) in &snap.counters {
            let (family, label) = counter_series(*counter);
            let hit = samples.iter().find(|s| {
                s.name == family
                    && match label {
                        Some((k, v)) => s.labels == vec![(k.to_string(), v.to_string())],
                        None => s.labels.is_empty(),
                    }
            });
            let hit = hit.unwrap_or_else(|| panic!("{} missing from exposition", family));
            assert_eq!(hit.value as u64, *value, "{family} value drifted");
        }
        assert_eq!(
            samples
                .iter()
                .filter(|s| s.name == "lp_predictor_hits_total")
                .count(),
            PredictorKind::ALL.len()
        );
    }

    #[test]
    fn histogram_series_are_cumulative_with_inf_bucket() {
        let text = render(&snapshot(&seeded()));
        let samples = parse(&text).unwrap();
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "lp_loop_iterations_bucket")
            .collect();
        // Samples 3 and 1000 land in buckets le=3 and le=1023, plus +Inf.
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].labels, vec![("le".to_string(), "3".to_string())]);
        assert_eq!(buckets[0].value, 1.0);
        assert_eq!(
            buckets[1].labels,
            vec![("le".to_string(), "1023".to_string())]
        );
        assert_eq!(buckets[1].value, 2.0);
        assert_eq!(
            buckets[2].labels,
            vec![("le".to_string(), "+Inf".to_string())]
        );
        assert_eq!(buckets[2].value, 2.0);
        let count = samples
            .iter()
            .find(|s| s.name == "lp_loop_iterations_count")
            .unwrap();
        assert_eq!(count.value, 2.0);
        let sum = samples
            .iter()
            .find(|s| s.name == "lp_loop_iterations_sum")
            .unwrap();
        assert_eq!(sum.value, 1003.0);
    }

    #[test]
    fn parser_rejects_malformed_exposition() {
        assert!(parse("lp_x 1").is_err(), "sample without TYPE");
        assert!(parse("# TYPE lp_x counter\nlp_x").is_err(), "no value");
        assert!(parse("# TYPE lp_x counter\nlp_x abc").is_err(), "bad value");
        assert!(parse("# TYPE lp_x widget\nlp_x 1").is_err(), "bad type");
        assert!(
            parse("# TYPE lp_x counter\nlp_x{k=unquoted} 1").is_err(),
            "unquoted label"
        );
        assert!(
            parse("# TYPE lp_x counter\nlp_x{k=\"v} 1").is_err(),
            "unterminated label"
        );
        assert!(
            parse("# TYPE lp_x counter\n9bad 1").is_err(),
            "bad name start"
        );
        assert!(
            parse("# TYPE lp_x counter\nlp_x 1 12345 extra").is_err(),
            "trailing fields"
        );
    }

    #[test]
    fn parser_accepts_labels_escapes_and_timestamps() {
        let text = "# HELP lp_x helpful text\n# TYPE lp_x counter\nlp_x{a=\"q\\\"uo\\\\te\\n\",b=\"2\"} 4 1700000000\n";
        let samples = parse(text).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].labels[0].1, "q\"uo\\te\n");
        assert_eq!(samples[0].value, 4.0);
    }

    #[test]
    fn label_and_help_escaping_round_trips_specials() {
        let nasty = "back\\slash \"quoted\"\nnext line";
        assert_eq!(
            escape_label_value(nasty),
            "back\\\\slash \\\"quoted\\\"\\nnext line"
        );
        // HELP escaping leaves quotes verbatim.
        assert_eq!(escape_help(nasty), "back\\\\slash \"quoted\"\\nnext line");
        let text = format!(
            "# HELP lp_x {}\n# TYPE lp_x counter\nlp_x{{k=\"{}\"}} 1\n",
            escape_help(nasty),
            escape_label_value(nasty)
        );
        let samples = parse(&text).unwrap();
        assert_eq!(
            samples[0].labels,
            vec![("k".to_string(), nasty.to_string())]
        );
    }

    #[test]
    fn parser_rejects_bad_help_escapes() {
        assert!(parse("# HELP lp_x fine \\n and \\\\ text\n").is_ok());
        assert!(parse("# HELP lp_x bad \\q escape\n").is_err());
        assert!(parse("# HELP lp_x truncated \\").is_err());
        assert!(parse("# HELP 9bad name\n").is_err());
    }

    #[test]
    fn every_family_has_help_before_type() {
        let text = render(&snapshot(&seeded()));
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(decl) = line.strip_prefix("# TYPE ") {
                let family = decl.split_whitespace().next().unwrap();
                assert!(
                    lines[i - 1].starts_with(&format!("# HELP {family} ")),
                    "{family} has no HELP line"
                );
            }
        }
    }

    #[test]
    fn gauges_and_journal_series_are_present() {
        let text = render(&snapshot(&Registry::new()));
        assert!(text.contains("# TYPE lp_spans_retained gauge"));
        assert!(text.contains("# TYPE lp_journal_records_retained gauge"));
        assert!(text.contains("# TYPE lp_journal_records_total counter"));
        parse(&text).unwrap();
    }
}
