//! The sampling self-profiler.
//!
//! Where does interpreter wall time go, *by opcode and by dynamic
//! opcode pair*? The dispatch loop publishes its current position —
//! `(func, block, previous opcode, current opcode)` packed into one
//! word — through a relaxed atomic ([`publish`]); a sampler thread
//! ([`Sampler`]) reads that word at a fixed rate and builds a wall-time
//! attribution. Publication is gated on [`collecting`] (one relaxed
//! load per run when off), so the always-on cost is effectively zero
//! and the per-instruction store only exists while a sampler is live.
//!
//! This crate knows nothing about opcodes beyond their 5-bit encoding
//! (`lp-obs` sits below `lp-ir`); publishers assign the numbers and
//! consumers (the `lpstudy dispatch-heat` report) assign the names.
//!
//! Alongside the statistical sampler, interpreters that see
//! [`collecting`] also count *exact* dynamic opcode-pair executions
//! locally and fold them into the global heat table ([`merge_pairs`])
//! at run end — the deterministic side of the dispatch-heat report,
//! checkable against the event counters.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Opcodes must fit in 5 bits (32 codes; `lp-ir` currently uses 14).
pub const OPCODE_LIMIT: usize = 32;

/// Entries in a dynamic opcode-pair heat table
/// (`prev * OPCODE_LIMIT + cur`).
pub const PAIR_SLOTS: usize = OPCODE_LIMIT * OPCODE_LIMIT;

/// The progress word the dispatch loop publishes.
static PROGRESS: AtomicU64 = AtomicU64::new(0);

/// Whether interpreters should publish progress and collect pair heat.
static COLLECT: AtomicBool = AtomicBool::new(false);

/// Packs a dispatch position into one progress word:
/// `func:16 | block:24 | prev:8 | cur:8` (opcodes above
/// [`OPCODE_LIMIT`] are clamped into range).
#[must_use]
pub fn pack_progress(func: u32, block: u32, prev_op: u8, cur_op: u8) -> u64 {
    (u64::from(func & 0xFFFF) << 48)
        | (u64::from(block & 0x00FF_FFFF) << 16)
        | (u64::from(prev_op.min(OPCODE_LIMIT as u8 - 1)) << 8)
        | u64::from(cur_op.min(OPCODE_LIMIT as u8 - 1))
}

/// Inverse of [`pack_progress`]: `(func, block, prev_op, cur_op)`.
#[must_use]
pub fn unpack_progress(word: u64) -> (u32, u32, u8, u8) {
    (
        ((word >> 48) & 0xFFFF) as u32,
        ((word >> 16) & 0x00FF_FFFF) as u32,
        ((word >> 8) & 0xFF) as u8,
        (word & 0xFF) as u8,
    )
}

/// Publishes the dispatch loop's current position (relaxed store).
pub fn publish(word: u64) {
    PROGRESS.store(word, Ordering::Relaxed);
}

/// Whether a consumer asked interpreters to publish progress and
/// collect pair heat (checked once per run, not per instruction).
#[must_use]
pub fn collecting() -> bool {
    COLLECT.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide.
pub fn set_collecting(on: bool) {
    COLLECT.store(on, Ordering::Relaxed);
    if !on {
        PROGRESS.store(0, Ordering::Relaxed);
    }
}

/// The global exact pair-heat table (lazily allocated; `PAIR_SLOTS`
/// saturating counters).
fn heat() -> &'static Mutex<Vec<u64>> {
    static HEAT: OnceLock<Mutex<Vec<u64>>> = OnceLock::new();
    HEAT.get_or_init(|| Mutex::new(vec![0; PAIR_SLOTS]))
}

/// Folds one run's local pair counts into the global heat table under
/// a single lock acquisition. `local` must have [`PAIR_SLOTS`] entries.
pub fn merge_pairs(local: &[u64]) {
    debug_assert_eq!(local.len(), PAIR_SLOTS);
    let mut table = heat().lock().expect("heat table poisoned");
    for (a, b) in table.iter_mut().zip(local) {
        *a = a.saturating_add(*b);
    }
}

/// A copy of the global pair-heat table.
#[must_use]
pub fn pair_counts() -> Vec<u64> {
    heat().lock().expect("heat table poisoned").clone()
}

/// Zeroes the global pair-heat table.
pub fn reset_pairs() {
    for slot in heat().lock().expect("heat table poisoned").iter_mut() {
        *slot = 0;
    }
}

/// `(prev, cur, count)` rows of a pair table, non-zero only, hottest
/// first (ties broken by pair index for determinism).
#[must_use]
pub fn ranked_pairs(table: &[u64]) -> Vec<(u8, u8, u64)> {
    let mut rows: Vec<(u8, u8, u64)> = table
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| ((i / OPCODE_LIMIT) as u8, (i % OPCODE_LIMIT) as u8, n))
        .collect();
    rows.sort_by_key(|&(p, c, n)| (std::cmp::Reverse(n), p, c));
    rows
}

/// Per-opcode totals of a pair table (attributed to the *current*
/// opcode of each pair), hottest first.
#[must_use]
pub fn ranked_opcodes(table: &[u64]) -> Vec<(u8, u64)> {
    let mut per_op = [0u64; OPCODE_LIMIT];
    for (i, &n) in table.iter().enumerate() {
        per_op[i % OPCODE_LIMIT] = per_op[i % OPCODE_LIMIT].saturating_add(n);
    }
    let mut rows: Vec<(u8, u64)> = per_op
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(op, &n)| (op as u8, n))
        .collect();
    rows.sort_by_key(|&(op, n)| (std::cmp::Reverse(n), op));
    rows
}

/// What a finished [`Sampler`] saw.
#[derive(Debug, Clone)]
pub struct SampleReport {
    /// Configured sampling rate.
    pub hz: u32,
    /// Samples that caught a live dispatch position.
    pub taken: u64,
    /// Samples that caught an idle interpreter (progress word 0).
    pub idle: u64,
    /// `(progress word, samples)` per distinct position, most-sampled
    /// first (ties broken by word for determinism).
    pub by_word: Vec<(u64, u64)>,
}

impl SampleReport {
    /// Sample counts folded into a [`PAIR_SLOTS`] pair table.
    #[must_use]
    pub fn pair_table(&self) -> Vec<u64> {
        let mut table = vec![0u64; PAIR_SLOTS];
        for &(word, n) in &self.by_word {
            let (_, _, prev, cur) = unpack_progress(word);
            let idx = prev as usize * OPCODE_LIMIT + cur as usize;
            table[idx] = table[idx].saturating_add(n);
        }
        table
    }
}

/// A live sampling thread. Construction enables [`collecting`];
/// [`Sampler::stop`] disables it and returns the attribution.
#[derive(Debug)]
pub struct Sampler {
    stop: std::sync::Arc<AtomicBool>,
    handle: JoinHandle<(u64, u64, std::collections::HashMap<u64, u64>)>,
    hz: u32,
}

impl Sampler {
    /// Starts sampling the progress word at `hz` (clamped to
    /// `1..=100_000`) and tells interpreters to publish.
    #[must_use]
    pub fn start(hz: u32) -> Sampler {
        let hz = hz.clamp(1, 100_000);
        set_collecting(true);
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop_flag = std::sync::Arc::clone(&stop);
        let period = Duration::from_nanos(1_000_000_000 / u64::from(hz));
        let handle = std::thread::Builder::new()
            .name("lp-sampler".into())
            .spawn(move || {
                let mut counts: std::collections::HashMap<u64, u64> =
                    std::collections::HashMap::new();
                let (mut taken, mut idle) = (0u64, 0u64);
                while !stop_flag.load(Ordering::Relaxed) {
                    let word = PROGRESS.load(Ordering::Relaxed);
                    if word == 0 {
                        idle += 1;
                    } else {
                        taken += 1;
                        *counts.entry(word).or_insert(0) += 1;
                    }
                    std::thread::sleep(period);
                }
                (taken, idle, counts)
            })
            .expect("sampler thread spawns");
        Sampler { stop, handle, hz }
    }

    /// Stops the thread, disables collection, and returns the report.
    #[must_use]
    pub fn stop(self) -> SampleReport {
        self.stop.store(true, Ordering::Relaxed);
        let (taken, idle, counts) = self.handle.join().expect("sampler thread joins");
        set_collecting(false);
        let mut by_word: Vec<(u64, u64)> = counts.into_iter().collect();
        by_word.sort_by_key(|&(word, n)| (std::cmp::Reverse(n), word));
        SampleReport {
            hz: self.hz,
            taken,
            idle,
            by_word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_word_round_trips() {
        let w = pack_progress(7, 123_456, 3, 11);
        assert_eq!(unpack_progress(w), (7, 123_456, 3, 11));
        // Out-of-range opcodes clamp instead of corrupting neighbours.
        let w = pack_progress(0xFFFF_FFFF, 0xFFFF_FFFF, 255, 255);
        let (f, b, p, c) = unpack_progress(w);
        assert_eq!((f, b), (0xFFFF, 0x00FF_FFFF));
        assert_eq!((p, c), (31, 31));
    }

    #[test]
    fn ranked_pairs_orders_hottest_first_deterministically() {
        let mut table = vec![0u64; PAIR_SLOTS];
        table[OPCODE_LIMIT + 2] = 5; // (1, 2) x5
        table[3] = 9; // (0, 3) x9
        table[2 * OPCODE_LIMIT] = 5; // (2, 0) x5
        assert_eq!(ranked_pairs(&table), vec![(0, 3, 9), (1, 2, 5), (2, 0, 5)]);
        assert_eq!(ranked_opcodes(&table), vec![(3, 9), (0, 5), (2, 5)]);
    }

    #[test]
    fn merge_accumulates_and_reset_clears() {
        reset_pairs();
        let mut local = vec![0u64; PAIR_SLOTS];
        local[5] = 2;
        merge_pairs(&local);
        merge_pairs(&local);
        assert_eq!(pair_counts()[5], 4);
        reset_pairs();
        assert_eq!(pair_counts()[5], 0);
    }

    #[test]
    fn sampler_attributes_published_progress() {
        let sampler = Sampler::start(2000);
        assert!(collecting());
        let word = pack_progress(1, 2, 3, 4);
        // The progress word persists until overwritten, so one publish
        // is enough; give the sampler ample time to observe it.
        publish(word);
        std::thread::sleep(Duration::from_millis(300));
        let report = sampler.stop();
        assert!(!collecting());
        assert!(report.taken > 0, "sampler saw no published progress");
        assert_eq!(report.by_word[0].0, word);
        let pairs = report.pair_table();
        assert_eq!(pairs[3 * OPCODE_LIMIT + 4], report.taken);
    }

    #[test]
    fn sample_report_pair_table_folds_words() {
        let report = SampleReport {
            hz: 997,
            taken: 7,
            idle: 1,
            by_word: vec![
                (pack_progress(0, 0, 1, 2), 4),
                (pack_progress(9, 9, 1, 2), 2),
                (pack_progress(0, 1, 2, 3), 1),
            ],
        };
        let table = report.pair_table();
        assert_eq!(table[OPCODE_LIMIT + 2], 6);
        assert_eq!(table[2 * OPCODE_LIMIT + 3], 1);
    }
}
