//! The global observability registry.
//!
//! One process-wide [`Registry`] owns the monotonic epoch, the completed
//! spans, the counter bank, and the histograms. Everything is reachable
//! through [`global`]; tests may also build private [`Registry`] values.

use crate::metrics::{CounterBank, Hist, Histogram};
use crate::span::SpanRecord;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Spans retained before overflow increments `SpansDropped`.
pub const MAX_SPANS: usize = 1 << 18;

/// The observability state for one process (or one test).
#[derive(Debug)]
pub struct Registry {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    span_cap: usize,
    counters: CounterBank,
    hists: Mutex<[Histogram; Hist::ALL.len()]>,
    /// Lossy running span count (cheap length check before locking).
    span_len: AtomicUsize,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::with_capacity(MAX_SPANS)
    }
}

impl Registry {
    /// A fresh registry whose epoch is "now".
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A fresh registry retaining at most `span_cap` spans.
    #[must_use]
    pub fn with_capacity(span_cap: usize) -> Registry {
        Registry {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            span_cap,
            counters: CounterBank::default(),
            hists: Mutex::new(std::array::from_fn(|_| Histogram::default())),
            span_len: AtomicUsize::new(0),
        }
    }

    /// Monotonic nanoseconds since this registry was created.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Appends a completed span (drops it when at capacity).
    pub fn record_span(&self, record: SpanRecord) {
        if self.span_len.load(Ordering::Relaxed) >= self.span_cap {
            self.counters.add(crate::Counter::SpansDropped, 1);
            return;
        }
        let mut spans = self.spans.lock().expect("span registry poisoned");
        if spans.len() >= self.span_cap {
            drop(spans);
            self.counters.add(crate::Counter::SpansDropped, 1);
            return;
        }
        spans.push(record);
        self.span_len.store(spans.len(), Ordering::Relaxed);
    }

    /// Appends a batch of completed spans under **one** lock acquisition
    /// (the per-worker stream merge used by [`crate::LocalStats`]).
    /// Spans beyond the capacity are dropped and counted, exactly as in
    /// [`Registry::record_span`].
    pub fn record_spans(&self, batch: Vec<SpanRecord>) {
        if batch.is_empty() {
            return;
        }
        let mut spans = self.spans.lock().expect("span registry poisoned");
        let room = self.span_cap.saturating_sub(spans.len());
        let taken = batch.len().min(room);
        let dropped = batch.len() - taken;
        spans.extend(batch.into_iter().take(taken));
        self.span_len.store(spans.len(), Ordering::Relaxed);
        drop(spans);
        if dropped > 0 {
            self.counters
                .add(crate::Counter::SpansDropped, dropped as u64);
        }
    }

    /// A copy of the retained spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span registry poisoned").clone()
    }

    /// The counter bank.
    #[must_use]
    pub fn counters(&self) -> &CounterBank {
        &self.counters
    }

    /// Records one histogram sample.
    pub fn record_hist(&self, hist: Hist, value: u64) {
        self.hists.lock().expect("hist registry poisoned")[hist.slot()].record(value);
    }

    /// Merges a locally-accumulated histogram into a global slot in one
    /// lock acquisition. Hot paths (e.g. the tracker's per-conflict
    /// distance samples) record into a private [`Histogram`] and publish
    /// it here at flush time instead of locking per sample.
    pub fn merge_hist(&self, hist: Hist, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.hists.lock().expect("hist registry poisoned")[hist.slot()].merge(other);
    }

    /// A copy of one histogram.
    #[must_use]
    pub fn hist(&self, hist: Hist) -> Histogram {
        self.hists.lock().expect("hist registry poisoned")[hist.slot()].clone()
    }

    /// A coherent copy of every histogram slot under **one** lock
    /// acquisition (the freeze used by [`crate::prometheus::snapshot`]).
    #[must_use]
    pub fn hists_snapshot(&self) -> [Histogram; Hist::ALL.len()] {
        self.hists.lock().expect("hist registry poisoned").clone()
    }

    /// Number of retained spans (lossy fast read, no lock).
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.span_len.load(Ordering::Relaxed)
    }

    /// Clears spans, counters, and histograms (the epoch is preserved so
    /// timestamps from before and after a reset stay comparable).
    pub fn reset(&self) {
        self.spans.lock().expect("span registry poisoned").clear();
        self.span_len.store(0, Ordering::Relaxed);
        self.counters.reset();
        for h in self
            .hists
            .lock()
            .expect("hist registry poisoned")
            .iter_mut()
        {
            *h = Histogram::default();
        }
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let r = Registry::new();
        let a = r.now_ns();
        let b = r.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn merge_hist_folds_local_accumulator_in() {
        let r = Registry::new();
        r.record_hist(Hist::LoopIterations, 4);
        let mut local = Histogram::default();
        local.record(16);
        local.record(2);
        r.merge_hist(Hist::LoopIterations, &local);
        // Merging an empty histogram is a no-op (no lock churn).
        r.merge_hist(Hist::LoopIterations, &Histogram::default());
        let h = r.hist(Hist::LoopIterations);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 22);
        assert_eq!((h.min, h.max), (2, 16));
    }

    #[test]
    fn span_capacity_is_enforced() {
        let r = Registry::with_capacity(2);
        for i in 0..5u64 {
            r.record_span(SpanRecord {
                name: "s",
                start_ns: i,
                end_ns: i + 1,
                depth: 0,
                tid: 0,
            });
        }
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.counters().get(crate::Counter::SpansDropped), 3);
        r.reset();
        assert!(r.spans().is_empty());
        assert_eq!(r.counters().get(crate::Counter::SpansDropped), 0);
    }
}
