//! Per-worker metric accumulation for parallel phases.
//!
//! The global [`Registry`] is safe to hit from any thread — counters are
//! relaxed atomics and spans/histograms sit behind mutexes — but a sweep
//! worker that increments per-task would contend on those shared cells
//! and interleave its span stream with every other worker's. A
//! [`LocalStats`] gives each worker a private counter bank, histogram
//! array, and span buffer; the worker records locally with plain stores
//! and publishes everything in **one** [`LocalStats::flush`] when it
//! finishes. Flushing is a handful of atomic adds plus a single lock
//! acquisition per non-empty histogram and one for the whole span batch,
//! so N workers × M increments always sum exactly — there is no shared
//! mutable summary to race on.

use crate::journal::{EventKind, JournalRecord};
use crate::metrics::{Counter, Hist, Histogram, COUNTER_SLOTS};
use crate::registry::Registry;
use crate::span::SpanRecord;

/// A thread-private accumulator of counters, histograms, spans, and
/// journal records, merged into a [`Registry`] at flush time.
#[derive(Debug)]
pub struct LocalStats {
    counts: [u64; COUNTER_SLOTS],
    hists: [Histogram; Hist::ALL.len()],
    spans: Vec<SpanRecord>,
    journal: Vec<JournalRecord>,
}

impl Default for LocalStats {
    fn default() -> LocalStats {
        LocalStats {
            counts: [0; COUNTER_SLOTS],
            hists: std::array::from_fn(|_| Histogram::default()),
            spans: Vec::new(),
            journal: Vec::new(),
        }
    }
}

impl LocalStats {
    /// A fresh, empty accumulator.
    #[must_use]
    pub fn new() -> LocalStats {
        LocalStats::default()
    }

    /// Adds `n` to the local slot of `counter` (no atomics).
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.counts[counter.slot()] += n;
    }

    /// Current local value of `counter`.
    #[must_use]
    pub fn get(&self, counter: Counter) -> u64 {
        self.counts[counter.slot()]
    }

    /// Records one histogram sample locally.
    pub fn record_hist(&mut self, hist: Hist, value: u64) {
        self.hists[hist.slot()].record(value);
    }

    /// Buffers one completed span for the batch append at flush time.
    pub fn record_span(&mut self, record: SpanRecord) {
        self.spans.push(record);
    }

    /// Buffers one flight-recorder event, stamped "now", for the batch
    /// append into the global journal at flush time — sweep workers
    /// journal per-task progress without touching the journal mutex.
    pub fn record_journal(&mut self, kind: EventKind, a: u64, b: u64) {
        self.journal.push(JournalRecord::now(kind, a, b));
    }

    /// Times `f` as a locally-buffered span named `name` (the clock is
    /// the registry's epoch so flushed spans line up with global ones).
    pub fn time<R>(&mut self, reg: &Registry, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start_ns = reg.now_ns();
        let out = f();
        self.record_span(SpanRecord {
            name,
            start_ns,
            end_ns: reg.now_ns(),
            depth: 0,
            tid: crate::span::thread_tid(),
        });
        out
    }

    /// Folds another worker's accumulator into this one (tree merges).
    pub fn merge(&mut self, other: &LocalStats) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
        self.spans.extend(other.spans.iter().cloned());
        self.journal.extend(other.journal.iter().copied());
    }

    /// Publishes everything into `reg` and empties `self`: counters via
    /// one atomic add per non-zero slot, histograms via one
    /// [`Registry::merge_hist`] per non-empty slot, spans via one batch
    /// append. A flushed accumulator can be reused.
    pub fn flush(&mut self, reg: &Registry) {
        for counter in Counter::all() {
            let slot = counter.slot();
            if self.counts[slot] > 0 {
                reg.counters().add(counter, self.counts[slot]);
                self.counts[slot] = 0;
            }
        }
        for h in Hist::ALL {
            let slot = h.slot();
            if self.hists[slot].count > 0 {
                reg.merge_hist(h, &self.hists[slot]);
                self.hists[slot] = Histogram::default();
            }
        }
        if !self.spans.is_empty() {
            reg.record_spans(std::mem::take(&mut self.spans));
        }
        // Journal records always land in the process-wide journal (the
        // flight recorder has no per-registry variant), one lock for
        // the whole batch.
        if !self.journal.is_empty() {
            crate::journal::global().record_batch(&self.journal);
            self.journal.clear();
        }
    }

    /// As [`LocalStats::flush`] into the process-wide registry.
    pub fn flush_global(&mut self) {
        self.flush(crate::registry::global());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_counts_flush_into_a_registry_exactly() {
        let reg = Registry::new();
        let mut local = LocalStats::new();
        local.add(Counter::EvalsPerformed, 3);
        local.add(Counter::EvalsPerformed, 4);
        local.add(Counter::SweepTasksStolen, 2);
        local.record_hist(Hist::EvalNanos, 128);
        assert_eq!(local.get(Counter::EvalsPerformed), 7);
        local.flush(&reg);
        assert_eq!(reg.counters().get(Counter::EvalsPerformed), 7);
        assert_eq!(reg.counters().get(Counter::SweepTasksStolen), 2);
        assert_eq!(reg.hist(Hist::EvalNanos).count, 1);
        // Flush drained the local side; a second flush is a no-op.
        assert_eq!(local.get(Counter::EvalsPerformed), 0);
        local.flush(&reg);
        assert_eq!(reg.counters().get(Counter::EvalsPerformed), 7);
    }

    #[test]
    fn merge_folds_worker_trees() {
        let reg = Registry::new();
        let mut a = LocalStats::new();
        let mut b = LocalStats::new();
        a.add(Counter::SweepProfileCacheHits, 5);
        b.add(Counter::SweepProfileCacheHits, 6);
        b.record_hist(Hist::EvalNanos, 64);
        b.record_span(SpanRecord {
            name: "w",
            start_ns: 1,
            end_ns: 2,
            depth: 0,
            tid: 9,
        });
        a.merge(&b);
        a.flush(&reg);
        assert_eq!(reg.counters().get(Counter::SweepProfileCacheHits), 11);
        assert_eq!(reg.hist(Hist::EvalNanos).count, 1);
        assert_eq!(reg.spans().len(), 1);
    }

    #[test]
    fn journal_records_buffer_until_flush() {
        let journal = crate::journal::global();
        let before = journal.snapshot().0;
        let mut a = LocalStats::new();
        let mut b = LocalStats::new();
        a.record_journal(EventKind::SweepTaskDone, 1, 4);
        b.record_journal(EventKind::SweepTaskDone, 2, 4);
        a.merge(&b);
        assert_eq!(journal.snapshot().0, before, "must stay local until flush");
        a.flush(&Registry::new());
        assert_eq!(journal.snapshot().0, before + 2);
        // Flush drained the buffer; flushing again adds nothing.
        a.flush(&Registry::new());
        assert_eq!(journal.snapshot().0, before + 2);
    }

    #[test]
    fn time_buffers_a_span_until_flush() {
        let reg = Registry::new();
        let mut local = LocalStats::new();
        let out = local.time(&reg, "task", || 42);
        assert_eq!(out, 42);
        assert!(reg.spans().is_empty(), "span must stay local until flush");
        local.flush(&reg);
        let spans = reg.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "task");
        assert!(spans[0].end_ns >= spans[0].start_ns);
    }
}
