//! Serializable cross-run capture of the frozen registry.
//!
//! [`RunSnapshot`] is the complete, machine-readable state of the
//! metrics registry at one instant: every counter (zeros included, so
//! two snapshots always align field-for-field), every log2 histogram
//! with its full bucket vector, and the span/journal occupancy gauges.
//! Unlike the Prometheus exposition (`--metrics-out`, a scrape format)
//! or the Chrome trace (`--trace-out`, a timeline), a snapshot is meant
//! to be **compared across runs**: `lp_obs::diff` ranks the divergences
//! between any two, and `lpstudy audit` asserts the cross-counter
//! conservation laws the pipeline implies.
//!
//! Every experiment binary writes one via the shared
//! `--snapshot-out PATH` flag (schema `lp-snapshot-v1`, emitted through
//! [`JsonWriter`] and read back through [`JsonValue`]).

use crate::export::{JsonValue, JsonWriter};
use crate::metrics::Histogram;
use crate::registry::Registry;
use std::path::Path;

/// Schema tag of the snapshot document.
pub const SNAPSHOT_SCHEMA: &str = "lp-snapshot-v1";

/// A complete, serializable freeze of the registry (plus journal
/// occupancy) under stable string names — the cross-run comparison
/// unit. Counter and histogram names are the exporters' snake_case
/// names, so snapshots written by different builds still align by name.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSnapshot {
    /// The process that wrote the snapshot (binary name).
    pub process: String,
    /// Every counter with its value (zeros included), export order.
    pub counters: Vec<(String, u64)>,
    /// Every histogram slot with its full state, export order.
    pub hists: Vec<(String, Histogram)>,
    /// Spans retained by the registry when the snapshot was taken.
    pub spans_retained: u64,
    /// Journal records ever recorded.
    pub journal_total: u64,
    /// Journal records retained in the ring.
    pub journal_retained: u64,
}

/// Freezes `reg` (and the process-wide journal) into a [`RunSnapshot`].
/// The freeze itself reuses [`crate::prometheus::snapshot`], so the two
/// export paths can never observe different registry states.
#[must_use]
pub fn capture(reg: &Registry, process: &str) -> RunSnapshot {
    let frozen = crate::prometheus::snapshot(reg);
    RunSnapshot {
        process: process.to_string(),
        counters: frozen
            .counters
            .iter()
            .map(|&(c, v)| (c.name(), v))
            .collect(),
        hists: frozen
            .hists
            .iter()
            .map(|(h, hist)| (h.name().to_string(), hist.clone()))
            .collect(),
        spans_retained: frozen.spans_retained,
        journal_total: frozen.journal_total,
        journal_retained: frozen.journal_retained,
    }
}

/// Captures the process-wide registry.
#[must_use]
pub fn capture_global(process: &str) -> RunSnapshot {
    capture(crate::registry::global(), process)
}

fn hist_from_json(v: &JsonValue) -> Result<Histogram, String> {
    let field = |k: &str| {
        v.get(k)
            .and_then(JsonValue::as_u64)
            .ok_or(format!("histogram missing field {k:?}"))
    };
    let mut hist = Histogram {
        buckets: [0; 64],
        count: field("count")?,
        sum: field("sum")?,
        min: field("min")?,
        max: field("max")?,
    };
    let buckets = v
        .get("buckets")
        .and_then(JsonValue::as_array)
        .ok_or("histogram missing buckets array")?;
    for pair in buckets {
        let pair = pair.as_array().ok_or("bucket entry is not a pair")?;
        let (k, n) = match pair {
            [k, n] => (
                k.as_u64().ok_or("bucket index is not an integer")?,
                n.as_u64().ok_or("bucket count is not an integer")?,
            ),
            _ => return Err("bucket entry is not a pair".to_string()),
        };
        let k = usize::try_from(k)
            .ok()
            .filter(|&k| k < 64)
            .ok_or_else(|| format!("bucket index {k} out of range"))?;
        hist.buckets[k] = n;
    }
    Ok(hist)
}

impl RunSnapshot {
    /// The value of one counter by name (0 when absent — absent and
    /// never-incremented are the same thing across format versions).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// One histogram by name.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Renders the snapshot document (compact, schema `lp-snapshot-v1`).
    /// Histogram buckets are emitted sparsely as `[index, count]` pairs;
    /// an empty histogram keeps its `u64::MAX` min verbatim (numbers are
    /// raw tokens on the read side, so the full range round-trips).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.key("schema");
        w.string(SNAPSHOT_SCHEMA);
        w.key("process");
        w.string(&self.process);
        w.key("counters");
        w.begin_object();
        for (name, value) in &self.counters {
            w.key(name);
            w.uint(*value);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, hist) in &self.hists {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.uint(hist.count);
            w.key("sum");
            w.uint(hist.sum);
            w.key("min");
            w.uint(hist.min);
            w.key("max");
            w.uint(hist.max);
            w.key("buckets");
            w.begin_array();
            for (k, &n) in hist.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                w.begin_array();
                w.uint(k as u64);
                w.uint(n);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.key("spans_retained");
        w.uint(self.spans_retained);
        w.key("journal");
        w.begin_object();
        w.key("total");
        w.uint(self.journal_total);
        w.key("retained");
        w.uint(self.journal_retained);
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Parses a snapshot document written by [`RunSnapshot::to_json`].
    ///
    /// # Errors
    /// Returns a description of the first structural problem (bad JSON,
    /// wrong schema tag, missing or mistyped field).
    pub fn from_json(text: &str) -> Result<RunSnapshot, String> {
        let doc = JsonValue::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema tag")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "schema {schema:?} is not a snapshot (expected {SNAPSHOT_SCHEMA:?})"
            ));
        }
        let process = doc
            .get("process")
            .and_then(JsonValue::as_str)
            .ok_or("missing process name")?
            .to_string();
        let mut counters = Vec::new();
        for (name, value) in doc
            .get("counters")
            .and_then(JsonValue::entries)
            .ok_or("missing counters object")?
        {
            let value = value
                .as_u64()
                .ok_or(format!("counter {name:?} is not an integer"))?;
            counters.push((name.clone(), value));
        }
        let mut hists = Vec::new();
        for (name, value) in doc
            .get("histograms")
            .and_then(JsonValue::entries)
            .ok_or("missing histograms object")?
        {
            hists.push((name.clone(), hist_from_json(value)?));
        }
        let gauge = |v: Option<&JsonValue>, what: &str| {
            v.and_then(JsonValue::as_u64)
                .ok_or(format!("missing gauge {what}"))
        };
        Ok(RunSnapshot {
            process,
            counters,
            hists,
            spans_retained: gauge(doc.get("spans_retained"), "spans_retained")?,
            journal_total: gauge(
                doc.get("journal").and_then(|j| j.get("total")),
                "journal.total",
            )?,
            journal_retained: gauge(
                doc.get("journal").and_then(|j| j.get("retained")),
                "journal.retained",
            )?,
        })
    }

    /// Writes [`RunSnapshot::to_json`] (plus a trailing newline) to
    /// `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    /// Returns a description of the I/O or parse failure.
    pub fn read(path: &Path) -> Result<RunSnapshot, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        RunSnapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Hist};

    fn seeded() -> Registry {
        let reg = Registry::new();
        reg.counters().add(Counter::Loads, 1_780_096);
        reg.counters().add(Counter::StoreHits, 7);
        reg.record_hist(Hist::LoopIterations, 3);
        reg.record_hist(Hist::LoopIterations, 1000);
        reg
    }

    #[test]
    fn capture_covers_every_counter_and_hist() {
        let snap = capture(&seeded(), "test-proc");
        assert_eq!(snap.process, "test-proc");
        assert_eq!(snap.counters.len(), Counter::all().len());
        assert_eq!(snap.hists.len(), Hist::ALL.len());
        assert_eq!(snap.counter("loads"), 1_780_096);
        assert_eq!(snap.counter("store_hits"), 7);
        assert_eq!(snap.counter("evals_performed"), 0);
        assert_eq!(snap.counter("no_such_counter"), 0);
        let h = snap.hist("loop_iterations").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1003);
        // Empty histograms keep their default min.
        assert_eq!(snap.hist("eval_nanos").unwrap().min, u64::MAX);
    }

    #[test]
    fn snapshot_json_round_trips_exactly() {
        let snap = capture(&seeded(), "round-trip");
        let json = snap.to_json();
        crate::export::validate_json(&json).unwrap();
        assert!(json.contains("\"schema\":\"lp-snapshot-v1\""));
        let back = RunSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(RunSnapshot::from_json("{}").is_err(), "no schema");
        assert!(
            RunSnapshot::from_json("{\"schema\":\"lp-journal-v1\"}").is_err(),
            "wrong schema"
        );
        assert!(RunSnapshot::from_json("not json").is_err());
        let no_counters = "{\"schema\":\"lp-snapshot-v1\",\"process\":\"x\"}";
        assert!(RunSnapshot::from_json(no_counters).is_err());
        let bad_bucket = "{\"schema\":\"lp-snapshot-v1\",\"process\":\"x\",\
            \"counters\":{},\"histograms\":{\"h\":{\"count\":1,\"sum\":1,\
            \"min\":1,\"max\":1,\"buckets\":[[99,1]]}},\"spans_retained\":0,\
            \"journal\":{\"total\":0,\"retained\":0}}";
        assert!(RunSnapshot::from_json(bad_bucket).is_err(), "bucket 99");
    }

    #[test]
    fn write_and_read_round_trip_through_fs() {
        let snap = capture(&seeded(), "fs");
        let path =
            std::env::temp_dir().join(format!("lp-snapshot-test-{}.json", std::process::id()));
        snap.write(&path).unwrap();
        let back = RunSnapshot::read(&path).unwrap();
        assert_eq!(back, snap);
        let _ = std::fs::remove_file(&path);
        assert!(RunSnapshot::read(&path).is_err(), "missing file");
    }
}
