//! # lp-ir — SSA intermediate representation for Loopapalooza
//!
//! A compact, LLVM-flavoured SSA IR. This crate is the substrate standing in
//! for LLVM IR in the Loopapalooza (ISPASS 2021) reproduction: typed SSA
//! values, basic blocks with explicit terminators, header phis, loads/stores
//! over a flat byte-addressed memory, GEP-style address arithmetic, direct
//! calls and attributed builtins.
//!
//! The crate provides:
//! - the data model ([`Module`], [`Function`], [`Block`], [`Inst`]),
//! - an ergonomic [`builder::FunctionBuilder`],
//! - a textual [`printer`] and round-tripping [`parser`],
//! - a structural [`verifier`] (SSA dominance checking lives in
//!   `lp-analysis`, which owns the dominator tree).
//!
//! # Example
//!
//! ```
//! use lp_ir::builder::FunctionBuilder;
//! use lp_ir::{Module, Type};
//!
//! # fn main() -> Result<(), lp_ir::IrError> {
//! let mut module = Module::new("demo");
//! let mut fb = FunctionBuilder::new("add1", &[Type::I64], Type::I64);
//! let x = fb.param(0);
//! let one = fb.const_i64(1);
//! let y = fb.add(x, one);
//! fb.ret(Some(y));
//! module.add_function(fb.finish()?);
//! assert!(lp_ir::verify_module(&module).is_ok());
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod function;
pub mod fx;
pub mod inst;
pub mod module;
pub mod parser;
pub mod printer;
pub mod transform;
pub mod types;
pub mod value;
pub mod verifier;

pub use function::{Block, BlockId, Function, InstData, InstId};
pub use inst::{BinOp, Builtin, Callee, CastKind, FcmpPred, IcmpPred, Inst, Opcode, Term};
pub use module::{FuncId, Global, GlobalId, Module};
pub use transform::{
    eliminate_dead_code, fold_constants, simplify, split_iterations, SimplifyStats,
};
pub use types::Type;
pub use value::{ValueId, ValueKind};
pub use verifier::{verify_function, verify_module};

use std::fmt;

/// Errors produced while building, parsing, or verifying IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A structural invariant of the IR was violated.
    Invalid(String),
    /// The textual IR could not be parsed. Carries a line number (1-based)
    /// and a message.
    Parse { line: usize, message: String },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Invalid(message) => write!(f, "invalid IR: {message}"),
            IrError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// Convenience alias used throughout the crate.
pub type Result<T, E = IrError> = std::result::Result<T, E>;
