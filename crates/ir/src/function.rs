//! Functions, blocks, and instruction arenas.

use crate::inst::{Callee, Inst, Term};
use crate::types::Type;
use crate::value::{ValueId, ValueKind};
use std::fmt;

/// Dense index of a basic block within a [`Function`].
///
/// The default is the entry block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The entry block of every function.
    pub const ENTRY: BlockId = BlockId(0);

    /// Returns the arena index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Dense index of an instruction within a [`Function`]'s instruction arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl InstId {
    /// Returns the arena index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An instruction plus its metadata in the arena.
#[derive(Debug, Clone, PartialEq)]
pub struct InstData {
    /// The instruction payload.
    pub inst: Inst,
    /// The containing block.
    pub block: BlockId,
    /// Result type ([`Type::Void`] for stores and void calls).
    pub ty: Type,
    /// The value id assigned to the result (also assigned — but unused — for
    /// void-typed instructions, to keep indices dense).
    pub result: ValueId,
}

/// A basic block: a phi prefix, a body of non-phi instructions, and a
/// terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions in program order. Phis must form a prefix (enforced by
    /// the verifier).
    pub insts: Vec<InstId>,
    /// The block terminator.
    pub term: Term,
    /// Optional label for printing; auto-generated when absent.
    pub name: Option<String>,
}

impl Block {
    /// Returns instruction ids of the phi prefix.
    #[must_use]
    pub fn phi_prefix(&self, func: &Function) -> Vec<InstId> {
        self.insts
            .iter()
            .copied()
            .take_while(|id| func.inst(*id).inst.is_phi())
            .collect()
    }
}

/// A function: parameters, a value arena, an instruction arena, and blocks.
///
/// Block 0 is always the entry block. The arenas are append-only; the
/// [`crate::builder::FunctionBuilder`] is the intended construction path.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within a module; enforced on insertion).
    pub name: String,
    /// Formal parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Basic blocks; index = [`BlockId`].
    pub blocks: Vec<Block>,
    /// Instruction arena; index = [`InstId`].
    pub insts: Vec<InstData>,
    /// Value arena; index = [`ValueId`].
    pub values: Vec<ValueKind>,
    /// Types of the values in `values` (parallel array).
    pub value_types: Vec<Type>,
}

impl Function {
    /// Creates an empty function with a single (empty) entry block ending in
    /// `ret void`/`ret <undef>` — the builder replaces the terminator.
    #[must_use]
    pub fn new(name: impl Into<String>, params: &[Type], ret: Type) -> Function {
        let mut f = Function {
            name: name.into(),
            params: params.to_vec(),
            ret,
            blocks: vec![Block {
                insts: Vec::new(),
                term: Term::Ret(None),
                name: Some("entry".to_string()),
            }],
            insts: Vec::new(),
            values: Vec::new(),
            value_types: Vec::new(),
        };
        for (i, &ty) in params.iter().enumerate() {
            f.values.push(ValueKind::Param(i as u32));
            f.value_types.push(ty);
        }
        f
    }

    /// Looks up instruction data.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn inst(&self, id: InstId) -> &InstData {
        &self.insts[id.index()]
    }

    /// Looks up a block.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Kind of a value.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn value(&self, id: ValueId) -> &ValueKind {
        &self.values[id.index()]
    }

    /// Type of a value.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn value_type(&self, id: ValueId) -> Type {
        self.value_types[id.index()]
    }

    /// The value id of the `index`-th parameter.
    ///
    /// Parameters occupy the first `params.len()` value slots.
    ///
    /// # Panics
    /// Panics if `index >= params.len()`.
    #[must_use]
    pub fn param_value(&self, index: usize) -> ValueId {
        assert!(index < self.params.len(), "parameter index out of range");
        ValueId(index as u32)
    }

    /// Iterator over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Computes the predecessor lists of every block.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for bid in self.block_ids() {
            for succ in self.block(bid).term.successors() {
                if succ.index() < preds.len() {
                    preds[succ.index()].push(bid);
                }
            }
        }
        preds
    }

    /// Total number of non-phi, non-terminator instructions per block — the
    /// static per-block IR cost Loopapalooza hard-codes into its call-backs
    /// (paper §III-A). Terminators cost 1 (they are dynamic IR instructions
    /// too); phis cost 0, matching LLVM's view of phis as metadata resolved
    /// on edges.
    #[must_use]
    pub fn block_cost(&self, id: BlockId) -> u64 {
        let blk = self.block(id);
        let body = blk
            .insts
            .iter()
            .filter(|i| !self.inst(**i).inst.is_phi())
            .count() as u64;
        body + 1
    }

    /// Returns every block's static cost ([`Function::block_cost`]) in
    /// one pass, indexed by block id. Ahead-of-time consumers (the
    /// bytecode compiler) use this so the per-entry cost lookup in the
    /// dispatch loop is a plain indexed load instead of a phi-filtering
    /// walk over the block body.
    #[must_use]
    pub fn block_costs(&self) -> Vec<u64> {
        self.block_ids().map(|b| self.block_cost(b)).collect()
    }

    /// Returns all direct user-function callees referenced by this function.
    #[must_use]
    pub fn callees(&self) -> Vec<crate::module::FuncId> {
        let mut out = Vec::new();
        for data in &self.insts {
            if let Inst::Call {
                callee: Callee::Func(fid),
                ..
            } = &data.inst
            {
                if !out.contains(fid) {
                    out.push(*fid);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn new_function_has_entry_block_and_param_values() {
        let f = Function::new("f", &[Type::I64, Type::Ptr], Type::Void);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.param_value(0), ValueId(0));
        assert_eq!(f.param_value(1), ValueId(1));
        assert_eq!(f.value_type(ValueId(0)), Type::I64);
        assert_eq!(f.value_type(ValueId(1)), Type::Ptr);
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_value_out_of_range_panics() {
        let f = Function::new("f", &[], Type::Void);
        let _ = f.param_value(0);
    }

    #[test]
    fn predecessors_of_diamond() {
        // entry -> (a | b) -> join
        let mut fb = FunctionBuilder::new("diamond", &[Type::I1], Type::Void);
        let a = fb.create_block("a");
        let b = fb.create_block("b");
        let join = fb.create_block("join");
        let cond = fb.param(0);
        fb.cond_br(cond, a, b);
        fb.switch_to(a);
        fb.br(join);
        fb.switch_to(b);
        fb.br(join);
        fb.switch_to(join);
        fb.ret(None);
        let f = fb.finish().unwrap();
        let preds = f.predecessors();
        assert_eq!(preds[join.index()], vec![a, b]);
        assert_eq!(preds[BlockId::ENTRY.index()], Vec::<BlockId>::new());
    }

    #[test]
    fn block_cost_counts_body_plus_terminator_not_phis() {
        let mut fb = FunctionBuilder::new("cost", &[], Type::I64);
        let body = fb.create_block("body");
        let zero = fb.const_i64(0);
        fb.br(body);
        fb.switch_to(body);
        let phi = fb.phi(Type::I64);
        fb.add_phi_incoming(phi, BlockId::ENTRY, zero);
        fb.add_phi_incoming(phi, body, phi);
        let one = fb.const_i64(1);
        let _sum = fb.add(phi, one);
        fb.br(body);
        let f = fb.finish().unwrap();
        // body block: 1 phi (free) + 1 add + terminator = 2.
        assert_eq!(f.block_cost(body), 2);
    }
}
