//! Structural IR verification.
//!
//! Checks everything that does not require a dominator tree: operand/result
//! types, phi placement and incoming-edge coverage, terminator targets,
//! call signatures, and global references. SSA dominance ("every use is
//! dominated by its def") is verified by `lp_analysis::verify_ssa`, which
//! owns the dominator tree.

use crate::function::{BlockId, Function};
use crate::inst::{Callee, Inst, Term};
use crate::module::Module;
use crate::types::Type;
use crate::value::{ValueId, ValueKind};
use crate::{IrError, Result};

fn err(func: &Function, msg: impl Into<String>) -> IrError {
    IrError::Invalid(format!("function {}: {}", func.name, msg.into()))
}

fn check_value(func: &Function, v: ValueId) -> Result<()> {
    if v.index() >= func.values.len() {
        return Err(err(func, format!("dangling value {v}")));
    }
    Ok(())
}

fn check_block(func: &Function, b: BlockId) -> Result<()> {
    if b.index() >= func.blocks.len() {
        return Err(err(func, format!("dangling block {b}")));
    }
    Ok(())
}

/// Verifies one function. When `module` is provided, call signatures and
/// global references are checked against it.
///
/// # Errors
/// Returns [`IrError::Invalid`] describing the first violation found.
pub fn verify_function(func: &Function, module: Option<&Module>) -> Result<()> {
    if func.blocks.is_empty() {
        return Err(err(func, "no blocks"));
    }
    // Value arena sanity: params first, then results in arena order.
    for (i, kind) in func.values.iter().enumerate() {
        match kind {
            ValueKind::Param(p) => {
                if *p as usize >= func.params.len() {
                    return Err(err(func, format!("value %v{i} references missing param")));
                }
                if func.value_types[i] != func.params[*p as usize] {
                    return Err(err(func, format!("param value %v{i} type mismatch")));
                }
            }
            ValueKind::Inst(inst_id) => {
                if inst_id.index() >= func.insts.len() {
                    return Err(err(func, format!("value %v{i} references missing inst")));
                }
                let data = func.inst(*inst_id);
                if data.result.index() != i {
                    return Err(err(func, format!("value %v{i} / inst result mismatch")));
                }
            }
            ValueKind::GlobalAddr(g) => {
                if let Some(m) = module {
                    if g.index() >= m.globals.len() {
                        return Err(err(func, format!("value %v{i} references missing global")));
                    }
                }
            }
            ValueKind::FuncAddr(f) => {
                if let Some(m) = module {
                    if f.index() >= m.functions.len() {
                        return Err(err(
                            func,
                            format!("value %v{i} references missing function"),
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    let preds = func.predecessors();

    for bid in func.block_ids() {
        let block = func.block(bid);
        let mut seen_non_phi = false;
        for &iid in &block.insts {
            if iid.index() >= func.insts.len() {
                return Err(err(func, format!("block {bid} lists missing instruction")));
            }
            let data = func.inst(iid);
            if data.block != bid {
                return Err(err(
                    func,
                    format!("instruction in {bid} claims other block"),
                ));
            }
            for op in data.inst.operands() {
                check_value(func, op)?;
            }
            match &data.inst {
                Inst::Phi { ty, incomings } => {
                    if seen_non_phi {
                        return Err(err(func, format!("phi after non-phi in {bid}")));
                    }
                    if bid == BlockId::ENTRY {
                        return Err(err(func, "phi in entry block"));
                    }
                    let mut blocks: Vec<BlockId> = incomings.iter().map(|(b, _)| *b).collect();
                    blocks.sort_unstable();
                    blocks.dedup();
                    if blocks.len() != incomings.len() {
                        return Err(err(
                            func,
                            format!("phi in {bid} has duplicate incoming block"),
                        ));
                    }
                    let mut expect = preds[bid.index()].clone();
                    expect.sort_unstable();
                    expect.dedup();
                    if blocks != expect {
                        return Err(err(
                            func,
                            format!(
                                "phi in {bid} covers {:?}, predecessors are {:?}",
                                blocks, expect
                            ),
                        ));
                    }
                    for (pb, v) in incomings {
                        check_block(func, *pb)?;
                        if func.value_type(*v) != *ty {
                            return Err(err(func, format!("phi incoming type mismatch in {bid}")));
                        }
                    }
                    if data.ty != *ty {
                        return Err(err(func, format!("phi result type mismatch in {bid}")));
                    }
                }
                Inst::Bin { op, lhs, rhs } => {
                    let want = op.result_type();
                    if func.value_type(*lhs) != want || func.value_type(*rhs) != want {
                        return Err(err(func, format!("{op} operand type mismatch in {bid}")));
                    }
                    if data.ty != want {
                        return Err(err(func, format!("{op} result type mismatch in {bid}")));
                    }
                    seen_non_phi = true;
                }
                Inst::Icmp { lhs, rhs, .. } => {
                    let lt = func.value_type(*lhs);
                    if !(lt.is_integral() && lt != Type::I1) || func.value_type(*rhs) != lt {
                        return Err(err(func, format!("icmp operand types in {bid}")));
                    }
                    if data.ty != Type::I1 {
                        return Err(err(func, "icmp must produce i1"));
                    }
                    seen_non_phi = true;
                }
                Inst::Fcmp { lhs, rhs, .. } => {
                    if func.value_type(*lhs) != Type::F64 || func.value_type(*rhs) != Type::F64 {
                        return Err(err(func, format!("fcmp operand types in {bid}")));
                    }
                    if data.ty != Type::I1 {
                        return Err(err(func, "fcmp must produce i1"));
                    }
                    seen_non_phi = true;
                }
                Inst::Select {
                    cond,
                    then_val,
                    else_val,
                } => {
                    if func.value_type(*cond) != Type::I1 {
                        return Err(err(func, "select condition must be i1"));
                    }
                    let t = func.value_type(*then_val);
                    if t != func.value_type(*else_val) || t != data.ty {
                        return Err(err(func, "select arm type mismatch"));
                    }
                    seen_non_phi = true;
                }
                Inst::Cast { kind, val } => {
                    if func.value_type(*val) != kind.operand_type() || data.ty != kind.result_type()
                    {
                        return Err(err(func, format!("{kind} type mismatch in {bid}")));
                    }
                    seen_non_phi = true;
                }
                Inst::Load { ty, addr } => {
                    if !ty.is_memory() {
                        return Err(err(func, "load of non-memory type"));
                    }
                    if func.value_type(*addr) != Type::Ptr || data.ty != *ty {
                        return Err(err(func, format!("load type mismatch in {bid}")));
                    }
                    seen_non_phi = true;
                }
                Inst::Store { val, addr } => {
                    if !func.value_type(*val).is_memory() {
                        return Err(err(func, "store of non-memory type"));
                    }
                    if func.value_type(*addr) != Type::Ptr || data.ty != Type::Void {
                        return Err(err(func, format!("store type mismatch in {bid}")));
                    }
                    seen_non_phi = true;
                }
                Inst::Gep { base, index, .. } => {
                    if func.value_type(*base) != Type::Ptr
                        || func.value_type(*index) != Type::I64
                        || data.ty != Type::Ptr
                    {
                        return Err(err(func, format!("gep type mismatch in {bid}")));
                    }
                    seen_non_phi = true;
                }
                Inst::Alloca { words } => {
                    if *words == 0 {
                        return Err(err(func, "alloca of zero words"));
                    }
                    if data.ty != Type::Ptr {
                        return Err(err(func, "alloca must produce ptr"));
                    }
                    seen_non_phi = true;
                }
                Inst::Call { callee, args } => {
                    match callee {
                        Callee::Builtin(b) => {
                            if args.len() != b.arity() {
                                return Err(err(func, format!("builtin {b} arity mismatch")));
                            }
                            for (a, want) in args.iter().zip(b.param_types()) {
                                if func.value_type(*a) != *want {
                                    return Err(err(
                                        func,
                                        format!("builtin {b} arg type mismatch"),
                                    ));
                                }
                            }
                            if data.ty != b.return_type() {
                                return Err(err(func, format!("builtin {b} return type mismatch")));
                            }
                        }
                        Callee::Func(fid) => {
                            if let Some(m) = module {
                                if fid.index() >= m.functions.len() {
                                    return Err(err(func, "call to missing function"));
                                }
                                let target = m.function(*fid);
                                if args.len() != target.params.len() {
                                    return Err(err(
                                        func,
                                        format!("call to {} arity mismatch", target.name),
                                    ));
                                }
                                for (a, want) in args.iter().zip(&target.params) {
                                    if func.value_type(*a) != *want {
                                        return Err(err(
                                            func,
                                            format!("call to {} arg type mismatch", target.name),
                                        ));
                                    }
                                }
                                if data.ty != target.ret {
                                    return Err(err(
                                        func,
                                        format!("call to {} return type mismatch", target.name),
                                    ));
                                }
                            }
                        }
                    }
                    seen_non_phi = true;
                }
            }
        }
        match &block.term {
            Term::Br(t) => check_block(func, *t)?,
            Term::CondBr {
                cond,
                then_blk,
                else_blk,
            } => {
                check_value(func, *cond)?;
                if func.value_type(*cond) != Type::I1 {
                    return Err(err(func, format!("condbr condition in {bid} must be i1")));
                }
                check_block(func, *then_blk)?;
                check_block(func, *else_blk)?;
            }
            Term::Ret(v) => match (v, func.ret) {
                (None, Type::Void) => {}
                (None, _) => return Err(err(func, "missing return value")),
                (Some(v), ty) => {
                    check_value(func, *v)?;
                    if func.value_type(*v) != ty {
                        return Err(err(func, "return type mismatch"));
                    }
                }
            },
        }
    }
    Ok(())
}

/// Verifies every function in a module (with cross-function checks).
///
/// # Errors
/// Returns the first violation found.
pub fn verify_module(module: &Module) -> Result<()> {
    for (_, func) in module.iter_functions() {
        verify_function(func, Some(module))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::IcmpPred;
    use crate::Global;

    #[test]
    fn valid_module_passes() {
        let mut m = Module::new("m");
        let g = m.add_global(Global::zeroed("buf", 8));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let addr = fb.global_addr(g);
        let x = fb.const_i64(42);
        fb.store(x, addr);
        let y = fb.load(Type::I64, addr);
        fb.ret(Some(y));
        m.add_function(fb.finish().unwrap());
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn phi_must_cover_predecessors() {
        // Hand-corrupt a function: phi with missing incoming.
        let mut fb = FunctionBuilder::new("f", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let header = fb.create_block("header");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        fb.add_phi_incoming(i, crate::BlockId::ENTRY, zero);
        // Missing incoming for the latch edge (header -> header).
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, header, exit);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let f = fb.finish().unwrap();
        let e = verify_function(&f, None).unwrap_err();
        assert!(e.to_string().contains("phi"), "{e}");
    }

    #[test]
    fn call_signature_checked_against_module() {
        let mut m = Module::new("m");
        let mut fb = FunctionBuilder::new("callee", &[Type::I64], Type::I64);
        let p = fb.param(0);
        fb.ret(Some(p));
        let callee = m.add_function(fb.finish().unwrap());

        // Wrong return type declared at the call site.
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let x = fb.const_i64(1);
        let r = fb.call(callee, Type::F64, &[x]);
        let ri = fb.fptosi(r);
        fb.ret(Some(ri));
        m.add_function(fb.finish().unwrap());
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("return type"), "{e}");
    }

    #[test]
    fn dangling_branch_target_detected() {
        let mut fb = FunctionBuilder::new("f", &[], Type::Void);
        fb.ret(None);
        let mut f = fb.finish().unwrap();
        f.blocks[0].term = Term::Br(BlockId(9));
        assert!(verify_function(&f, None).is_err());
    }

    #[test]
    fn entry_block_must_not_have_phis() {
        let mut fb = FunctionBuilder::new("f", &[], Type::Void);
        // Manually force a phi into entry by abusing the builder.
        let p = fb.phi(Type::I64);
        let z = fb.const_i64(0);
        // Entry has no predecessors, so no incomings needed to trip the check.
        let _ = (p, z);
        fb.ret(None);
        let f = fb.finish().unwrap();
        let e = verify_function(&f, None).unwrap_err();
        assert!(e.to_string().contains("entry"), "{e}");
    }
}
