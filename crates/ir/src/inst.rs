//! Instructions, terminators, and builtins.

use crate::function::BlockId;
use crate::module::FuncId;
use crate::types::Type;
use crate::value::ValueId;
use std::fmt;

/// Binary arithmetic / logical opcodes.
///
/// Integer opcodes operate on `i64` (and `ptr` where noted); `F*` opcodes on
/// `f64`. Division and remainder follow Rust `i64` semantics in the
/// interpreter (division by zero traps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    AShr,
    SMin,
    SMax,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FMin,
    FMax,
}

impl BinOp {
    /// Returns `true` for floating-point opcodes.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FMin | BinOp::FMax
        )
    }

    /// Result type of the opcode.
    #[must_use]
    pub fn result_type(self) -> Type {
        if self.is_float() {
            Type::F64
        } else {
            Type::I64
        }
    }

    /// Returns `true` if the opcode is associative and commutative — the
    /// property required for tree-reduction of accumulator LCDs (paper
    /// §II-A). `FAdd`/`FMul` are included because `-Ofast` (the paper's
    /// baseline) enables fast-math reassociation.
    #[must_use]
    pub fn is_reduction_op(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::SMin
                | BinOp::SMax
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::FMin
                | BinOp::FMax
        )
    }

    /// Textual mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::AShr => "ashr",
            BinOp::SMin => "smin",
            BinOp::SMax => "smax",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FMin => "fmin",
            BinOp::FMax => "fmax",
        }
    }

    /// Inverse of [`BinOp::mnemonic`].
    #[must_use]
    pub fn from_mnemonic(text: &str) -> Option<BinOp> {
        Some(match text {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "sdiv" => BinOp::SDiv,
            "srem" => BinOp::SRem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "ashr" => BinOp::AShr,
            "smin" => BinOp::SMin,
            "smax" => BinOp::SMax,
            "fadd" => BinOp::FAdd,
            "fsub" => BinOp::FSub,
            "fmul" => BinOp::FMul,
            "fdiv" => BinOp::FDiv,
            "fmin" => BinOp::FMin,
            "fmax" => BinOp::FMax,
            _ => return None,
        })
    }

    /// All opcodes, for exhaustive testing.
    #[must_use]
    pub fn all() -> &'static [BinOp] {
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::SDiv,
            BinOp::SRem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::AShr,
            BinOp::SMin,
            BinOp::SMax,
            BinOp::FAdd,
            BinOp::FSub,
            BinOp::FMul,
            BinOp::FDiv,
            BinOp::FMin,
            BinOp::FMax,
        ]
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Signed integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
}

impl IcmpPred {
    /// Textual mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            IcmpPred::Eq => "eq",
            IcmpPred::Ne => "ne",
            IcmpPred::Slt => "slt",
            IcmpPred::Sle => "sle",
            IcmpPred::Sgt => "sgt",
            IcmpPred::Sge => "sge",
        }
    }

    /// Inverse of [`IcmpPred::mnemonic`].
    #[must_use]
    pub fn from_mnemonic(text: &str) -> Option<IcmpPred> {
        Some(match text {
            "eq" => IcmpPred::Eq,
            "ne" => IcmpPred::Ne,
            "slt" => IcmpPred::Slt,
            "sle" => IcmpPred::Sle,
            "sgt" => IcmpPred::Sgt,
            "sge" => IcmpPred::Sge,
            _ => return None,
        })
    }
}

impl fmt::Display for IcmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Ordered floating-point comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcmpPred {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}

impl FcmpPred {
    /// Textual mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FcmpPred::Oeq => "oeq",
            FcmpPred::One => "one",
            FcmpPred::Olt => "olt",
            FcmpPred::Ole => "ole",
            FcmpPred::Ogt => "ogt",
            FcmpPred::Oge => "oge",
        }
    }

    /// Inverse of [`FcmpPred::mnemonic`].
    #[must_use]
    pub fn from_mnemonic(text: &str) -> Option<FcmpPred> {
        Some(match text {
            "oeq" => FcmpPred::Oeq,
            "one" => FcmpPred::One,
            "olt" => FcmpPred::Olt,
            "ole" => FcmpPred::Ole,
            "ogt" => FcmpPred::Ogt,
            "oge" => FcmpPred::Oge,
            _ => return None,
        })
    }
}

impl fmt::Display for FcmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Value casts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// `i64 -> f64` (signed).
    SiToFp,
    /// `f64 -> i64` (truncating; saturates on overflow like Rust `as`).
    FpToSi,
    /// `ptr -> i64`.
    PtrToInt,
    /// `i64 -> ptr`.
    IntToPtr,
    /// `i1 -> i64` (zero extension).
    BoolToInt,
}

impl CastKind {
    /// Result type of the cast.
    #[must_use]
    pub fn result_type(self) -> Type {
        match self {
            CastKind::SiToFp => Type::F64,
            CastKind::FpToSi | CastKind::PtrToInt | CastKind::BoolToInt => Type::I64,
            CastKind::IntToPtr => Type::Ptr,
        }
    }

    /// Required operand type.
    #[must_use]
    pub fn operand_type(self) -> Type {
        match self {
            CastKind::SiToFp | CastKind::IntToPtr => Type::I64,
            CastKind::FpToSi => Type::F64,
            CastKind::PtrToInt => Type::Ptr,
            CastKind::BoolToInt => Type::I1,
        }
    }

    /// Textual mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::SiToFp => "sitofp",
            CastKind::FpToSi => "fptosi",
            CastKind::PtrToInt => "ptrtoint",
            CastKind::IntToPtr => "inttoptr",
            CastKind::BoolToInt => "booltoint",
        }
    }

    /// Inverse of [`CastKind::mnemonic`].
    #[must_use]
    pub fn from_mnemonic(text: &str) -> Option<CastKind> {
        Some(match text {
            "sitofp" => CastKind::SiToFp,
            "fptosi" => CastKind::FpToSi,
            "ptrtoint" => CastKind::PtrToInt,
            "inttoptr" => CastKind::IntToPtr,
            "booltoint" => CastKind::BoolToInt,
            _ => return None,
        })
    }
}

impl fmt::Display for CastKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Builtin "library" functions.
///
/// These stand in for the pre-compiled C/C++ standard library of the paper:
/// Loopapalooza cannot instrument libc either, so it attributes calls by
/// purity and re-entrancy (Table II, `fn1`/`fn2`). The attribute methods
/// below drive the `fn0..fn3` configuration lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `malloc(bytes) -> ptr`. Thread-safe, impure (mutates the allocator).
    Malloc,
    /// `free(ptr)`. Thread-safe, impure.
    Free,
    /// `memcpy(dst, src, bytes)`. Thread-safe; memory effects are visible to
    /// the instrumentation (the interpreter emits per-word access events).
    Memcpy,
    /// `memset(dst, word, bytes)`. Same instrumentation story as `memcpy`.
    Memset,
    /// `print_i64(x)`. I/O side effect: impure and **not** thread-safe —
    /// output must appear in sequential program order (paper §II).
    PrintI64,
    /// `print_f64(x)`. Same ordering constraint as [`Builtin::PrintI64`].
    PrintF64,
    /// `rand() -> i64`. A deterministic LCG with shared hidden state:
    /// impure and not thread-safe (the hidden state is a frequent LCD).
    Rand,
    /// `sqrt(x)`. Pure math.
    Sqrt,
    /// `sin(x)`. Pure math.
    Sin,
    /// `cos(x)`. Pure math.
    Cos,
    /// `exp(x)`. Pure math.
    Exp,
    /// `log(x)`. Pure math (natural log; traps on non-positive input).
    Log,
    /// `fabs(x)`. Pure math.
    FAbs,
    /// `floor(x)`. Pure math.
    Floor,
    /// `pow(x, y)`. Pure math.
    Pow,
}

impl Builtin {
    /// Pure builtins have no side effects and read no memory: calls to them
    /// never restrict parallelization (allowed from `fn1` upward).
    #[must_use]
    pub fn is_pure(self) -> bool {
        matches!(
            self,
            Builtin::Sqrt
                | Builtin::Sin
                | Builtin::Cos
                | Builtin::Exp
                | Builtin::Log
                | Builtin::FAbs
                | Builtin::Floor
                | Builtin::Pow
        )
    }

    /// Thread-safe (re-entrant) builtins may be called from concurrent
    /// iterations (allowed from `fn2` upward).
    #[must_use]
    pub fn is_thread_safe(self) -> bool {
        match self {
            Builtin::PrintI64 | Builtin::PrintF64 | Builtin::Rand => false,
            Builtin::Malloc | Builtin::Free | Builtin::Memcpy | Builtin::Memset => true,
            _ => self.is_pure(),
        }
    }

    /// Returns `true` if the builtin reads or writes program-visible memory
    /// (so the interpreter must emit access events for it).
    #[must_use]
    pub fn touches_memory(self) -> bool {
        matches!(self, Builtin::Memcpy | Builtin::Memset)
    }

    /// Number of formal parameters.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            Builtin::Rand => 0,
            Builtin::Malloc
            | Builtin::Free
            | Builtin::PrintI64
            | Builtin::PrintF64
            | Builtin::Sqrt
            | Builtin::Sin
            | Builtin::Cos
            | Builtin::Exp
            | Builtin::Log
            | Builtin::FAbs
            | Builtin::Floor => 1,
            Builtin::Pow => 2,
            Builtin::Memcpy | Builtin::Memset => 3,
        }
    }

    /// Return type.
    #[must_use]
    pub fn return_type(self) -> Type {
        match self {
            Builtin::Malloc => Type::Ptr,
            Builtin::Free
            | Builtin::Memcpy
            | Builtin::Memset
            | Builtin::PrintI64
            | Builtin::PrintF64 => Type::Void,
            Builtin::Rand => Type::I64,
            _ => Type::F64,
        }
    }

    /// Parameter types.
    #[must_use]
    pub fn param_types(self) -> &'static [Type] {
        match self {
            Builtin::Malloc => &[Type::I64],
            Builtin::Free => &[Type::Ptr],
            Builtin::Memcpy => &[Type::Ptr, Type::Ptr, Type::I64],
            Builtin::Memset => &[Type::Ptr, Type::I64, Type::I64],
            Builtin::PrintI64 => &[Type::I64],
            Builtin::PrintF64 => &[Type::F64],
            Builtin::Rand => &[],
            Builtin::Pow => &[Type::F64, Type::F64],
            _ => &[Type::F64],
        }
    }

    /// Textual name (used by printer/parser, prefixed with `@!`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Malloc => "malloc",
            Builtin::Free => "free",
            Builtin::Memcpy => "memcpy",
            Builtin::Memset => "memset",
            Builtin::PrintI64 => "print_i64",
            Builtin::PrintF64 => "print_f64",
            Builtin::Rand => "rand",
            Builtin::Sqrt => "sqrt",
            Builtin::Sin => "sin",
            Builtin::Cos => "cos",
            Builtin::Exp => "exp",
            Builtin::Log => "log",
            Builtin::FAbs => "fabs",
            Builtin::Floor => "floor",
            Builtin::Pow => "pow",
        }
    }

    /// Inverse of [`Builtin::name`].
    #[must_use]
    pub fn from_name(text: &str) -> Option<Builtin> {
        Some(match text {
            "malloc" => Builtin::Malloc,
            "free" => Builtin::Free,
            "memcpy" => Builtin::Memcpy,
            "memset" => Builtin::Memset,
            "print_i64" => Builtin::PrintI64,
            "print_f64" => Builtin::PrintF64,
            "rand" => Builtin::Rand,
            "sqrt" => Builtin::Sqrt,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "fabs" => Builtin::FAbs,
            "floor" => Builtin::Floor,
            "pow" => Builtin::Pow,
            _ => return None,
        })
    }

    /// All builtins, for exhaustive testing.
    #[must_use]
    pub fn all() -> &'static [Builtin] {
        &[
            Builtin::Malloc,
            Builtin::Free,
            Builtin::Memcpy,
            Builtin::Memset,
            Builtin::PrintI64,
            Builtin::PrintF64,
            Builtin::Rand,
            Builtin::Sqrt,
            Builtin::Sin,
            Builtin::Cos,
            Builtin::Exp,
            Builtin::Log,
            Builtin::FAbs,
            Builtin::Floor,
            Builtin::Pow,
        ]
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A call target: user function or builtin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A user-defined (instrumentable) function in the same module.
    Func(FuncId),
    /// A builtin "library" function.
    Builtin(Builtin),
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Binary arithmetic/logic.
    Bin {
        op: BinOp,
        lhs: ValueId,
        rhs: ValueId,
    },
    /// Signed integer comparison producing `i1`.
    Icmp {
        pred: IcmpPred,
        lhs: ValueId,
        rhs: ValueId,
    },
    /// Ordered float comparison producing `i1`.
    Fcmp {
        pred: FcmpPred,
        lhs: ValueId,
        rhs: ValueId,
    },
    /// Ternary select: `cond ? then_val : else_val`.
    Select {
        cond: ValueId,
        then_val: ValueId,
        else_val: ValueId,
    },
    /// Value cast.
    Cast { kind: CastKind, val: ValueId },
    /// Memory load of one word at `addr`.
    Load { ty: Type, addr: ValueId },
    /// Memory store of one word to `addr`. Produces no value.
    Store { val: ValueId, addr: ValueId },
    /// Flattened GEP: result = `base + index * scale + offset` (bytes).
    Gep {
        base: ValueId,
        index: ValueId,
        scale: i64,
        offset: i64,
    },
    /// Stack allocation of `words` 8-byte slots in the current frame;
    /// returns the address of the first slot.
    Alloca { words: u32 },
    /// Direct call.
    Call { callee: Callee, args: Vec<ValueId> },
    /// SSA phi. Must appear in the phi-prefix of a block; incoming entries
    /// must exactly cover the block's CFG predecessors.
    Phi {
        ty: Type,
        incomings: Vec<(BlockId, ValueId)>,
    },
}

impl Inst {
    /// Returns `true` for phis.
    #[must_use]
    pub fn is_phi(&self) -> bool {
        matches!(self, Inst::Phi { .. })
    }

    /// Returns `true` if the instruction produces a value.
    ///
    /// The only value-less instructions are stores and void calls; for
    /// simplicity void calls still get a `Void`-typed value id.
    #[must_use]
    pub fn produces_value(&self) -> bool {
        !matches!(self, Inst::Store { .. })
    }

    /// Iterates over the operand values of this instruction.
    pub fn operands(&self) -> impl Iterator<Item = ValueId> + '_ {
        let slice: Vec<ValueId> = match self {
            Inst::Bin { lhs, rhs, .. }
            | Inst::Icmp { lhs, rhs, .. }
            | Inst::Fcmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Select {
                cond,
                then_val,
                else_val,
            } => vec![*cond, *then_val, *else_val],
            Inst::Cast { val, .. } => vec![*val],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { val, addr } => vec![*val, *addr],
            Inst::Gep { base, index, .. } => vec![*base, *index],
            Inst::Alloca { .. } => vec![],
            Inst::Call { args, .. } => args.clone(),
            Inst::Phi { incomings, .. } => incomings.iter().map(|(_, v)| *v).collect(),
        };
        slice.into_iter()
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on an `i1` value.
    CondBr {
        cond: ValueId,
        then_blk: BlockId,
        else_blk: BlockId,
    },
    /// Function return. The operand must match the function return type
    /// (`None` for `void`).
    Ret(Option<ValueId>),
}

impl Term {
    /// Successor blocks of this terminator.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Br(b) => vec![*b],
            Term::CondBr {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            Term::Ret(_) => vec![],
        }
    }

    /// Dynamic opcode class of this terminator.
    #[must_use]
    pub fn opcode(&self) -> Opcode {
        match self {
            Term::Br(_) => Opcode::Br,
            Term::CondBr { .. } => Opcode::CondBr,
            Term::Ret(_) => Opcode::Ret,
        }
    }
}

/// Coarse dynamic opcode classes — one per [`Inst`] variant plus the
/// terminators — used by the interpreter's dispatch-heat attribution
/// (which opcode *pairs* dominate execution, the input to fused
/// superinstruction selection). The discriminant is a stable wire
/// value that must stay below 32 (`lp_obs::sampler::OPCODE_LIMIT`
/// packs it into 5 bits of the progress word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Binary arithmetic/logic.
    Bin = 0,
    /// Integer comparison.
    Icmp = 1,
    /// Float comparison.
    Fcmp = 2,
    /// Ternary select.
    Select = 3,
    /// Value cast.
    Cast = 4,
    /// Memory load.
    Load = 5,
    /// Memory store.
    Store = 6,
    /// Address computation.
    Gep = 7,
    /// Stack allocation.
    Alloca = 8,
    /// Direct call (user function or builtin).
    Call = 9,
    /// SSA phi (resolved on edges; attributed to header re-entry).
    Phi = 10,
    /// Unconditional branch.
    Br = 11,
    /// Conditional branch.
    CondBr = 12,
    /// Function return.
    Ret = 13,
}

impl Opcode {
    /// Every opcode, in wire order.
    pub const ALL: [Opcode; 14] = [
        Opcode::Bin,
        Opcode::Icmp,
        Opcode::Fcmp,
        Opcode::Select,
        Opcode::Cast,
        Opcode::Load,
        Opcode::Store,
        Opcode::Gep,
        Opcode::Alloca,
        Opcode::Call,
        Opcode::Phi,
        Opcode::Br,
        Opcode::CondBr,
        Opcode::Ret,
    ];

    /// Stable lowercase name used by heat reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Bin => "bin",
            Opcode::Icmp => "icmp",
            Opcode::Fcmp => "fcmp",
            Opcode::Select => "select",
            Opcode::Cast => "cast",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Gep => "gep",
            Opcode::Alloca => "alloca",
            Opcode::Call => "call",
            Opcode::Phi => "phi",
            Opcode::Br => "br",
            Opcode::CondBr => "cond_br",
            Opcode::Ret => "ret",
        }
    }

    /// Inverse of the wire value (`None` above the last opcode).
    #[must_use]
    pub fn from_u8(value: u8) -> Option<Opcode> {
        Opcode::ALL.get(value as usize).copied()
    }
}

impl Inst {
    /// Dynamic opcode class of this instruction.
    #[must_use]
    pub fn opcode(&self) -> Opcode {
        match self {
            Inst::Bin { .. } => Opcode::Bin,
            Inst::Icmp { .. } => Opcode::Icmp,
            Inst::Fcmp { .. } => Opcode::Fcmp,
            Inst::Select { .. } => Opcode::Select,
            Inst::Cast { .. } => Opcode::Cast,
            Inst::Load { .. } => Opcode::Load,
            Inst::Store { .. } => Opcode::Store,
            Inst::Gep { .. } => Opcode::Gep,
            Inst::Alloca { .. } => Opcode::Alloca,
            Inst::Call { .. } => Opcode::Call,
            Inst::Phi { .. } => Opcode::Phi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_mnemonic_round_trip() {
        for &op in BinOp::all() {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn builtin_name_round_trip_and_attrs() {
        for &b in Builtin::all() {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
            assert_eq!(b.param_types().len(), b.arity());
            // Pure implies thread-safe.
            if b.is_pure() {
                assert!(b.is_thread_safe(), "{b} pure but not thread-safe");
            }
        }
        assert!(!Builtin::PrintI64.is_thread_safe());
        assert!(!Builtin::Rand.is_thread_safe());
        assert!(Builtin::Malloc.is_thread_safe());
        assert!(!Builtin::Malloc.is_pure());
    }

    #[test]
    fn reduction_ops_exclude_non_associative() {
        assert!(BinOp::Add.is_reduction_op());
        assert!(BinOp::FAdd.is_reduction_op());
        assert!(BinOp::SMax.is_reduction_op());
        assert!(!BinOp::Sub.is_reduction_op());
        assert!(!BinOp::SDiv.is_reduction_op());
        assert!(!BinOp::Shl.is_reduction_op());
    }

    #[test]
    fn term_successors() {
        assert_eq!(Term::Br(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(Term::Ret(None).successors(), vec![]);
        let t = Term::CondBr {
            cond: ValueId(0),
            then_blk: BlockId(1),
            else_blk: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn opcode_wire_values_round_trip_and_fit_five_bits() {
        for (i, &op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op as u8 as usize, i, "wire order must match ALL order");
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
            assert!((op as u8) < 32, "{op:?} exceeds the 5-bit progress field");
        }
        assert_eq!(Opcode::from_u8(Opcode::ALL.len() as u8), None);
        let names: std::collections::HashSet<&str> = Opcode::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), Opcode::ALL.len());
    }

    #[test]
    fn inst_and_term_map_to_their_opcode_class() {
        assert_eq!(
            Inst::Load {
                ty: Type::I64,
                addr: ValueId(0)
            }
            .opcode(),
            Opcode::Load
        );
        assert_eq!(
            Inst::Gep {
                base: ValueId(0),
                index: ValueId(1),
                scale: 8,
                offset: 0
            }
            .opcode(),
            Opcode::Gep
        );
        assert_eq!(Term::Br(BlockId(0)).opcode(), Opcode::Br);
        assert_eq!(Term::Ret(None).opcode(), Opcode::Ret);
        assert_eq!(
            Term::CondBr {
                cond: ValueId(0),
                then_blk: BlockId(1),
                else_blk: BlockId(2)
            }
            .opcode(),
            Opcode::CondBr
        );
    }

    #[test]
    fn store_produces_no_value() {
        let store = Inst::Store {
            val: ValueId(0),
            addr: ValueId(1),
        };
        assert!(!store.produces_value());
        let load = Inst::Load {
            ty: Type::I64,
            addr: ValueId(1),
        };
        assert!(load.produces_value());
    }

    #[test]
    fn operand_iteration() {
        let call = Inst::Call {
            callee: Callee::Builtin(Builtin::Pow),
            args: vec![ValueId(4), ValueId(5)],
        };
        assert_eq!(
            call.operands().collect::<Vec<_>>(),
            vec![ValueId(4), ValueId(5)]
        );
        let phi = Inst::Phi {
            ty: Type::I64,
            incomings: vec![(BlockId(0), ValueId(1)), (BlockId(1), ValueId(2))],
        };
        assert_eq!(phi.operands().count(), 2);
        let alloca = Inst::Alloca { words: 4 };
        assert_eq!(alloca.operands().count(), 0);
    }
}
