//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, whose
//! per-lookup cost dominates when the key is a word-sized integer and
//! the lookup sits inside the interpreter or profiler inner loop. This
//! is the classic Fx multiply-rotate scheme (as used by rustc): one
//! rotate, one xor, one multiply per word. It is *not* DoS-resistant —
//! use it only for maps keyed by trusted, program-derived values
//! (addresses, IR ids), never for attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden ratio (same constant Fx uses); spreads
/// low-entropy integer keys across the high bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-at-a-time hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builder for [`FxHasher`] (zero-sized, free to construct).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` hashed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_integer_keys() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..10_000u64 {
            m.insert(k * 8, k);
        }
        for k in 0..10_000u64 {
            assert_eq!(m.get(&(k * 8)), Some(&k));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn sequential_addresses_do_not_collide_pathologically() {
        // Page-aligned addresses differ only in high-ish bits; the
        // multiply must still spread them. Count distinct hashes.
        let mut seen = FxHashSet::default();
        for k in 0..4096u64 {
            let mut h = FxHasher::default();
            h.write_u64(k * 4096);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 4096);
    }

    #[test]
    fn byte_stream_matches_independent_of_chunking() {
        // write() is word-at-a-time; identical bytes hash identically.
        let mut a = FxHasher::default();
        a.write(b"loopapalooza!");
        let mut b = FxHasher::default();
        b.write(b"loopapalooza!");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"loopapalooza?");
        assert_ne!(a.finish(), c.finish());
    }
}
