//! Ergonomic construction of [`Function`]s.
//!
//! The builder follows the usual "current block" model: create blocks up
//! front, [`FunctionBuilder::switch_to`] one, append instructions, then set
//! its terminator. Builder misuse (type confusion, inserting after a
//! terminator) panics — these are programmer errors in benchmark-authoring
//! code, not runtime conditions. [`FunctionBuilder::finish`] returns an error
//! only for incomplete functions (missing terminators).

use crate::function::{Block, BlockId, Function, InstData, InstId};
use crate::inst::{BinOp, Builtin, Callee, CastKind, FcmpPred, IcmpPred, Inst, Term};
use crate::module::{FuncId, GlobalId};
use crate::types::Type;
use crate::value::{ValueId, ValueKind};
use crate::{IrError, Result};

/// Incremental builder for a single [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    terminated: Vec<bool>,
}

impl FunctionBuilder {
    /// Starts a function; the entry block exists and is current.
    #[must_use]
    pub fn new(name: impl Into<String>, params: &[Type], ret: Type) -> FunctionBuilder {
        FunctionBuilder {
            func: Function::new(name, params, ret),
            current: BlockId::ENTRY,
            terminated: vec![false],
        }
    }

    /// The value of the `index`-th parameter.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn param(&self, index: usize) -> ValueId {
        self.func.param_value(index)
    }

    /// The block currently being appended to.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Creates a new (empty, unterminated) block.
    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block {
            insts: Vec::new(),
            term: Term::Ret(None),
            name: Some(name.into()),
        });
        self.terminated.push(false);
        id
    }

    /// Creates a new block with a unique auto-generated label
    /// (`prefix_N`). Useful for composable code generators that cannot
    /// guarantee caller-chosen labels are unique.
    pub fn fresh_block(&mut self, prefix: &str) -> BlockId {
        let n = self.func.blocks.len();
        self.create_block(format!("{prefix}_{n}"))
    }

    /// Makes `block` the insertion point.
    ///
    /// # Panics
    /// Panics if the block is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            !self.terminated[block.index()],
            "cannot switch to terminated block {block}"
        );
        self.current = block;
    }

    fn new_value(&mut self, kind: ValueKind, ty: Type) -> ValueId {
        let id = ValueId(self.func.values.len() as u32);
        self.func.values.push(kind);
        self.func.value_types.push(ty);
        id
    }

    // ---- constants -------------------------------------------------------

    /// An `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.new_value(ValueKind::ConstInt(v), Type::I64)
    }

    /// An `f64` constant.
    pub fn const_f64(&mut self, v: f64) -> ValueId {
        self.new_value(ValueKind::ConstFloat(v), Type::F64)
    }

    /// A boolean constant.
    pub fn const_bool(&mut self, v: bool) -> ValueId {
        self.new_value(ValueKind::ConstBool(v), Type::I1)
    }

    /// The null pointer constant.
    pub fn const_null(&mut self) -> ValueId {
        self.new_value(ValueKind::ConstNull, Type::Ptr)
    }

    /// The address of a module global.
    pub fn global_addr(&mut self, g: GlobalId) -> ValueId {
        self.new_value(ValueKind::GlobalAddr(g), Type::Ptr)
    }

    /// The address of a function (an opaque token value).
    pub fn func_addr(&mut self, f: FuncId) -> ValueId {
        self.new_value(ValueKind::FuncAddr(f), Type::Ptr)
    }

    // ---- instruction insertion -------------------------------------------

    fn push(&mut self, inst: Inst, ty: Type) -> ValueId {
        assert!(
            !self.terminated[self.current.index()],
            "block {} already terminated",
            self.current
        );
        let inst_id = InstId(self.func.insts.len() as u32);
        let result = self.new_value(ValueKind::Inst(inst_id), ty);
        self.func.insts.push(InstData {
            inst,
            block: self.current,
            ty,
            result,
        });
        self.func.blocks[self.current.index()].insts.push(inst_id);
        result
    }

    fn expect_type(&self, v: ValueId, ty: Type, ctx: &str) {
        assert_eq!(
            self.func.value_type(v),
            ty,
            "{ctx}: operand {v} has type {} (expected {ty})",
            self.func.value_type(v)
        );
    }

    /// Generic binary operation.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = op.result_type();
        self.expect_type(lhs, ty, op.mnemonic());
        self.expect_type(rhs, ty, op.mnemonic());
        self.push(Inst::Bin { op, lhs, rhs }, ty)
    }

    /// `lhs + rhs` (i64).
    pub fn add(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs` (i64).
    pub fn sub(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs` (i64).
    pub fn mul(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// `lhs / rhs` (i64, signed).
    pub fn sdiv(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::SDiv, lhs, rhs)
    }

    /// `lhs % rhs` (i64, signed).
    pub fn srem(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::SRem, lhs, rhs)
    }

    /// Bitwise and.
    pub fn and(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::And, lhs, rhs)
    }

    /// Bitwise or.
    pub fn or(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Or, lhs, rhs)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Xor, lhs, rhs)
    }

    /// Shift left.
    pub fn shl(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Shl, lhs, rhs)
    }

    /// Arithmetic shift right.
    pub fn ashr(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::AShr, lhs, rhs)
    }

    /// `lhs + rhs` (f64).
    pub fn fadd(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::FAdd, lhs, rhs)
    }

    /// `lhs - rhs` (f64).
    pub fn fsub(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::FSub, lhs, rhs)
    }

    /// `lhs * rhs` (f64).
    pub fn fmul(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::FMul, lhs, rhs)
    }

    /// `lhs / rhs` (f64).
    pub fn fdiv(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::FDiv, lhs, rhs)
    }

    /// Integer comparison producing `i1`.
    pub fn icmp(&mut self, pred: IcmpPred, lhs: ValueId, rhs: ValueId) -> ValueId {
        let lt = self.func.value_type(lhs);
        assert!(
            lt.is_integral() && lt != Type::I1,
            "icmp operands must be i64/ptr"
        );
        assert_eq!(lt, self.func.value_type(rhs), "icmp operand type mismatch");
        self.push(Inst::Icmp { pred, lhs, rhs }, Type::I1)
    }

    /// Float comparison producing `i1`.
    pub fn fcmp(&mut self, pred: FcmpPred, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.expect_type(lhs, Type::F64, "fcmp");
        self.expect_type(rhs, Type::F64, "fcmp");
        self.push(Inst::Fcmp { pred, lhs, rhs }, Type::I1)
    }

    /// `cond ? then_val : else_val`.
    pub fn select(&mut self, cond: ValueId, then_val: ValueId, else_val: ValueId) -> ValueId {
        self.expect_type(cond, Type::I1, "select");
        let ty = self.func.value_type(then_val);
        assert_eq!(
            ty,
            self.func.value_type(else_val),
            "select arm type mismatch"
        );
        self.push(
            Inst::Select {
                cond,
                then_val,
                else_val,
            },
            ty,
        )
    }

    /// Value cast.
    pub fn cast(&mut self, kind: CastKind, val: ValueId) -> ValueId {
        self.expect_type(val, kind.operand_type(), kind.mnemonic());
        self.push(Inst::Cast { kind, val }, kind.result_type())
    }

    /// `i64 -> f64`.
    pub fn sitofp(&mut self, val: ValueId) -> ValueId {
        self.cast(CastKind::SiToFp, val)
    }

    /// `f64 -> i64`.
    pub fn fptosi(&mut self, val: ValueId) -> ValueId {
        self.cast(CastKind::FpToSi, val)
    }

    /// Load one word of type `ty` from `addr`.
    pub fn load(&mut self, ty: Type, addr: ValueId) -> ValueId {
        assert!(ty.is_memory(), "load of non-memory type {ty}");
        self.expect_type(addr, Type::Ptr, "load");
        self.push(Inst::Load { ty, addr }, ty)
    }

    /// Store `val` to `addr`.
    pub fn store(&mut self, val: ValueId, addr: ValueId) {
        assert!(
            self.func.value_type(val).is_memory(),
            "store of non-memory type"
        );
        self.expect_type(addr, Type::Ptr, "store");
        self.push(Inst::Store { val, addr }, Type::Void);
    }

    /// `base + index * scale + offset` (bytes). The workhorse for array
    /// indexing: `gep(base, i, 8, 0)` addresses `base[i]` for word arrays.
    pub fn gep(&mut self, base: ValueId, index: ValueId, scale: i64, offset: i64) -> ValueId {
        self.expect_type(base, Type::Ptr, "gep");
        self.expect_type(index, Type::I64, "gep");
        self.push(
            Inst::Gep {
                base,
                index,
                scale,
                offset,
            },
            Type::Ptr,
        )
    }

    /// Stack-allocates `words` 8-byte slots in the current frame.
    pub fn alloca(&mut self, words: u32) -> ValueId {
        self.push(Inst::Alloca { words }, Type::Ptr)
    }

    /// Direct call to a user function. The declared `ret` type must match
    /// the callee's signature (checked by the module verifier).
    pub fn call(&mut self, callee: FuncId, ret: Type, args: &[ValueId]) -> ValueId {
        self.push(
            Inst::Call {
                callee: Callee::Func(callee),
                args: args.to_vec(),
            },
            ret,
        )
    }

    /// Call to a builtin; argument and return types are checked here.
    pub fn call_builtin(&mut self, builtin: Builtin, args: &[ValueId]) -> ValueId {
        assert_eq!(
            args.len(),
            builtin.arity(),
            "builtin {builtin} expects {} args",
            builtin.arity()
        );
        for (arg, &ty) in args.iter().zip(builtin.param_types()) {
            self.expect_type(*arg, ty, builtin.name());
        }
        self.push(
            Inst::Call {
                callee: Callee::Builtin(builtin),
                args: args.to_vec(),
            },
            builtin.return_type(),
        )
    }

    /// Creates a phi of type `ty` with no incomings yet; fill with
    /// [`FunctionBuilder::add_phi_incoming`]. Must be created before any
    /// non-phi instruction in the block (verified at `finish`).
    pub fn phi(&mut self, ty: Type) -> ValueId {
        self.push(
            Inst::Phi {
                ty,
                incomings: Vec::new(),
            },
            ty,
        )
    }

    /// Adds an incoming `(pred_block, value)` edge to a phi created by
    /// [`FunctionBuilder::phi`].
    ///
    /// # Panics
    /// Panics if `phi` is not a phi instruction result or on type mismatch.
    pub fn add_phi_incoming(&mut self, phi: ValueId, pred: BlockId, value: ValueId) {
        let ValueKind::Inst(inst_id) = *self.func.value(phi) else {
            panic!("{phi} is not an instruction result");
        };
        let vty = self.func.value_type(value);
        let data = &mut self.func.insts[inst_id.index()];
        let Inst::Phi { ty, incomings } = &mut data.inst else {
            panic!("{phi} is not a phi");
        };
        assert_eq!(*ty, vty, "phi incoming type mismatch");
        incomings.push((pred, value));
    }

    // ---- terminators -----------------------------------------------------

    fn terminate(&mut self, term: Term) {
        let idx = self.current.index();
        assert!(
            !self.terminated[idx],
            "block {} already terminated",
            self.current
        );
        self.func.blocks[idx].term = term;
        self.terminated[idx] = true;
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Term::Br(target));
    }

    /// Conditional branch on an `i1` value.
    pub fn cond_br(&mut self, cond: ValueId, then_blk: BlockId, else_blk: BlockId) {
        self.expect_type(cond, Type::I1, "condbr");
        self.terminate(Term::CondBr {
            cond,
            then_blk,
            else_blk,
        });
    }

    /// Function return.
    pub fn ret(&mut self, value: Option<ValueId>) {
        if let Some(v) = value {
            let ty = self.func.value_type(v);
            assert_eq!(ty, self.func.ret, "return type mismatch");
        } else {
            assert_eq!(self.func.ret, Type::Void, "missing return value");
        }
        self.terminate(Term::Ret(value));
    }

    /// Finalizes the function.
    ///
    /// # Errors
    /// Returns [`IrError::Invalid`] if any block lacks a terminator or a phi
    /// appears after a non-phi instruction.
    pub fn finish(self) -> Result<Function> {
        for (i, done) in self.terminated.iter().enumerate() {
            if !done {
                let name = self.func.blocks[i]
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("b{i}"));
                return Err(IrError::Invalid(format!(
                    "block {name} in function {} has no terminator",
                    self.func.name
                )));
            }
        }
        for block in &self.func.blocks {
            let mut seen_non_phi = false;
            for &iid in &block.insts {
                let is_phi = self.func.inst(iid).inst.is_phi();
                if is_phi && seen_non_phi {
                    return Err(IrError::Invalid(format!(
                        "phi after non-phi instruction in function {}",
                        self.func.name
                    )));
                }
                seen_non_phi |= !is_phi;
            }
        }
        Ok(self.func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds `fn sum_to(n) { s = 0; for i in 0..n { s += i }; s }`.
    fn sum_to() -> Function {
        let mut fb = FunctionBuilder::new("sum_to", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let s = fb.phi(Type::I64);
        let cond = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(cond, body, exit);
        fb.switch_to(body);
        let s2 = fb.add(s, i);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(s, BlockId::ENTRY, zero);
        fb.add_phi_incoming(s, body, s2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(s));
        fb.finish().unwrap()
    }

    #[test]
    fn builds_a_counted_loop() {
        let f = sum_to();
        assert_eq!(f.blocks.len(), 4);
        assert!(crate::verify_function(&f, None).is_ok());
    }

    #[test]
    fn finish_rejects_unterminated_block() {
        let mut fb = FunctionBuilder::new("bad", &[], Type::Void);
        let _orphan = fb.create_block("orphan");
        fb.ret(None);
        assert!(matches!(fb.finish(), Err(IrError::Invalid(_))));
    }

    #[test]
    fn finish_rejects_phi_after_non_phi() {
        let mut fb = FunctionBuilder::new("bad", &[], Type::Void);
        let loop_blk = fb.create_block("loop");
        fb.br(loop_blk);
        fb.switch_to(loop_blk);
        let a = fb.const_i64(1);
        let _x = fb.add(a, a);
        let p = fb.phi(Type::I64);
        fb.add_phi_incoming(p, BlockId::ENTRY, a);
        fb.add_phi_incoming(p, loop_blk, p);
        fb.br(loop_blk);
        assert!(matches!(fb.finish(), Err(IrError::Invalid(_))));
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn inserting_after_terminator_panics() {
        let mut fb = FunctionBuilder::new("bad", &[], Type::Void);
        fb.ret(None);
        let _ = fb.const_i64(0); // constants are fine...
        let a = fb.const_i64(1);
        let _ = fb.add(a, a); // ...but instructions are not.
    }

    #[test]
    #[should_panic(expected = "operand")]
    fn type_mismatch_panics() {
        let mut fb = FunctionBuilder::new("bad", &[], Type::Void);
        let i = fb.const_i64(1);
        let f = fb.const_f64(1.0);
        let _ = fb.add(i, f);
    }

    #[test]
    #[should_panic(expected = "return type mismatch")]
    fn wrong_return_type_panics() {
        let mut fb = FunctionBuilder::new("bad", &[], Type::I64);
        let f = fb.const_f64(1.0);
        fb.ret(Some(f));
    }

    #[test]
    fn builtin_call_type_checks() {
        let mut fb = FunctionBuilder::new("m", &[], Type::F64);
        let x = fb.const_f64(2.0);
        let r = fb.call_builtin(Builtin::Sqrt, &[x]);
        fb.ret(Some(r));
        let f = fb.finish().unwrap();
        assert_eq!(f.value_type(r), Type::F64);
    }

    #[test]
    #[should_panic(expected = "expects 1 args")]
    fn builtin_arity_checked() {
        let mut fb = FunctionBuilder::new("m", &[], Type::Void);
        let _ = fb.call_builtin(Builtin::Sqrt, &[]);
    }
}
