//! IR cleanup transforms: constant folding, algebraic simplification, and
//! dead-code elimination.
//!
//! The paper's compile-time component consumes IR "after [the compilation
//! units] have been optimized (using -Ofast)" (§III-A) — classification
//! quality and dynamic IR costs both assume cleaned-up code. These passes
//! provide that preprocessing for IR assembled by hand or by generators:
//!
//! - [`fold_constants`] evaluates instructions whose operands are all
//!   constants and forwards trivially simplifiable ones (`x+0`, `x*1`,
//!   `select` on a constant condition, ...);
//! - [`eliminate_dead_code`] removes side-effect-free instructions whose
//!   results are never used;
//! - [`simplify`] iterates both to a fixpoint.
//!
//! Arithmetic here must agree with `lp-interp`'s semantics; the workspace
//! integration tests check that simplification never changes a program's
//! observable result.
//!
//! Control flow is left untouched (no branch folding), so loop structure —
//! what Loopapalooza studies — is never altered.

use crate::function::{Function, InstId};
use crate::inst::{BinOp, Callee, CastKind, FcmpPred, IcmpPred, Inst, Term};
use crate::value::{ValueId, ValueKind};

/// Statistics returned by [`simplify`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Instructions replaced by constants or forwarded operands.
    pub folded: usize,
    /// Dead instructions removed.
    pub removed: usize,
    /// Fixpoint iterations performed.
    pub rounds: usize,
}

/// A compile-time constant operand.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Const {
    I(i64),
    F(f64),
    B(bool),
}

fn const_of(func: &Function, v: ValueId) -> Option<Const> {
    match func.value(v) {
        ValueKind::ConstInt(c) => Some(Const::I(*c)),
        ValueKind::ConstFloat(c) => Some(Const::F(*c)),
        ValueKind::ConstBool(b) => Some(Const::B(*b)),
        _ => None,
    }
}

/// Replaces every use of `from` with `to` (operands, phi incomings,
/// terminators).
fn replace_uses(func: &mut Function, from: ValueId, to: ValueId) {
    let swap = |v: &mut ValueId| {
        if *v == from {
            *v = to;
        }
    };
    for data in &mut func.insts {
        match &mut data.inst {
            Inst::Bin { lhs, rhs, .. }
            | Inst::Icmp { lhs, rhs, .. }
            | Inst::Fcmp { lhs, rhs, .. } => {
                swap(lhs);
                swap(rhs);
            }
            Inst::Select {
                cond,
                then_val,
                else_val,
            } => {
                swap(cond);
                swap(then_val);
                swap(else_val);
            }
            Inst::Cast { val, .. } => swap(val),
            Inst::Load { addr, .. } => swap(addr),
            Inst::Store { val, addr } => {
                swap(val);
                swap(addr);
            }
            Inst::Gep { base, index, .. } => {
                swap(base);
                swap(index);
            }
            Inst::Alloca { .. } => {}
            Inst::Call { args, .. } => args.iter_mut().for_each(swap),
            Inst::Phi { incomings, .. } => incomings.iter_mut().for_each(|(_, v)| swap(v)),
        }
    }
    for block in &mut func.blocks {
        match &mut block.term {
            Term::CondBr { cond, .. } => swap(cond),
            Term::Ret(Some(v)) => swap(v),
            _ => {}
        }
    }
}

fn fold_bin(op: BinOp, l: Const, r: Const) -> Option<Const> {
    if op.is_float() {
        let (Const::F(a), Const::F(b)) = (l, r) else {
            return None;
        };
        return Some(Const::F(match op {
            BinOp::FAdd => a + b,
            BinOp::FSub => a - b,
            BinOp::FMul => a * b,
            BinOp::FDiv => a / b,
            BinOp::FMin => a.min(b),
            BinOp::FMax => a.max(b),
            _ => return None,
        }));
    }
    let (Const::I(a), Const::I(b)) = (l, r) else {
        return None;
    };
    Some(Const::I(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        // Division traps at run time; never fold it away.
        BinOp::SDiv | BinOp::SRem => return None,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::AShr => a.wrapping_shr(b as u32 & 63),
        BinOp::SMin => a.min(b),
        BinOp::SMax => a.max(b),
        _ => return None,
    }))
}

/// Algebraic identities that forward an existing operand instead of
/// producing a constant: returns the value the result is equivalent to.
///
/// The float identities (`x + 0.0 -> x`, `x * 1.0 -> x`) follow fast-math
/// semantics (they ignore signed zeros), matching the paper's `-Ofast`
/// baseline — do not "fix" them to be IEEE-strict without also revisiting
/// that parity.
fn identity(
    op: BinOp,
    lhs: ValueId,
    rhs: ValueId,
    l: Option<Const>,
    r: Option<Const>,
) -> Option<ValueId> {
    match op {
        BinOp::Add | BinOp::Or | BinOp::Xor if r == Some(Const::I(0)) => return Some(lhs),
        BinOp::Add | BinOp::Or | BinOp::Xor if l == Some(Const::I(0)) => return Some(rhs),
        BinOp::Sub | BinOp::Shl | BinOp::AShr if r == Some(Const::I(0)) => return Some(lhs),
        BinOp::Mul => {
            if r == Some(Const::I(1)) {
                return Some(lhs);
            }
            if l == Some(Const::I(1)) {
                return Some(rhs);
            }
        }
        BinOp::FAdd => {
            if r == Some(Const::F(0.0)) {
                return Some(lhs);
            }
            if l == Some(Const::F(0.0)) {
                return Some(rhs);
            }
        }
        BinOp::FMul => {
            if r == Some(Const::F(1.0)) {
                return Some(lhs);
            }
            if l == Some(Const::F(1.0)) {
                return Some(rhs);
            }
        }
        _ => {}
    }
    None
}

/// Folds constant and trivially simplifiable instructions. Returns the
/// number of instructions eliminated.
pub fn fold_constants(func: &mut Function) -> usize {
    let mut folded = 0usize;
    for bid in 0..func.blocks.len() {
        let insts = func.blocks[bid].insts.clone();
        let mut kept: Vec<InstId> = Vec::with_capacity(insts.len());
        for iid in insts {
            let data = func.inst(iid);
            let result = data.result;
            let new_kind: Option<Result<Const, ValueId>> = match &data.inst {
                Inst::Bin { op, lhs, rhs } => {
                    let (l, r) = (const_of(func, *lhs), const_of(func, *rhs));
                    if let (Some(l), Some(r)) = (l, r) {
                        fold_bin(*op, l, r).map(Ok)
                    } else {
                        identity(*op, *lhs, *rhs, l, r).map(Err)
                    }
                }
                Inst::Icmp { pred, lhs, rhs } => {
                    match (const_of(func, *lhs), const_of(func, *rhs)) {
                        (Some(Const::I(a)), Some(Const::I(b))) => Some(Ok(Const::B(match pred {
                            IcmpPred::Eq => a == b,
                            IcmpPred::Ne => a != b,
                            IcmpPred::Slt => a < b,
                            IcmpPred::Sle => a <= b,
                            IcmpPred::Sgt => a > b,
                            IcmpPred::Sge => a >= b,
                        }))),
                        _ => None,
                    }
                }
                Inst::Fcmp { pred, lhs, rhs } => {
                    match (const_of(func, *lhs), const_of(func, *rhs)) {
                        (Some(Const::F(a)), Some(Const::F(b))) => Some(Ok(Const::B(match pred {
                            FcmpPred::Oeq => a == b,
                            FcmpPred::One => a != b,
                            FcmpPred::Olt => a < b,
                            FcmpPred::Ole => a <= b,
                            FcmpPred::Ogt => a > b,
                            FcmpPred::Oge => a >= b,
                        }))),
                        _ => None,
                    }
                }
                Inst::Select {
                    cond,
                    then_val,
                    else_val,
                } => match const_of(func, *cond) {
                    Some(Const::B(true)) => Some(Err(*then_val)),
                    Some(Const::B(false)) => Some(Err(*else_val)),
                    _ => None,
                },
                Inst::Cast { kind, val } => match (kind, const_of(func, *val)) {
                    (CastKind::SiToFp, Some(Const::I(a))) => Some(Ok(Const::F(a as f64))),
                    (CastKind::FpToSi, Some(Const::F(a))) => Some(Ok(Const::I(a as i64))),
                    (CastKind::BoolToInt, Some(Const::B(b))) => Some(Ok(Const::I(i64::from(b)))),
                    _ => None,
                },
                _ => None,
            };
            match new_kind {
                Some(Ok(c)) => {
                    func.values[result.index()] = match c {
                        Const::I(v) => ValueKind::ConstInt(v),
                        Const::F(v) => ValueKind::ConstFloat(v),
                        Const::B(v) => ValueKind::ConstBool(v),
                    };
                    folded += 1;
                }
                Some(Err(alias)) => {
                    replace_uses(func, result, alias);
                    folded += 1;
                }
                None => kept.push(iid),
            }
        }
        func.blocks[bid].insts = kept;
    }
    folded
}

/// Removes side-effect-free instructions whose results have no uses.
/// Returns the number of instructions removed.
pub fn eliminate_dead_code(func: &mut Function) -> usize {
    // Collect used values from live instructions and terminators.
    let mut used = vec![false; func.values.len()];
    for block in &func.blocks {
        for &iid in &block.insts {
            for op in func.inst(iid).inst.operands() {
                used[op.index()] = true;
            }
        }
        match &block.term {
            Term::CondBr { cond, .. } => used[cond.index()] = true,
            Term::Ret(Some(v)) => used[v.index()] = true,
            _ => {}
        }
    }
    let mut removed = 0usize;
    for bid in 0..func.blocks.len() {
        let insts = func.blocks[bid].insts.clone();
        let kept: Vec<InstId> = insts
            .into_iter()
            .filter(|&iid| {
                let data = func.inst(iid);
                let side_effecting = match &data.inst {
                    Inst::Store { .. } => true,
                    Inst::Call { callee, .. } => match callee {
                        Callee::Func(_) => true, // may write / recurse
                        Callee::Builtin(b) => !b.is_pure(),
                    },
                    _ => false,
                };
                let keep = side_effecting || used[data.result.index()];
                if !keep {
                    removed += 1;
                }
                keep
            })
            .collect();
        func.blocks[bid].insts = kept;
    }
    removed
}

/// Runs folding and DCE to a fixpoint over every function of a module.
///
/// ```
/// use lp_ir::builder::FunctionBuilder;
/// use lp_ir::{Module, Type};
///
/// let mut module = Module::new("demo");
/// let mut fb = FunctionBuilder::new("main", &[], Type::I64);
/// let a = fb.const_i64(40);
/// let b = fb.const_i64(2);
/// let sum = fb.add(a, b);
/// fb.ret(Some(sum));
/// module.add_function(fb.finish().unwrap());
///
/// let stats = lp_ir::simplify(&mut module);
/// assert_eq!(stats.folded, 1); // the add became the constant 42
/// ```
pub fn simplify(module: &mut crate::Module) -> SimplifyStats {
    let mut stats = SimplifyStats::default();
    for func in &mut module.functions {
        loop {
            let folded = fold_constants(func);
            let removed = eliminate_dead_code(func);
            stats.folded += folded;
            stats.removed += removed;
            stats.rounds += 1;
            if folded == 0 && removed == 0 {
                break;
            }
        }
    }
    stats
}

/// Splits an iteration space of `total` iterations into at most `parts`
/// contiguous, balanced, non-overlapping half-open ranges covering
/// `0..total` in order.
///
/// The first `total % parts` ranges get one extra iteration, so sizes
/// differ by at most one. Used by the parallel replay engine to carve a
/// certified DOALL loop's trip count into per-worker chunks; keeping the
/// split here (next to the IR the loop came from) lets any future code
/// motion pass reuse the same partitioning contract.
///
/// Degenerate inputs collapse gracefully: `total == 0` yields no ranges,
/// and `parts == 0` is treated as 1. When `total < parts` only `total`
/// singleton ranges are produced — never an empty range.
#[must_use]
pub fn split_iterations(total: u64, parts: usize) -> Vec<std::ops::Range<u64>> {
    let parts = (parts.max(1) as u64).min(total);
    let mut out = Vec::with_capacity(parts as usize);
    if parts == 0 {
        return out;
    }
    let base = total / parts;
    let extra = total % parts;
    let mut lo = 0u64;
    for k in 0..parts {
        let len = base + u64::from(k < extra);
        out.push(lo..lo + len);
        lo += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{Module, Type};

    #[test]
    fn split_iterations_covers_and_balances() {
        for total in [0u64, 1, 2, 3, 7, 8, 100, 101] {
            for parts in [0usize, 1, 2, 3, 8, 200] {
                let ranges = split_iterations(total, parts);
                // Exact cover, in order, no empty ranges.
                let mut next = 0u64;
                for r in &ranges {
                    assert_eq!(r.start, next, "{total}/{parts}");
                    assert!(r.end > r.start, "{total}/{parts}");
                    next = r.end;
                }
                assert_eq!(next, total, "{total}/{parts}");
                assert_eq!(ranges.len() as u64, (parts.max(1) as u64).min(total));
                // Balanced: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.end - r.start).min(),
                    ranges.iter().map(|r| r.end - r.start).max(),
                ) {
                    assert!(max - min <= 1, "{total}/{parts}");
                }
            }
        }
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let a = fb.const_i64(6);
        let b = fb.const_i64(7);
        let c = fb.mul(a, b);
        let d = fb.const_i64(0);
        let e = fb.add(c, d); // identity: e == c
        fb.ret(Some(e));
        m.add_function(fb.finish().unwrap());
        let stats = simplify(&mut m);
        assert!(stats.folded >= 2, "{stats:?}");
        crate::verify_module(&m).unwrap();
        // main should now be a bare `ret` of a constant 42.
        let f = m.function(m.entry().unwrap());
        assert!(f.blocks[0].insts.is_empty(), "all instructions folded");
        let Term::Ret(Some(v)) = &f.blocks[0].term else {
            panic!()
        };
        assert_eq!(f.value(*v), &ValueKind::ConstInt(42));
    }

    #[test]
    fn removes_dead_chains_but_keeps_effects() {
        let mut m = Module::new("t");
        let g = m.add_global(crate::Global::zeroed("g", 1));
        let mut fb = FunctionBuilder::new("main", &[Type::I64], Type::I64);
        let x = fb.param(0);
        let dead1 = fb.mul(x, x);
        let _dead2 = fb.add(dead1, x); // whole chain unused
        let p = fb.global_addr(g);
        fb.store(x, p); // side effect: must stay
        fb.ret(Some(x));
        m.add_function(fb.finish().unwrap());
        let stats = simplify(&mut m);
        assert_eq!(stats.removed, 2, "{stats:?}");
        let f = m.function(m.entry().unwrap());
        assert_eq!(f.blocks[0].insts.len(), 1, "only the store survives");
        crate::verify_module(&m).unwrap();
    }

    #[test]
    fn select_on_constant_condition_forwards() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[Type::I64, Type::I64], Type::I64);
        let a = fb.param(0);
        let b = fb.param(1);
        let t = fb.const_bool(true);
        let s = fb.select(t, a, b);
        let one = fb.const_i64(1);
        let r = fb.add(s, one);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        simplify(&mut m);
        crate::verify_module(&m).unwrap();
        // The add must now consume the parameter directly.
        let f = m.function(m.entry().unwrap());
        let add = f.inst(*f.blocks[0].insts.last().unwrap());
        let Inst::Bin { lhs, .. } = &add.inst else {
            panic!()
        };
        assert_eq!(*lhs, f.param_value(0));
    }

    #[test]
    fn never_folds_division_or_impure_calls() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let a = fb.const_i64(1);
        let z = fb.const_i64(0);
        let d = fb.sdiv(a, z); // traps at run time: must survive
        fb.call_builtin(crate::Builtin::PrintI64, &[d]);
        fb.ret(Some(d));
        m.add_function(fb.finish().unwrap());
        simplify(&mut m);
        let f = m.function(m.entry().unwrap());
        assert_eq!(f.blocks[0].insts.len(), 2, "sdiv and print both survive");
    }

    #[test]
    fn pure_builtin_call_with_unused_result_is_dead() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let x = fb.const_f64(2.0);
        let _unused = fb.call_builtin(crate::Builtin::Sqrt, &[x]);
        let r = fb.const_i64(0);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        let stats = simplify(&mut m);
        assert_eq!(stats.removed, 1);
    }

    #[test]
    fn loops_survive_simplification() {
        // A counted loop whose bound is constant must keep its structure
        // (no branch folding).
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(10);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(crate::IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, crate::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        m.add_function(fb.finish().unwrap());
        simplify(&mut m);
        crate::verify_module(&m).unwrap();
        let f = m.function(m.entry().unwrap());
        assert_eq!(f.blocks.len(), 4, "CFG untouched");
        assert!(matches!(
            f.block(crate::BlockId(1)).term,
            Term::CondBr { .. }
        ));
    }
}
