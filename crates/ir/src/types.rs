//! The (deliberately small) type system of the IR.
//!
//! Loopapalooza's analyses only need to distinguish integer, floating-point
//! and pointer values; every memory cell is one 8-byte word. This mirrors the
//! paper's use of `-Ofast`-optimized LLVM IR where the dynamic instruction
//! count — not data-width microarchitecture detail — is the cost metric.

use std::fmt;

/// A first-class IR type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Type {
    /// 1-bit boolean (comparison results, branch conditions).
    I1,
    /// 64-bit signed integer.
    #[default]
    I64,
    /// 64-bit IEEE-754 floating point.
    F64,
    /// Byte-addressed pointer into the flat memory space.
    Ptr,
    /// The absence of a value (only valid as a function return type).
    Void,
}

impl Type {
    /// Returns `true` for types that may be stored to / loaded from memory.
    ///
    /// `I1` and `Void` are register-only artifacts of control flow.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, Type::I64 | Type::F64 | Type::Ptr)
    }

    /// Returns `true` if values of this type carry integer semantics
    /// (including pointers, which are integers for address arithmetic).
    #[must_use]
    pub fn is_integral(self) -> bool {
        matches!(self, Type::I1 | Type::I64 | Type::Ptr)
    }

    /// Returns `true` for the floating-point type.
    #[must_use]
    pub fn is_float(self) -> bool {
        self == Type::F64
    }

    /// Size of a value of this type when stored in memory, in bytes.
    ///
    /// All memory types occupy one 8-byte word.
    #[must_use]
    pub fn size_bytes(self) -> u64 {
        match self {
            Type::I64 | Type::F64 | Type::Ptr => 8,
            Type::I1 | Type::Void => 0,
        }
    }

    /// Parses the textual form used by the printer (`i1`, `i64`, `f64`,
    /// `ptr`, `void`).
    #[must_use]
    pub fn from_text(text: &str) -> Option<Type> {
        match text {
            "i1" => Some(Type::I1),
            "i64" => Some(Type::I64),
            "f64" => Some(Type::F64),
            "ptr" => Some(Type::Ptr),
            "void" => Some(Type::Void),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Type::I1 => "i1",
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
            Type::Void => "void",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        for ty in [Type::I1, Type::I64, Type::F64, Type::Ptr, Type::Void] {
            assert_eq!(Type::from_text(&ty.to_string()), Some(ty));
        }
    }

    #[test]
    fn from_text_rejects_unknown() {
        assert_eq!(Type::from_text("i32"), None);
        assert_eq!(Type::from_text(""), None);
    }

    #[test]
    fn memory_types_are_word_sized() {
        assert_eq!(Type::I64.size_bytes(), 8);
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::Ptr.size_bytes(), 8);
        assert_eq!(Type::I1.size_bytes(), 0);
        assert_eq!(Type::Void.size_bytes(), 0);
    }

    #[test]
    fn classification_predicates() {
        assert!(Type::I64.is_integral());
        assert!(Type::Ptr.is_integral());
        assert!(Type::I1.is_integral());
        assert!(!Type::F64.is_integral());
        assert!(Type::F64.is_float());
        assert!(Type::I64.is_memory());
        assert!(!Type::Void.is_memory());
        assert!(!Type::I1.is_memory());
    }
}
