//! Parser for the textual IR format produced by [`crate::printer`].
//!
//! The format is line-oriented. Two passes per function: pass one allocates
//! blocks and typed result values (so phis may reference forward
//! definitions), pass two parses instruction payloads. Constants encountered
//! as operands are appended to the value arena on first use.

use crate::function::{Block, BlockId, Function, InstData, InstId};
use crate::inst::{BinOp, Builtin, Callee, CastKind, FcmpPred, IcmpPred, Inst, Term};
use crate::module::{FuncId, Global, GlobalId, Module};
use crate::types::Type;
use crate::value::{ValueId, ValueKind};
use crate::{IrError, Result};
use std::collections::HashMap;

/// Parses a whole module.
///
/// ```
/// let module = lp_ir::parser::parse_module(r#"
/// module "demo"
/// fn @main() -> i64 {
/// entry:
///   %x: i64 = add i64 40, i64 2
///   ret %x
/// }
/// "#).unwrap();
/// assert_eq!(module.functions.len(), 1);
/// ```
///
/// # Errors
/// Returns [`IrError::Parse`] with a 1-based line number on malformed input,
/// or [`IrError::Invalid`] if the parsed module fails verification.
pub fn parse_module(text: &str) -> Result<Module> {
    let mut parser = Parser::new(text);
    let module = parser.module()?;
    crate::verify_module(&module)?;
    Ok(module)
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

struct PErr {
    message: String,
}

type PResult<T> = std::result::Result<T, PErr>;

fn perr(message: impl Into<String>) -> PErr {
    PErr {
        message: message.into(),
    }
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = match l.find("//") {
                    Some(p) => &l[..p],
                    None => l,
                };
                (i + 1, l.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<&'a str> {
        self.lines.get(self.pos).map(|(_, l)| *l)
    }

    fn line_no(&self) -> usize {
        self.lines
            .get(self.pos.min(self.lines.len().saturating_sub(1)))
            .map_or(0, |(n, _)| *n)
    }

    fn next_line(&mut self) -> Option<&'a str> {
        let l = self.peek()?;
        self.pos += 1;
        Some(l)
    }

    fn fail<T>(&self, e: PErr) -> Result<T> {
        Err(IrError::Parse {
            line: self.line_no(),
            message: e.message,
        })
    }

    fn module(&mut self) -> Result<Module> {
        let Some(first) = self.next_line() else {
            return self.fail(perr("empty input"));
        };
        let name = match first.strip_prefix("module ") {
            Some(rest) => rest.trim().trim_matches('"').to_string(),
            None => return self.fail(perr("expected `module \"name\"`")),
        };
        let mut module = Module::new(name);
        // First collect global and function headers for symbol resolution.
        // Functions may call functions defined later, so scan ahead for all
        // `fn @name(...) -> ty` headers first.
        let mut fn_sigs: HashMap<String, (Vec<Type>, Type)> = HashMap::new();
        let mut fn_order: Vec<String> = Vec::new();
        for (_, line) in &self.lines[self.pos..] {
            if let Some(rest) = line.strip_prefix("fn @") {
                match parse_fn_header(rest) {
                    Ok((name, params, ret)) => {
                        fn_order.push(name.clone());
                        fn_sigs.insert(name, (params, ret));
                    }
                    Err(e) => return self.fail(e),
                }
            }
        }
        let fn_ids: HashMap<String, FuncId> = fn_order
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), FuncId(i as u32)))
            .collect();

        let mut global_ids: HashMap<String, GlobalId> = HashMap::new();
        while let Some(line) = self.peek() {
            if let Some(rest) = line.strip_prefix("global @") {
                match parse_global(rest) {
                    Ok(g) => {
                        let name = g.name.clone();
                        let id = module.add_global(g);
                        global_ids.insert(name, id);
                    }
                    Err(e) => return self.fail(e),
                }
                self.pos += 1;
            } else if line.starts_with("fn @") {
                self.pos += 1; // consume header; body follows
                let header = line.strip_prefix("fn @").unwrap();
                let (name, params, ret) = match parse_fn_header(header) {
                    Ok(h) => h,
                    Err(e) => return self.fail(e),
                };
                let func =
                    self.function_body(&name, &params, ret, &fn_ids, &fn_sigs, &global_ids)?;
                module.add_function(func);
            } else {
                return self.fail(perr(format!("unexpected line: {line}")));
            }
        }
        Ok(module)
    }

    /// Parses a function body up to and including the closing `}`.
    fn function_body(
        &mut self,
        name: &str,
        params: &[Type],
        ret: Type,
        fn_ids: &HashMap<String, FuncId>,
        fn_sigs: &HashMap<String, (Vec<Type>, Type)>,
        global_ids: &HashMap<String, GlobalId>,
    ) -> Result<Function> {
        // Collect the body lines.
        let start = self.pos;
        let mut end = None;
        while let Some(line) = self.next_line() {
            if line == "}" {
                end = Some(self.pos - 1);
                break;
            }
        }
        let Some(end) = end else {
            return self.fail(perr(format!("function {name}: missing closing brace")));
        };
        let body = &self.lines[start..end];

        let mut func = Function::new(name, params, ret);
        func.blocks.clear(); // re-create from labels

        // Pass 1: blocks and named results.
        let mut block_ids: HashMap<String, BlockId> = HashMap::new();
        let mut value_ids: HashMap<String, ValueId> = HashMap::new();
        for (i, &ty) in params.iter().enumerate() {
            value_ids.insert(format!("v{i}"), ValueId(i as u32));
            let _ = ty;
        }
        for (lineno, line) in body {
            if let Some(label) = line.strip_suffix(':') {
                if !is_ident(label) {
                    return Err(IrError::Parse {
                        line: *lineno,
                        message: format!("bad block label {label:?}"),
                    });
                }
                let id = BlockId(func.blocks.len() as u32);
                if block_ids.insert(label.to_string(), id).is_some() {
                    return Err(IrError::Parse {
                        line: *lineno,
                        message: format!("duplicate block label {label:?}"),
                    });
                }
                func.blocks.push(Block {
                    insts: Vec::new(),
                    term: Term::Ret(None),
                    name: Some(label.to_string()),
                });
            } else if let Some((def, _)) = line.split_once('=') {
                // `%name: ty = ...`
                let def = def.trim();
                if let Some(rest) = def.strip_prefix('%') {
                    let Some((vname, vty)) = rest.split_once(':') else {
                        return Err(IrError::Parse {
                            line: *lineno,
                            message: "expected `%name: ty = ...`".to_string(),
                        });
                    };
                    let vname = vname.trim();
                    let Some(ty) = Type::from_text(vty.trim()) else {
                        return Err(IrError::Parse {
                            line: *lineno,
                            message: format!("unknown type {:?}", vty.trim()),
                        });
                    };
                    let id = ValueId(func.values.len() as u32);
                    // Placeholder; patched in pass 2.
                    func.values.push(ValueKind::ConstInt(0));
                    func.value_types.push(ty);
                    if value_ids.insert(vname.to_string(), id).is_some() {
                        return Err(IrError::Parse {
                            line: *lineno,
                            message: format!("duplicate value %{vname}"),
                        });
                    }
                }
            }
        }
        if func.blocks.is_empty() {
            return self.fail(perr(format!("function {name}: no blocks")));
        }

        // Pass 2: instructions and terminators.
        let ctx = OperandCtx {
            fn_ids,
            fn_sigs,
            global_ids,
            block_ids: &block_ids,
            value_ids: &value_ids,
        };
        let mut current: Option<BlockId> = None;
        for (lineno, line) in body {
            let result: PResult<()> = (|| {
                if let Some(label) = line.strip_suffix(':') {
                    current = Some(block_ids[label]);
                    return Ok(());
                }
                let Some(block) = current else {
                    return Err(perr("instruction before first block label"));
                };
                if let Some(term) = parse_terminator(line, &ctx, &mut func)? {
                    func.blocks[block.index()].term = term;
                    return Ok(());
                }
                let (result_name, payload) = split_def(line)?;
                let inst_id = InstId(func.insts.len() as u32);
                let (inst, ty) = parse_inst(payload, &ctx, &mut func)?;
                let result = match result_name {
                    Some(nm) => {
                        let id = *ctx
                            .value_ids
                            .get(nm)
                            .ok_or_else(|| perr(format!("unknown result %{nm}")))?;
                        if func.value_types[id.index()] != ty {
                            return Err(perr(format!(
                                "declared type of %{nm} does not match instruction"
                            )));
                        }
                        func.values[id.index()] = ValueKind::Inst(inst_id);
                        id
                    }
                    None => {
                        let id = ValueId(func.values.len() as u32);
                        func.values.push(ValueKind::Inst(inst_id));
                        func.value_types.push(Type::Void);
                        id
                    }
                };
                func.insts.push(InstData {
                    inst,
                    block,
                    ty,
                    result,
                });
                func.blocks[block.index()].insts.push(inst_id);
                Ok(())
            })();
            if let Err(e) = result {
                return Err(IrError::Parse {
                    line: *lineno,
                    message: e.message,
                });
            }
        }
        Ok(func)
    }
}

struct OperandCtx<'a> {
    fn_ids: &'a HashMap<String, FuncId>,
    fn_sigs: &'a HashMap<String, (Vec<Type>, Type)>,
    global_ids: &'a HashMap<String, GlobalId>,
    block_ids: &'a HashMap<String, BlockId>,
    value_ids: &'a HashMap<String, ValueId>,
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// `name(%v0: i64, ...) -> ty` (after `fn @`).
fn parse_fn_header(text: &str) -> PResult<(String, Vec<Type>, Type)> {
    let text = text.trim().trim_end_matches('{').trim();
    let open = text
        .find('(')
        .ok_or_else(|| perr("missing ( in fn header"))?;
    let close = text
        .rfind(')')
        .ok_or_else(|| perr("missing ) in fn header"))?;
    let name = text[..open].trim().to_string();
    if !is_ident(&name) {
        return Err(perr(format!("bad function name {name:?}")));
    }
    let params_text = &text[open + 1..close];
    let mut params = Vec::new();
    if !params_text.trim().is_empty() {
        for p in params_text.split(',') {
            let (_, ty) = p
                .trim()
                .split_once(':')
                .ok_or_else(|| perr("bad parameter"))?;
            let ty = Type::from_text(ty.trim()).ok_or_else(|| perr("bad parameter type"))?;
            params.push(ty);
        }
    }
    let ret_text = text[close + 1..]
        .trim()
        .strip_prefix("->")
        .ok_or_else(|| perr("missing -> in fn header"))?
        .trim();
    let ret = Type::from_text(ret_text).ok_or_else(|| perr("bad return type"))?;
    Ok((name, params, ret))
}

/// `name = words(8)` or `name = words(8) init [1, 2]` (after `global @`).
fn parse_global(text: &str) -> PResult<Global> {
    let (name, rest) = text.split_once('=').ok_or_else(|| perr("bad global"))?;
    let name = name.trim().to_string();
    let rest = rest.trim();
    let rest = rest
        .strip_prefix("words(")
        .ok_or_else(|| perr("expected words(N)"))?;
    let (words, rest) = rest.split_once(')').ok_or_else(|| perr("missing )"))?;
    let words: u64 = words
        .trim()
        .parse()
        .map_err(|_| perr("bad global word count"))?;
    let rest = rest.trim();
    let mut init = Vec::new();
    if !rest.is_empty() {
        let rest = rest
            .strip_prefix("init")
            .ok_or_else(|| perr("expected init [..]"))?
            .trim()
            .strip_prefix('[')
            .and_then(|r| r.strip_suffix(']'))
            .ok_or_else(|| perr("bad init list"))?;
        for item in rest.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let w: u64 = item.parse().map_err(|_| perr("bad init word"))?;
            init.push(w);
        }
        if init.len() as u64 > words {
            return Err(perr("init longer than global"));
        }
    }
    Ok(Global { name, words, init })
}

/// Splits `%name: ty = payload` into `(Some(name), payload)`, or returns
/// `(None, line)` for value-less instructions.
fn split_def(line: &str) -> PResult<(Option<&str>, &str)> {
    if line.starts_with('%') {
        let (def, payload) = line.split_once('=').ok_or_else(|| perr("missing ="))?;
        let def = def.trim().strip_prefix('%').unwrap();
        let (name, _) = def
            .split_once(':')
            .ok_or_else(|| perr("missing type on def"))?;
        Ok((Some(name.trim()), payload.trim()))
    } else {
        Ok((None, line))
    }
}

/// Parses an operand, materializing constants in the arena.
fn parse_operand(text: &str, ctx: &OperandCtx<'_>, func: &mut Function) -> PResult<ValueId> {
    let text = text.trim();
    if let Some(name) = text.strip_prefix('%') {
        return ctx
            .value_ids
            .get(name)
            .copied()
            .ok_or_else(|| perr(format!("unknown value %{name}")));
    }
    let push = |func: &mut Function, kind: ValueKind, ty: Type| {
        let id = ValueId(func.values.len() as u32);
        func.values.push(kind);
        func.value_types.push(ty);
        id
    };
    if let Some(rest) = text.strip_prefix("i64 ") {
        let v: i64 = rest.trim().parse().map_err(|_| perr("bad i64 literal"))?;
        return Ok(push(func, ValueKind::ConstInt(v), Type::I64));
    }
    if let Some(rest) = text.strip_prefix("f64 ") {
        let v: f64 = rest.trim().parse().map_err(|_| perr("bad f64 literal"))?;
        return Ok(push(func, ValueKind::ConstFloat(v), Type::F64));
    }
    if let Some(rest) = text.strip_prefix("bool ") {
        let v: bool = rest.trim().parse().map_err(|_| perr("bad bool literal"))?;
        return Ok(push(func, ValueKind::ConstBool(v), Type::I1));
    }
    if text == "null" {
        return Ok(push(func, ValueKind::ConstNull, Type::Ptr));
    }
    if let Some(rest) = text.strip_prefix("global @") {
        let g = ctx
            .global_ids
            .get(rest.trim())
            .ok_or_else(|| perr(format!("unknown global @{rest}")))?;
        return Ok(push(func, ValueKind::GlobalAddr(*g), Type::Ptr));
    }
    if let Some(rest) = text.strip_prefix("fnaddr @") {
        let f = ctx
            .fn_ids
            .get(rest.trim())
            .ok_or_else(|| perr(format!("unknown function @{rest}")))?;
        return Ok(push(func, ValueKind::FuncAddr(*f), Type::Ptr));
    }
    Err(perr(format!("bad operand {text:?}")))
}

/// Splits a comma-separated operand list, respecting no nesting (the format
/// never nests commas inside operands except phi brackets, handled apart).
fn split_commas(text: &str) -> Vec<&str> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_terminator(
    line: &str,
    ctx: &OperandCtx<'_>,
    func: &mut Function,
) -> PResult<Option<Term>> {
    if let Some(rest) = line.strip_prefix("br ") {
        let blk = ctx
            .block_ids
            .get(rest.trim())
            .ok_or_else(|| perr(format!("unknown block {rest}")))?;
        return Ok(Some(Term::Br(*blk)));
    }
    if let Some(rest) = line.strip_prefix("condbr ") {
        let parts = split_commas(rest);
        if parts.len() != 3 {
            return Err(perr("condbr needs cond, then, else"));
        }
        let cond = parse_operand(parts[0], ctx, func)?;
        let then_blk = *ctx
            .block_ids
            .get(parts[1])
            .ok_or_else(|| perr(format!("unknown block {}", parts[1])))?;
        let else_blk = *ctx
            .block_ids
            .get(parts[2])
            .ok_or_else(|| perr(format!("unknown block {}", parts[2])))?;
        return Ok(Some(Term::CondBr {
            cond,
            then_blk,
            else_blk,
        }));
    }
    if line == "ret void" {
        return Ok(Some(Term::Ret(None)));
    }
    if let Some(rest) = line.strip_prefix("ret ") {
        let v = parse_operand(rest, ctx, func)?;
        return Ok(Some(Term::Ret(Some(v))));
    }
    Ok(None)
}

/// Parses the payload after `%name: ty =` (or a bare `store`/`call`).
fn parse_inst(payload: &str, ctx: &OperandCtx<'_>, func: &mut Function) -> PResult<(Inst, Type)> {
    let (mnemonic, rest) = match payload.split_once(' ') {
        Some((m, r)) => (m, r.trim()),
        None => (payload, ""),
    };
    if let Some(op) = BinOp::from_mnemonic(mnemonic) {
        let parts = split_commas(rest);
        if parts.len() != 2 {
            return Err(perr(format!("{mnemonic} needs two operands")));
        }
        let lhs = parse_operand(parts[0], ctx, func)?;
        let rhs = parse_operand(parts[1], ctx, func)?;
        return Ok((Inst::Bin { op, lhs, rhs }, op.result_type()));
    }
    if let Some(kind) = CastKind::from_mnemonic(mnemonic) {
        let val = parse_operand(rest, ctx, func)?;
        return Ok((Inst::Cast { kind, val }, kind.result_type()));
    }
    match mnemonic {
        "icmp" => {
            let (pred, rest) = rest
                .split_once(' ')
                .ok_or_else(|| perr("icmp needs pred"))?;
            let pred = IcmpPred::from_mnemonic(pred).ok_or_else(|| perr("bad icmp pred"))?;
            let parts = split_commas(rest);
            if parts.len() != 2 {
                return Err(perr("icmp needs two operands"));
            }
            let lhs = parse_operand(parts[0], ctx, func)?;
            let rhs = parse_operand(parts[1], ctx, func)?;
            Ok((Inst::Icmp { pred, lhs, rhs }, Type::I1))
        }
        "fcmp" => {
            let (pred, rest) = rest
                .split_once(' ')
                .ok_or_else(|| perr("fcmp needs pred"))?;
            let pred = FcmpPred::from_mnemonic(pred).ok_or_else(|| perr("bad fcmp pred"))?;
            let parts = split_commas(rest);
            if parts.len() != 2 {
                return Err(perr("fcmp needs two operands"));
            }
            let lhs = parse_operand(parts[0], ctx, func)?;
            let rhs = parse_operand(parts[1], ctx, func)?;
            Ok((Inst::Fcmp { pred, lhs, rhs }, Type::I1))
        }
        "select" => {
            let parts = split_commas(rest);
            if parts.len() != 3 {
                return Err(perr("select needs three operands"));
            }
            let cond = parse_operand(parts[0], ctx, func)?;
            let then_val = parse_operand(parts[1], ctx, func)?;
            let else_val = parse_operand(parts[2], ctx, func)?;
            let ty = func.value_type(then_val);
            Ok((
                Inst::Select {
                    cond,
                    then_val,
                    else_val,
                },
                ty,
            ))
        }
        "load" => {
            let (ty, rest) = rest
                .split_once(',')
                .ok_or_else(|| perr("load needs type"))?;
            let ty = Type::from_text(ty.trim()).ok_or_else(|| perr("bad load type"))?;
            let addr = parse_operand(rest, ctx, func)?;
            Ok((Inst::Load { ty, addr }, ty))
        }
        "store" => {
            let parts = split_commas(rest);
            if parts.len() != 2 {
                return Err(perr("store needs value, addr"));
            }
            let val = parse_operand(parts[0], ctx, func)?;
            let addr = parse_operand(parts[1], ctx, func)?;
            Ok((Inst::Store { val, addr }, Type::Void))
        }
        "gep" => {
            // base, index, scale S, offset O
            let parts = split_commas(rest);
            if parts.len() != 4 {
                return Err(perr("gep needs base, index, scale, offset"));
            }
            let base = parse_operand(parts[0], ctx, func)?;
            let index = parse_operand(parts[1], ctx, func)?;
            let scale: i64 = parts[2]
                .strip_prefix("scale")
                .ok_or_else(|| perr("missing scale"))?
                .trim()
                .parse()
                .map_err(|_| perr("bad scale"))?;
            let offset: i64 = parts[3]
                .strip_prefix("offset")
                .ok_or_else(|| perr("missing offset"))?
                .trim()
                .parse()
                .map_err(|_| perr("bad offset"))?;
            Ok((
                Inst::Gep {
                    base,
                    index,
                    scale,
                    offset,
                },
                Type::Ptr,
            ))
        }
        "alloca" => {
            let words: u32 = rest.trim().parse().map_err(|_| perr("bad alloca size"))?;
            Ok((Inst::Alloca { words }, Type::Ptr))
        }
        "call" => {
            let open = rest.find('(').ok_or_else(|| perr("call needs ("))?;
            let close = rest.rfind(')').ok_or_else(|| perr("call needs )"))?;
            let target = rest[..open].trim();
            let args_text = &rest[open + 1..close];
            let ret_text = rest[close + 1..]
                .trim()
                .strip_prefix("->")
                .ok_or_else(|| perr("call needs -> ty"))?
                .trim();
            let ret = Type::from_text(ret_text).ok_or_else(|| perr("bad call return type"))?;
            let mut args = Vec::new();
            for a in split_commas(args_text) {
                args.push(parse_operand(a, ctx, func)?);
            }
            let callee = if let Some(bname) = target.strip_prefix("@!") {
                let b = Builtin::from_name(bname).ok_or_else(|| perr("unknown builtin"))?;
                Callee::Builtin(b)
            } else if let Some(fname) = target.strip_prefix('@') {
                let fid = ctx
                    .fn_ids
                    .get(fname)
                    .ok_or_else(|| perr(format!("unknown function @{fname}")))?;
                let (_, sig_ret) = &ctx.fn_sigs[fname];
                if *sig_ret != ret {
                    return Err(perr("call return type does not match signature"));
                }
                Callee::Func(*fid)
            } else {
                return Err(perr("bad call target"));
            };
            Ok((Inst::Call { callee, args }, ret))
        }
        "phi" => {
            let (ty, rest) = rest.split_once(' ').ok_or_else(|| perr("phi needs type"))?;
            let ty = Type::from_text(ty.trim()).ok_or_else(|| perr("bad phi type"))?;
            let mut incomings = Vec::new();
            let mut cursor = rest.trim();
            while !cursor.is_empty() {
                let open = cursor
                    .find('[')
                    .ok_or_else(|| perr("phi needs [blk: val]"))?;
                let close = cursor[open..]
                    .find(']')
                    .ok_or_else(|| perr("unclosed phi incoming"))?
                    + open;
                let item = &cursor[open + 1..close];
                let (blk, val) = item
                    .split_once(':')
                    .ok_or_else(|| perr("bad phi incoming"))?;
                let blk = *ctx
                    .block_ids
                    .get(blk.trim())
                    .ok_or_else(|| perr(format!("unknown block {}", blk.trim())))?;
                let val = parse_operand(val, ctx, func)?;
                incomings.push((blk, val));
                cursor = cursor[close + 1..].trim_start_matches(',').trim();
            }
            Ok((Inst::Phi { ty, incomings }, ty))
        }
        other => Err(perr(format!("unknown instruction {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const LOOP_TEXT: &str = r#"
module "demo"

global @tab = words(3) init [5, 6, 7]

fn @main() -> i64 {
entry:
  br header
header:
  %i: i64 = phi i64 [ entry: i64 0 ], [ body: %i2 ]
  %s: i64 = phi i64 [ entry: i64 0 ], [ body: %s2 ]
  %c: i1 = icmp slt %i, i64 3
  condbr %c, body, exit
body:
  %a: ptr = gep global @tab, %i, scale 8, offset 0
  %x: i64 = load i64, %a
  %s2: i64 = add %s, %x
  %i2: i64 = add %i, i64 1
  br header
exit:
  ret %s
}
"#;

    #[test]
    fn parses_and_verifies_a_loop() {
        let m = parse_module(LOOP_TEXT).unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.globals.len(), 1);
        let f = m.function(m.entry().unwrap());
        assert_eq!(f.blocks.len(), 4);
    }

    #[test]
    fn print_parse_fixpoint() {
        let m1 = parse_module(LOOP_TEXT).unwrap();
        let t1 = print_module(&m1);
        let m2 = parse_module(&t1).unwrap();
        let t2 = print_module(&m2);
        assert_eq!(t1, t2, "printer/parser must reach a fixpoint");
    }

    #[test]
    fn reports_line_numbers() {
        let bad = "module \"m\"\nfn @main() -> i64 {\nentry:\n  %x: i64 = bogus 1\n  ret %x\n}\n";
        match parse_module(bad) {
            Err(IrError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_value() {
        let bad = "module \"m\"\nfn @main() -> i64 {\nentry:\n  ret %nope\n}\n";
        assert!(parse_module(bad).is_err());
    }

    #[test]
    fn rejects_call_ret_mismatch() {
        let bad = r#"
module "m"
fn @f() -> i64 {
entry:
  ret i64 0
}
fn @main() -> i64 {
entry:
  %x: f64 = call @f () -> f64
  %y: i64 = fptosi %x
  ret %y
}
"#;
        assert!(parse_module(bad).is_err());
    }

    #[test]
    fn parses_calls_builtins_and_void() {
        let text = r#"
module "m"
fn @helper(%v0: i64) -> void {
entry:
  call @!print_i64 (%v0) -> void
  ret void
}
fn @main() -> i64 {
entry:
  %p: ptr = call @!malloc (i64 64) -> ptr
  store i64 7, %p
  call @helper (i64 3) -> void
  %x: i64 = load i64, %p
  call @!free (%p) -> void
  ret %x
}
"#;
        let m = parse_module(text).unwrap();
        let t1 = print_module(&m);
        let m2 = parse_module(&t1).unwrap();
        assert_eq!(t1, print_module(&m2));
    }
}
