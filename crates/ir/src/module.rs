//! Modules and globals.

use crate::function::Function;
use crate::{IrError, Result};
use std::collections::HashMap;
use std::fmt;

/// Dense index of a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Returns the arena index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Dense index of a global within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// Returns the arena index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A module-level global: a named, statically allocated array of 8-byte
/// words.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name (unique within the module).
    pub name: String,
    /// Size in 8-byte words.
    pub words: u64,
    /// Initial contents (raw bit patterns). Shorter than `words` means the
    /// remainder is zeroed; must not be longer.
    pub init: Vec<u64>,
}

impl Global {
    /// A zero-initialized global of `words` 8-byte words.
    #[must_use]
    pub fn zeroed(name: impl Into<String>, words: u64) -> Global {
        Global {
            name: name.into(),
            words,
            init: Vec::new(),
        }
    }

    /// A global initialized from `i64` values.
    #[must_use]
    pub fn from_i64(name: impl Into<String>, values: &[i64]) -> Global {
        Global {
            name: name.into(),
            words: values.len() as u64,
            init: values.iter().map(|v| *v as u64).collect(),
        }
    }

    /// A global initialized from `f64` values (stored as raw bits).
    #[must_use]
    pub fn from_f64(name: impl Into<String>, values: &[f64]) -> Global {
        Global {
            name: name.into(),
            words: values.len() as u64,
            init: values.iter().map(|v| v.to_bits()).collect(),
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.words * 8
    }
}

/// A compilation unit: functions plus globals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module name (informational).
    pub name: String,
    /// Function arena; index = [`FuncId`].
    pub functions: Vec<Function>,
    /// Global arena; index = [`GlobalId`].
    pub globals: Vec<Global>,
    fn_names: HashMap<String, FuncId>,
    global_names: HashMap<String, GlobalId>,
}

impl Module {
    /// Creates an empty module.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Adds a function, returning its id.
    ///
    /// # Panics
    /// Panics if a function with the same name already exists; function
    /// names are the module's symbol table.
    pub fn add_function(&mut self, func: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        assert!(
            !self.fn_names.contains_key(&func.name),
            "duplicate function name {:?}",
            func.name
        );
        self.fn_names.insert(func.name.clone(), id);
        self.functions.push(func);
        id
    }

    /// Adds a global, returning its id.
    ///
    /// # Panics
    /// Panics if a global with the same name already exists.
    pub fn add_global(&mut self, global: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        assert!(
            !self.global_names.contains_key(&global.name),
            "duplicate global name {:?}",
            global.name
        );
        self.global_names.insert(global.name.clone(), id);
        self.globals.push(global);
        id
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.fn_names.get(name).copied()
    }

    /// Looks up a global by name.
    #[must_use]
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_names.get(name).copied()
    }

    /// Returns the function for an id.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Returns the global for an id.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// The conventional program entry point, a function named `main`.
    ///
    /// # Errors
    /// Returns [`IrError::Invalid`] if no `main` exists.
    pub fn entry(&self) -> Result<FuncId> {
        self.function_by_name("main")
            .ok_or_else(|| IrError::Invalid("module has no `main` function".to_string()))
    }

    /// Iterator over `(FuncId, &Function)`.
    pub fn iter_functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total static instruction count across all functions (diagnostics).
    #[must_use]
    pub fn static_inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn function_symbol_table() {
        let mut m = Module::new("m");
        let id = m.add_function(Function::new("main", &[], Type::I64));
        assert_eq!(m.function_by_name("main"), Some(id));
        assert_eq!(m.entry().unwrap(), id);
        assert!(m.function_by_name("other").is_none());
    }

    #[test]
    fn entry_requires_main() {
        let m = Module::new("m");
        assert!(m.entry().is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_function_panics() {
        let mut m = Module::new("m");
        m.add_function(Function::new("f", &[], Type::Void));
        m.add_function(Function::new("f", &[], Type::Void));
    }

    #[test]
    fn global_constructors() {
        let g = Global::zeroed("buf", 16);
        assert_eq!(g.size_bytes(), 128);
        assert!(g.init.is_empty());
        let g = Global::from_i64("tab", &[1, -2, 3]);
        assert_eq!(g.words, 3);
        assert_eq!(g.init[1], -2i64 as u64);
        let g = Global::from_f64("ftab", &[1.5]);
        assert_eq!(g.init[0], 1.5f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "duplicate global name")]
    fn duplicate_global_panics() {
        let mut m = Module::new("m");
        m.add_global(Global::zeroed("g", 1));
        m.add_global(Global::zeroed("g", 2));
    }
}
