//! SSA values.
//!
//! Every value in a function — parameters, constants, and instruction
//! results — is identified by a dense [`ValueId`] indexing the function's
//! value arena. Constants are function-local (not interned across
//! functions), which keeps functions self-contained and serializable.

use crate::function::InstId;
use crate::module::{FuncId, GlobalId};
use std::fmt;

/// Dense index of an SSA value within a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// Returns the arena index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%v{}", self.0)
    }
}

/// What a [`ValueId`] denotes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueKind {
    /// The `index`-th formal parameter of the enclosing function.
    Param(u32),
    /// A 64-bit signed integer constant.
    ConstInt(i64),
    /// A 64-bit float constant.
    ConstFloat(f64),
    /// A boolean constant.
    ConstBool(bool),
    /// The null pointer.
    ConstNull,
    /// The address of a module global.
    GlobalAddr(GlobalId),
    /// The address of a function (for indirect-call-free code this is used
    /// only as an opaque token value).
    FuncAddr(FuncId),
    /// The result of the given instruction.
    Inst(InstId),
}

impl ValueKind {
    /// Returns `true` if the value is a compile-time constant (including
    /// global/function addresses, which are link-time constants).
    #[must_use]
    pub fn is_const(&self) -> bool {
        !matches!(self, ValueKind::Param(_) | ValueKind::Inst(_))
    }

    /// Returns the defining instruction, if this value is an instruction
    /// result.
    #[must_use]
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            ValueKind::Inst(id) => Some(*id),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_classification() {
        assert!(ValueKind::ConstInt(3).is_const());
        assert!(ValueKind::ConstFloat(1.5).is_const());
        assert!(ValueKind::ConstNull.is_const());
        assert!(ValueKind::GlobalAddr(GlobalId(0)).is_const());
        assert!(!ValueKind::Param(0).is_const());
        assert!(!ValueKind::Inst(InstId(0)).is_const());
    }

    #[test]
    fn as_inst_extracts_defining_instruction() {
        assert_eq!(ValueKind::Inst(InstId(7)).as_inst(), Some(InstId(7)));
        assert_eq!(ValueKind::ConstInt(0).as_inst(), None);
    }

    #[test]
    fn value_id_display() {
        assert_eq!(ValueId(12).to_string(), "%v12");
    }
}
