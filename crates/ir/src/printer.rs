//! Textual IR output.
//!
//! The format round-trips through [`crate::parser`]. Every instruction
//! prints its result type explicitly (`%v5: i64 = add ...`) so the parser
//! can resolve forward references (phis) in two passes. Constants are
//! printed inline as typed literals.

use crate::function::{BlockId, Function};
use crate::inst::{Callee, Inst, Term};
use crate::module::Module;
use crate::types::Type;
use crate::value::{ValueId, ValueKind};
use std::fmt::Write;

/// Returns the label used for a block (its name, or `bN`).
#[must_use]
pub fn block_label(func: &Function, id: BlockId) -> String {
    match &func.block(id).name {
        Some(n) => n.clone(),
        None => format!("b{}", id.0),
    }
}

fn fmt_operand(func: &Function, module: Option<&Module>, v: ValueId) -> String {
    match func.value(v) {
        ValueKind::ConstInt(i) => format!("i64 {i}"),
        ValueKind::ConstFloat(x) => {
            // `{:?}` keeps a decimal point / exponent so the parser can
            // distinguish float literals.
            format!("f64 {x:?}")
        }
        ValueKind::ConstBool(b) => format!("bool {b}"),
        ValueKind::ConstNull => "null".to_string(),
        ValueKind::GlobalAddr(g) => match module {
            Some(m) => format!("global @{}", m.global(*g).name),
            None => format!("global #{}", g.0),
        },
        ValueKind::FuncAddr(f) => match module {
            Some(m) => format!("fnaddr @{}", m.function(*f).name),
            None => format!("fnaddr #{}", f.0),
        },
        ValueKind::Param(_) | ValueKind::Inst(_) => v.to_string(),
    }
}

/// Prints a function to a string.
#[must_use]
pub fn print_function(func: &Function, module: Option<&Module>) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, ty)| format!("%v{i}: {ty}"))
        .collect();
    let _ = writeln!(
        out,
        "fn @{}({}) -> {} {{",
        func.name,
        params.join(", "),
        func.ret
    );
    for bid in func.block_ids() {
        let _ = writeln!(out, "{}:", block_label(func, bid));
        let block = func.block(bid);
        for &iid in &block.insts {
            let data = func.inst(iid);
            let op = |v: ValueId| fmt_operand(func, module, v);
            let line = match &data.inst {
                Inst::Bin { op: o, lhs, rhs } => {
                    format!(
                        "{}: {} = {} {}, {}",
                        data.result,
                        data.ty,
                        o,
                        op(*lhs),
                        op(*rhs)
                    )
                }
                Inst::Icmp { pred, lhs, rhs } => format!(
                    "{}: {} = icmp {} {}, {}",
                    data.result,
                    data.ty,
                    pred,
                    op(*lhs),
                    op(*rhs)
                ),
                Inst::Fcmp { pred, lhs, rhs } => format!(
                    "{}: {} = fcmp {} {}, {}",
                    data.result,
                    data.ty,
                    pred,
                    op(*lhs),
                    op(*rhs)
                ),
                Inst::Select {
                    cond,
                    then_val,
                    else_val,
                } => format!(
                    "{}: {} = select {}, {}, {}",
                    data.result,
                    data.ty,
                    op(*cond),
                    op(*then_val),
                    op(*else_val)
                ),
                Inst::Cast { kind, val } => {
                    format!("{}: {} = {} {}", data.result, data.ty, kind, op(*val))
                }
                Inst::Load { ty, addr } => {
                    format!("{}: {} = load {}, {}", data.result, data.ty, ty, op(*addr))
                }
                Inst::Store { val, addr } => format!("store {}, {}", op(*val), op(*addr)),
                Inst::Gep {
                    base,
                    index,
                    scale,
                    offset,
                } => format!(
                    "{}: {} = gep {}, {}, scale {}, offset {}",
                    data.result,
                    data.ty,
                    op(*base),
                    op(*index),
                    scale,
                    offset
                ),
                Inst::Alloca { words } => {
                    format!("{}: {} = alloca {}", data.result, data.ty, words)
                }
                Inst::Call { callee, args } => {
                    let args: Vec<String> = args.iter().map(|a| op(*a)).collect();
                    let target = match (callee, module) {
                        (Callee::Func(fid), Some(m)) => format!("@{}", m.function(*fid).name),
                        (Callee::Func(fid), None) => format!("@#{}", fid.0),
                        (Callee::Builtin(b), _) => format!("@!{b}"),
                    };
                    if data.ty == Type::Void {
                        format!("call {} ({}) -> void", target, args.join(", "))
                    } else {
                        format!(
                            "{}: {} = call {} ({}) -> {}",
                            data.result,
                            data.ty,
                            target,
                            args.join(", "),
                            data.ty
                        )
                    }
                }
                Inst::Phi { ty, incomings } => {
                    let inc: Vec<String> = incomings
                        .iter()
                        .map(|(b, v)| format!("[ {}: {} ]", block_label(func, *b), op(*v)))
                        .collect();
                    format!(
                        "{}: {} = phi {} {}",
                        data.result,
                        data.ty,
                        ty,
                        inc.join(", ")
                    )
                }
            };
            let _ = writeln!(out, "  {line}");
        }
        let term = match &block.term {
            Term::Br(t) => format!("br {}", block_label(func, *t)),
            Term::CondBr {
                cond,
                then_blk,
                else_blk,
            } => format!(
                "condbr {}, {}, {}",
                fmt_operand(func, module, *cond),
                block_label(func, *then_blk),
                block_label(func, *else_blk)
            ),
            Term::Ret(None) => "ret void".to_string(),
            Term::Ret(Some(v)) => format!("ret {}", fmt_operand(func, module, *v)),
        };
        let _ = writeln!(out, "  {term}");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Prints a whole module to a string.
#[must_use]
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", module.name);
    let _ = writeln!(out);
    for g in &module.globals {
        if g.init.is_empty() {
            let _ = writeln!(out, "global @{} = words({})", g.name, g.words);
        } else {
            let vals: Vec<String> = g.init.iter().map(|w| w.to_string()).collect();
            let _ = writeln!(
                out,
                "global @{} = words({}) init [{}]",
                g.name,
                g.words,
                vals.join(", ")
            );
        }
    }
    if !module.globals.is_empty() {
        let _ = writeln!(out);
    }
    for (_, f) in module.iter_functions() {
        out.push_str(&print_function(f, Some(module)));
        let _ = writeln!(out);
    }
    out
}

impl std::fmt::Display for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&print_module(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Builtin, IcmpPred};
    use crate::Global;

    #[test]
    fn prints_a_loop() {
        let mut m = Module::new("demo");
        let g = m.add_global(Global::from_i64("tab", &[5, 6, 7]));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(3);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let base = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let s = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let addr = fb.gep(base, i, 8, 0);
        let x = fb.load(Type::I64, addr);
        let s2 = fb.add(s, x);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(s, BlockId::ENTRY, zero);
        fb.add_phi_incoming(s, body, s2);
        fb.br(header);
        fb.switch_to(exit);
        let xf = fb.sitofp(s);
        let r = fb.call_builtin(Builtin::Sqrt, &[xf]);
        let ri = fb.fptosi(r);
        fb.ret(Some(ri));
        m.add_function(fb.finish().unwrap());

        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("global @tab = words(3) init [5, 6, 7]"));
        assert!(text.contains("phi i64"));
        assert!(text.contains("call @!sqrt"));
        assert!(text.contains("condbr"));
    }
}
