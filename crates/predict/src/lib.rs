//! # lp-predict — value predictors for register LCDs
//!
//! Loopapalooza's `dep2` configuration accelerates non-computable register
//! LCDs with run-time value prediction (paper §III-C). Four predictor
//! types are supported, matching the paper:
//!
//! 1. [`LastValue`] — predicts the previous value;
//! 2. [`Stride`] — previous value plus the last observed delta;
//! 3. [`TwoDeltaStride`] — stride updated only after the same delta is
//!    seen twice in a row (classic 2-delta filtering of noisy strides);
//! 4. [`Fcm`] — a Finite Context Method predictor (Sazeides & Smith): a
//!    hash of the last `ORDER` values indexes a table of next values.
//!
//! [`HybridPredictor`] combines them with *perfect hybridization*: a value
//! counts as predicted if **any** component predicts it — exactly the
//! idealization the paper adopts for its limit study. A
//! [`ConfidenceHybrid`] with saturating per-component confidence counters
//! is provided for the realism ablation.
//!
//! Values are 64-bit fingerprints (`lp_interp::Value::fingerprint`-style:
//! integers as themselves, floats as IEEE bits).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Pass-through hasher for the FCM table: its keys are already-mixed
/// context hashes, so the map has nothing left to do. Rehashing a
/// 64-bit hash through SipHash costs more than the table probe itself.
#[derive(Debug, Default, Clone)]
struct Prehashed {
    hash: u64,
}

impl Hasher for Prehashed {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("FCM table keys are u64 hashes");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = n;
    }
}

type PrehashedMap = HashMap<u64, u64, BuildHasherDefault<Prehashed>>;

/// A single-stream value predictor.
///
/// Call order per observation: [`Predictor::predict`], compare against the
/// actual value, then [`Predictor::update`] with the actual value.
pub trait Predictor {
    /// Predicted next value, or `None` while warming up.
    fn predict(&self) -> Option<u64>;

    /// Feeds the actually produced value.
    fn update(&mut self, actual: u64);

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Predicts the previously seen value.
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<u64>,
}

impl LastValue {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> LastValue {
        LastValue::default()
    }
}

impl Predictor for LastValue {
    fn predict(&self) -> Option<u64> {
        self.last
    }

    fn update(&mut self, actual: u64) {
        self.last = Some(actual);
    }

    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Predicts `last + stride`, where the stride is the delta between the two
/// most recent values.
#[derive(Debug, Clone, Default)]
pub struct Stride {
    last: Option<u64>,
    stride: Option<u64>,
}

impl Stride {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> Stride {
        Stride::default()
    }
}

impl Predictor for Stride {
    fn predict(&self) -> Option<u64> {
        Some(self.last?.wrapping_add(self.stride?))
    }

    fn update(&mut self, actual: u64) {
        if let Some(last) = self.last {
            self.stride = Some(actual.wrapping_sub(last));
        }
        self.last = Some(actual);
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

/// A stride predictor whose stride is only replaced after the *same* new
/// delta has been observed twice consecutively, filtering one-off jumps.
#[derive(Debug, Clone, Default)]
pub struct TwoDeltaStride {
    last: Option<u64>,
    stride: Option<u64>,
    candidate: Option<u64>,
}

impl TwoDeltaStride {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> TwoDeltaStride {
        TwoDeltaStride::default()
    }
}

impl Predictor for TwoDeltaStride {
    fn predict(&self) -> Option<u64> {
        Some(self.last?.wrapping_add(self.stride?))
    }

    fn update(&mut self, actual: u64) {
        if let Some(last) = self.last {
            let delta = actual.wrapping_sub(last);
            if self.stride.is_none() {
                self.stride = Some(delta);
            } else if self.stride != Some(delta) {
                if self.candidate == Some(delta) {
                    self.stride = Some(delta);
                    self.candidate = None;
                } else {
                    self.candidate = Some(delta);
                }
            } else {
                self.candidate = None;
            }
        }
        self.last = Some(actual);
    }

    fn name(&self) -> &'static str {
        "2-delta-stride"
    }
}

/// Finite Context Method predictor of the given order: the hash of the
/// last `order` values selects the predicted next value from a table.
#[derive(Debug, Clone)]
pub struct Fcm {
    order: usize,
    /// Ring buffer of the last `order` values in *mixed* form (oldest at
    /// `head`). Only the mixed form is ever read: the rolling context
    /// hash needs the outgoing term, never the raw value.
    history: Vec<u64>,
    head: usize,
    table: PrehashedMap,
    warm: usize,
    /// Rolling polynomial hash of `history`, slid in O(1) per observation
    /// so `predict` + `update` share one computation and the hash cost is
    /// independent of the order.
    ctx: u64,
    /// `FCM_BASE^(order - 1)`: the weight of the oldest term, subtracted
    /// out when the window slides.
    drop_pow: u64,
}

/// Default FCM context length used by [`Fcm::new`] and the hybrid.
pub const DEFAULT_FCM_ORDER: usize = 3;

/// Base of the rolling polynomial context hash (odd, so multiplying by it
/// is a bijection on `u64`).
const FCM_BASE: u64 = 0x9E37_79B9_7F4A_7C15;

/// One splitmix64 finalization round. Induction values and trip counts
/// are small integers; mixing each value before it enters the polynomial
/// spreads contexts across the full 64-bit key space so the pass-through
/// hashed table buckets stay uniform.
#[inline]
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Fcm {
    /// An FCM predictor with the default order.
    #[must_use]
    pub fn new() -> Fcm {
        Fcm::with_order(DEFAULT_FCM_ORDER)
    }

    /// An FCM predictor with an explicit context length.
    ///
    /// # Panics
    /// Panics if `order` is zero.
    #[must_use]
    pub fn with_order(order: usize) -> Fcm {
        assert!(order > 0, "FCM order must be positive");
        Fcm {
            order,
            history: Vec::with_capacity(order),
            head: 0,
            table: PrehashedMap::default(),
            warm: 0,
            ctx: 0,
            drop_pow: FCM_BASE.wrapping_pow(order as u32 - 1),
        }
    }

    /// Slides the context window over `actual`, rolling `ctx` in O(1):
    /// `ctx' = (ctx - oldest·BASE^(order-1))·BASE + mix(actual)`.
    #[inline]
    fn push_value(&mut self, actual: u64) {
        let m = mix(actual);
        if self.history.len() < self.order {
            self.history.push(m);
            self.ctx = self.ctx.wrapping_mul(FCM_BASE).wrapping_add(m);
        } else {
            let old = std::mem::replace(&mut self.history[self.head], m);
            self.head += 1;
            if self.head == self.order {
                self.head = 0;
            }
            self.ctx = self
                .ctx
                .wrapping_sub(old.wrapping_mul(self.drop_pow))
                .wrapping_mul(FCM_BASE)
                .wrapping_add(m);
        }
        self.warm += 1;
    }

    /// Fused predict-then-update: returns what [`Predictor::predict`]
    /// would have, trains on `actual`, and touches the context table once
    /// instead of twice. Exactly equivalent to `predict()` + `update()`.
    fn observe_value(&mut self, actual: u64) -> Option<u64> {
        let predicted = if self.warm >= self.order {
            match self.table.entry(self.ctx) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    Some(std::mem::replace(e.get_mut(), actual))
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(actual);
                    None
                }
            }
        } else {
            None
        };
        self.push_value(actual);
        predicted
    }
}

impl Default for Fcm {
    fn default() -> Fcm {
        Fcm::new()
    }
}

impl Predictor for Fcm {
    fn predict(&self) -> Option<u64> {
        if self.warm < self.order {
            return None;
        }
        self.table.get(&self.ctx).copied()
    }

    fn update(&mut self, actual: u64) {
        if self.warm >= self.order {
            self.table.insert(self.ctx, actual);
        }
        self.push_value(actual);
    }

    fn name(&self) -> &'static str {
        "fcm"
    }
}

/// Accuracy statistics for a predictor stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Number of observed values.
    pub observed: u64,
    /// Number of correct predictions.
    pub correct: u64,
}

impl PredictorStats {
    /// Fraction of observations predicted correctly (0 when empty).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.correct as f64 / self.observed as f64
        }
    }
}

/// The paper's hybrid: last-value + stride + 2-delta stride + FCM with
/// perfect hybridization (correct if any component is correct).
///
/// ```
/// use lp_predict::HybridPredictor;
///
/// let mut hybrid = HybridPredictor::new();
/// let mut hits = 0;
/// for v in (0..100u64).map(|i| 10 + 3 * i) {
///     if hybrid.observe(v) {
///         hits += 1;
///     }
/// }
/// assert!(hits >= 98, "an affine stream is stride-predictable: {hits}");
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    last_value: LastValue,
    stride: Stride,
    two_delta: TwoDeltaStride,
    fcm: Fcm,
    stats: PredictorStats,
    /// Per-component correct counts; every component observes every
    /// value, so the observed counts are all `stats.observed` and are
    /// materialized on demand instead of incremented four extra times
    /// per observation on the hot path.
    component_correct: [u64; 4],
}

impl HybridPredictor {
    /// Creates the four-component hybrid.
    #[must_use]
    pub fn new() -> HybridPredictor {
        HybridPredictor {
            last_value: LastValue::new(),
            stride: Stride::new(),
            two_delta: TwoDeltaStride::new(),
            fcm: Fcm::new(),
            stats: PredictorStats::default(),
            component_correct: [0; 4],
        }
    }

    /// Observes one value: returns `true` if any component had predicted
    /// it, then trains all components.
    pub fn observe(&mut self, actual: u64) -> bool {
        let predictions = [
            self.last_value.predict(),
            self.stride.predict(),
            self.two_delta.predict(),
            self.fcm.observe_value(actual),
        ];
        let mut any = false;
        for (i, p) in predictions.iter().enumerate() {
            if *p == Some(actual) {
                self.component_correct[i] += 1;
                any = true;
            }
        }
        self.last_value.update(actual);
        self.stride.update(actual);
        self.two_delta.update(actual);
        self.stats.observed += 1;
        if any {
            self.stats.correct += 1;
        }
        any
    }

    /// Hybrid accuracy statistics.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Per-component statistics in `[last-value, stride, 2-delta, fcm]`
    /// order.
    #[must_use]
    pub fn component_stats(&self) -> [PredictorStats; 4] {
        self.component_correct.map(|correct| PredictorStats {
            observed: self.stats.observed,
            correct,
        })
    }
}

impl Default for HybridPredictor {
    fn default() -> HybridPredictor {
        HybridPredictor::new()
    }
}

/// A realistic hybrid: each component carries a saturating confidence
/// counter; the prediction is the highest-confidence component's, and only
/// that single prediction is compared (no oracle selection). Used by the
/// `dep2` realism ablation bench.
#[derive(Debug, Clone)]
pub struct ConfidenceHybrid {
    last_value: LastValue,
    stride: Stride,
    two_delta: TwoDeltaStride,
    fcm: Fcm,
    confidence: [i32; 4],
    stats: PredictorStats,
    max_confidence: i32,
}

impl ConfidenceHybrid {
    /// Creates the confidence-selected hybrid with 3-bit counters.
    #[must_use]
    pub fn new() -> ConfidenceHybrid {
        ConfidenceHybrid {
            last_value: LastValue::new(),
            stride: Stride::new(),
            two_delta: TwoDeltaStride::new(),
            fcm: Fcm::new(),
            confidence: [0; 4],
            stats: PredictorStats::default(),
            max_confidence: 7,
        }
    }

    /// Observes one value; returns `true` if the *selected* component had
    /// predicted it.
    pub fn observe(&mut self, actual: u64) -> bool {
        let predictions = [
            self.last_value.predict(),
            self.stride.predict(),
            self.two_delta.predict(),
            self.fcm.observe_value(actual),
        ];
        // Select the available component with the highest confidence.
        let selected = predictions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .max_by_key(|(i, _)| (self.confidence[*i], usize::MAX - *i))
            .map(|(i, _)| i);
        let hit = selected.is_some_and(|i| predictions[i] == Some(actual));
        for (i, p) in predictions.iter().enumerate() {
            if let Some(p) = p {
                if *p == actual {
                    self.confidence[i] = (self.confidence[i] + 1).min(self.max_confidence);
                } else {
                    self.confidence[i] = (self.confidence[i] - 1).max(0);
                }
            }
        }
        self.last_value.update(actual);
        self.stride.update(actual);
        self.two_delta.update(actual);
        self.stats.observed += 1;
        if hit {
            self.stats.correct += 1;
        }
        hit
    }

    /// Accuracy statistics of the selected stream.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

impl Default for ConfidenceHybrid {
    fn default() -> ConfidenceHybrid {
        ConfidenceHybrid::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy_on<P: Predictor>(mut p: P, seq: &[u64]) -> (u64, u64) {
        let mut correct = 0;
        let mut total = 0;
        for &v in seq {
            total += 1;
            if p.predict() == Some(v) {
                correct += 1;
            }
            p.update(v);
        }
        (correct, total)
    }

    #[test]
    fn last_value_on_constant_stream() {
        let seq = vec![42u64; 10];
        let (correct, total) = accuracy_on(LastValue::new(), &seq);
        assert_eq!((correct, total), (9, 10)); // all but the first
    }

    #[test]
    fn stride_on_arithmetic_stream() {
        let seq: Vec<u64> = (0..20).map(|i| 100 + 7 * i).collect();
        let (correct, _) = accuracy_on(Stride::new(), &seq);
        assert_eq!(correct, 18); // misses the first two (warm-up)
    }

    #[test]
    fn stride_handles_negative_deltas_via_wrapping() {
        let seq: Vec<u64> = (0..10).map(|i| (1000 - 13 * i) as u64).collect();
        let (correct, _) = accuracy_on(Stride::new(), &seq);
        assert_eq!(correct, 8);
    }

    #[test]
    fn two_delta_resists_one_off_jump() {
        // Arithmetic with a single glitch: plain stride mispredicts twice
        // (after the glitch it chases the bogus delta), 2-delta only once.
        let mut seq: Vec<u64> = (0..20).map(|i| 10 * i).collect();
        seq[10] = 5; // glitch
        let (plain, _) = accuracy_on(Stride::new(), &seq);
        let (two_delta, _) = accuracy_on(TwoDeltaStride::new(), &seq);
        assert!(
            two_delta > plain,
            "2-delta ({two_delta}) should beat stride ({plain}) on glitchy streams"
        );
    }

    #[test]
    fn fcm_learns_repeating_pattern() {
        // Period-4 pattern; FCM with order 3 nails it after one period,
        // stride never does.
        let pattern = [3u64, 1, 4, 1];
        let seq: Vec<u64> = (0..40).map(|i| pattern[i % 4]).collect();
        let (fcm, _) = accuracy_on(Fcm::new(), &seq);
        let (stride, _) = accuracy_on(Stride::new(), &seq);
        assert!(fcm >= 32, "FCM should learn the period: {fcm}");
        assert!(fcm > stride);
    }

    #[test]
    fn fcm_order_validation() {
        let f = Fcm::with_order(1);
        assert_eq!(f.predict(), None);
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn fcm_zero_order_panics() {
        let _ = Fcm::with_order(0);
    }

    #[test]
    fn hybrid_is_at_least_as_good_as_each_component() {
        let pattern = [3u64, 1, 4, 1, 5, 9];
        let seq: Vec<u64> = (0..60)
            .map(|i| {
                if i % 10 == 0 {
                    77
                } else {
                    pattern[i % 6] + i as u64
                }
            })
            .collect();
        let mut hybrid = HybridPredictor::new();
        for &v in &seq {
            hybrid.observe(v);
        }
        let hs = hybrid.stats();
        assert_eq!(hs.observed, 60);
        for cs in hybrid.component_stats() {
            assert!(
                hs.correct >= cs.correct,
                "perfect hybridization dominates components"
            );
        }
    }

    #[test]
    fn hybrid_perfect_on_constant() {
        let mut hybrid = HybridPredictor::new();
        let mut hits = 0;
        for _ in 0..10 {
            if hybrid.observe(5) {
                hits += 1;
            }
        }
        assert_eq!(hits, 9);
        assert!((hybrid.stats().accuracy() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn confidence_hybrid_no_worse_than_chance_on_stride_stream() {
        let seq: Vec<u64> = (0..100).map(|i| 3 * i).collect();
        let mut ch = ConfidenceHybrid::new();
        let mut hits = 0;
        for &v in &seq {
            if ch.observe(v) {
                hits += 1;
            }
        }
        assert!(
            hits >= 90,
            "confidence hybrid should lock onto stride: {hits}"
        );
        // And it can never beat the perfect hybrid.
        let mut ph = HybridPredictor::new();
        let mut phits = 0;
        for &v in &seq {
            if ph.observe(v) {
                phits += 1;
            }
        }
        assert!(phits >= hits);
    }

    #[test]
    fn stats_accuracy_empty_is_zero() {
        assert_eq!(PredictorStats::default().accuracy(), 0.0);
    }

    #[test]
    fn random_stream_defeats_everything() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let seq: Vec<u64> = (0..500).map(|_| rng.gen()).collect();
        let mut hybrid = HybridPredictor::new();
        let mut hits = 0u64;
        for &v in &seq {
            if hybrid.observe(v) {
                hits += 1;
            }
        }
        assert!(hits < 10, "random 64-bit values are unpredictable: {hits}");
    }
}
