//! Page-boundary behavior of the paged memory: accesses that land on the
//! last/first words of adjacent pages, unaligned addresses that would
//! straddle a boundary, far-region pages behind the fallback map, and
//! the direct-mapped page cache's hit/miss accounting on cross-page
//! access patterns.
//!
//! The geometry constants mirror `memory.rs` (512-word / 4096-byte
//! pages, an 8-way direct-mapped cache indexed by `page % 8`); the
//! assertions on cache counters pin that layout on purpose — they are
//! the contract DESIGN.md §10 documents.

use lp_interp::{InterpError, Memory, GLOBAL_BASE, HEAP_BASE, STACK_BASE};

const PAGE_BYTES: u64 = 4096;
const CACHE_WAYS: u64 = 8;

#[test]
fn last_and_first_words_of_adjacent_pages_are_distinct() {
    let mut mem = Memory::new();
    // GLOBAL_BASE is page-aligned, so `boundary` is the first byte of
    // the second page and `boundary - 8` the last word of the first.
    let boundary = GLOBAL_BASE + PAGE_BYTES;
    mem.write(boundary - 8, 0xAAAA).unwrap();
    mem.write(boundary, 0xBBBB).unwrap();
    assert_eq!(mem.read(boundary - 8).unwrap(), 0xAAAA);
    assert_eq!(mem.read(boundary).unwrap(), 0xBBBB);
    // Two pages were materialized, not one.
    assert_eq!(mem.stats().pages_allocated, 2);
}

#[test]
fn unaligned_accesses_trap_including_page_straddlers() {
    let mut mem = Memory::new();
    // An x86-style 8-byte access at page_end - 4 would straddle two
    // pages; the word-granular model rejects it as unaligned instead.
    let straddler = GLOBAL_BASE + PAGE_BYTES - 4;
    assert_eq!(
        mem.write(straddler, 1),
        Err(InterpError::Unaligned(straddler))
    );
    assert_eq!(mem.read(straddler), Err(InterpError::Unaligned(straddler)));
    // Every non-multiple-of-8 offset traps, not just the straddling one.
    for off in [1, 2, 3, 5, 7] {
        let addr = HEAP_BASE + off;
        assert_eq!(mem.read(addr), Err(InterpError::Unaligned(addr)));
    }
    // Nothing was allocated by the rejected accesses.
    assert_eq!(mem.stats().pages_allocated, 0);
}

#[test]
fn unwritten_words_of_a_partially_written_page_read_zero() {
    let mut mem = Memory::new();
    mem.write(STACK_BASE + 8, 7).unwrap();
    // Same page, different word: zero. Next page, never written: zero
    // without allocating.
    assert_eq!(mem.read(STACK_BASE).unwrap(), 0);
    assert_eq!(mem.read(STACK_BASE + PAGE_BYTES).unwrap(), 0);
    assert_eq!(mem.stats().pages_allocated, 1);
}

#[test]
fn sequential_walk_across_pages_misses_once_per_page() {
    let mut mem = Memory::new();
    let pages = 5u64;
    for w in 0..(pages * PAGE_BYTES / 8) {
        mem.write(HEAP_BASE + w * 8, w).unwrap();
    }
    let stats = mem.stats();
    assert_eq!(stats.pages_allocated, pages);
    // Each page misses exactly once (its allocation); every subsequent
    // access in the walk hits the cache way it just filled.
    assert_eq!(stats.page_cache_misses, pages);
    assert_eq!(stats.page_cache_hits, pages * (PAGE_BYTES / 8) - pages);
}

#[test]
fn cross_page_alternation_hits_distinct_cache_ways() {
    let mut mem = Memory::new();
    let a = HEAP_BASE; // page p, way p % 8
    let b = HEAP_BASE + PAGE_BYTES; // page p+1, adjacent way
    mem.write(a, 1).unwrap(); // miss (alloc)
    mem.write(b, 2).unwrap(); // miss (alloc)
    let before = mem.stats();
    for _ in 0..100 {
        assert_eq!(mem.read(a).unwrap(), 1);
        assert_eq!(mem.read(b).unwrap(), 2);
    }
    let after = mem.stats();
    // Adjacent pages map to different ways of the direct-mapped cache,
    // so the alternation stays resident: all 200 accesses hit.
    assert_eq!(after.page_cache_hits - before.page_cache_hits, 200);
    assert_eq!(after.page_cache_misses, before.page_cache_misses);
}

#[test]
fn way_colliding_pages_evict_each_other() {
    let mut mem = Memory::new();
    let a = HEAP_BASE; // page p
    let b = HEAP_BASE + CACHE_WAYS * PAGE_BYTES; // page p+8: same way
    mem.write(a, 1).unwrap();
    mem.write(b, 2).unwrap(); // evicts a's entry from the shared way
    let before = mem.stats();
    for _ in 0..10 {
        assert_eq!(mem.read(a).unwrap(), 1);
        assert_eq!(mem.read(b).unwrap(), 2);
    }
    let after = mem.stats();
    // Every access of the ping-pong misses: the two pages contend for
    // one way. The values themselves stay correct throughout.
    assert_eq!(after.page_cache_misses - before.page_cache_misses, 20);
    assert_eq!(after.page_cache_hits, before.page_cache_hits);
}

#[test]
fn far_pages_round_trip_through_the_fallback_map() {
    let mut mem = Memory::new();
    // Function-pointer-region addresses sit far above the dense
    // directory's 4 GiB coverage and take the hashed fallback path.
    let far = 0xF000_0000_0000u64 | 0x10;
    mem.write(far, 0xDEAD).unwrap();
    assert_eq!(mem.read(far).unwrap(), 0xDEAD);
    // A boundary-adjacent far page is a distinct allocation.
    let far2 = far + PAGE_BYTES;
    assert_eq!(mem.read(far2).unwrap(), 0);
    mem.write(far2, 0xBEEF).unwrap();
    assert_eq!(mem.read(far).unwrap(), 0xDEAD);
    assert_eq!(mem.read(far2).unwrap(), 0xBEEF);
    assert_eq!(mem.stats().pages_allocated, 2);
}

#[test]
fn cross_page_write_fills_the_cache_for_subsequent_reads() {
    let mut mem = Memory::new();
    let boundary = GLOBAL_BASE + PAGE_BYTES;
    mem.write(boundary - 8, 1).unwrap(); // miss: allocates page 0
    mem.write(boundary, 2).unwrap(); // miss: allocates page 1
    let before = mem.stats();
    assert_eq!(before.page_cache_misses, 2);
    // Both pages are now cached in their own ways; re-reading either
    // side of the boundary never walks the directory again.
    assert_eq!(mem.read(boundary - 8).unwrap(), 1);
    assert_eq!(mem.read(boundary).unwrap(), 2);
    let after = mem.stats();
    assert_eq!(after.page_cache_hits - before.page_cache_hits, 2);
    assert_eq!(after.page_cache_misses, before.page_cache_misses);
}
