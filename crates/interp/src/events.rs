//! Instrumentation call-backs.
//!
//! [`EventSink`] is the run-time component's view of execution — the same
//! call-backs Loopapalooza's custom LLVM passes insert (paper §III-A).
//! Every event carries `now`, the current value of the running sequential
//! dynamic-IR cost counter ("the loop header, loop latch and loop exit
//! call-backs can sample this running sequential IR cost counter"), so
//! sinks can timestamp producers and consumers at instruction
//! granularity. All methods have no-op defaults.

use crate::memory::MemStats;
use crate::value::Value;
use lp_ir::{BlockId, Builtin, FuncId, ValueId};

/// How a sink wants to receive per-block execution events.
///
/// Declared by [`EventSink::fidelity`] and consulted once per run by the
/// bytecode engine (the tree-walk reference engine always delivers
/// per-instruction callbacks). The two modes are observationally
/// equivalent: a [`Fidelity::Block`] sink receives the same events in
/// the same order with the same `now` stamps, just grouped into
/// [`BlockBatch`] callbacks spanning a run of executed blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Deliver `block_entered`/`phi_resolved`/`load`/`store`/
    /// `value_defined` individually, as they happen.
    PerInstruction,
    /// Deliver [`EventSink::block_batch`] calls covering whole runs of
    /// executed blocks (split at call boundaries and a size cap so
    /// global event order is preserved).
    Block,
}

/// The `block_entered` portion of a [`BlockBatch`]: the block's static
/// cost and the cost counter at entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Static IR cost of the block (non-phi instructions + terminator).
    pub cost: u64,
    /// Cost counter at block entry.
    pub now: u64,
}

/// One buffered per-instruction event inside a [`BlockBatch`].
///
/// Function-level events (`func_entered`, `func_exited`,
/// `builtin_called`, `mem_stats`) are never batched: the engine flushes
/// the pending batch before emitting them so the global event order is
/// identical to the per-instruction stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchEvent {
    /// A block entry *inside* the batch (the first block's entry rides
    /// in [`BlockBatch::entry`]). Every event after this marker belongs
    /// to `block`, until the next marker.
    Enter {
        /// The entered block.
        block: BlockId,
        /// Static IR cost of the block.
        cost: u64,
        /// Cost counter at entry.
        now: u64,
    },
    /// A phi of the current block resolved to `value` on entry.
    Phi {
        /// The phi's result value id.
        phi: ValueId,
        /// The resolved incoming value.
        value: Value,
        /// Cost counter at the edge (block entry).
        now: u64,
    },
    /// A load from `addr` executed.
    Load {
        /// The loaded address.
        addr: u64,
        /// Cost counter after the load was charged.
        now: u64,
    },
    /// A store to `addr` executed.
    Store {
        /// The stored address.
        addr: u64,
        /// Cost counter after the store was charged.
        now: u64,
    },
    /// A watched value was defined.
    Def {
        /// The defined value id.
        value: ValueId,
        /// The defined value.
        val: Value,
        /// Cost counter after the defining instruction was charged.
        now: u64,
    },
}

/// Kind tag of one packed batch event (see [`BlockBatch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum BatchKind {
    /// An in-stream block entry; the payload holds the [`BlockId`] bits
    /// in the low word and the block's static cost in the high word.
    Enter = 0,
    /// A phi resolution; the payload holds the phi's [`ValueId`] bits
    /// and the resolved [`Value`] rides in the side stream.
    Phi = 1,
    /// A load; the payload holds the address.
    Load = 2,
    /// A store; the payload holds the address.
    Store = 3,
    /// A watched-value definition; the payload holds the defined
    /// [`ValueId`] bits and the [`Value`] rides in the side stream.
    Def = 4,
}

/// Number of [`BatchKind`] variants (the per-kind count array length).
const KINDS: usize = 5;

#[inline]
fn kind_of(bits: u64) -> BatchKind {
    match bits {
        0 => BatchKind::Enter,
        1 => BatchKind::Phi,
        2 => BatchKind::Load,
        3 => BatchKind::Store,
        _ => BatchKind::Def,
    }
}

/// One packed event: `meta` is `now << 3 | kind`, `payload` is an
/// address (`Load`/`Store`), [`ValueId`] bits (`Phi`/`Def`), or
/// `block bits | cost << 32` (`Enter`). Packing the stamp and the tag
/// into one word makes an event a single 16-byte push on the engine's
/// hot path instead of three parallel-stream pushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RawEv {
    meta: u64,
    payload: u64,
}

/// A run of executed blocks' worth of buffered events, delivered
/// through [`EventSink::block_batch`] by the bytecode engine when the
/// sink declared [`Fidelity::Block`].
///
/// `entry` is `Some` when this batch opens its first block (`block`); a
/// batch whose events were split by a call boundary delivers its
/// continuation with `entry: None` so the shim never replays
/// `block_entered` twice. Later block entries inside the same batch are
/// in-stream [`BatchKind::Enter`] markers: every event after a marker
/// belongs to the marked block. The engine flushes at call/builtin and
/// function-exit boundaries (order preservation) and at a size cap
/// checked on block entry, so one batch amortizes the per-delivery
/// bookkeeping over dozens of blocks while blocks stay contiguous.
///
/// Events are one packed [`RawEv`] stream plus a side stream of
/// [`Value`]s that only phi and def events push, consumed in order
/// during decode. Per-kind event counts and the summed cost of
/// in-stream entries are maintained on push, so metering decorators
/// tally a batch in O(1) without walking it. The buffers are
/// machine-owned and recycled across batches — `clear` keeps their
/// capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockBatch {
    /// Function owning every block in the batch (calls flush).
    pub func: FuncId,
    /// The first executed block of the batch.
    pub block: BlockId,
    /// Block-entry event for `block`, if this batch opens it.
    pub entry: Option<BlockEntry>,
    /// The packed event stream, in execution order.
    evs: Vec<RawEv>,
    /// Side stream of values, pushed only by `Phi`/`Def` events and
    /// consumed sequentially during decode.
    vals: Vec<Value>,
    /// Per-kind event counts, indexed by `BatchKind as usize`.
    counts: [u64; KINDS],
    /// Summed static cost of in-stream `Enter` events.
    enter_cost: u64,
    /// `now` of the most recent in-stream `Enter` (valid when the
    /// `Enter` count is non-zero).
    last_enter_now: u64,
}

impl Default for BlockBatch {
    fn default() -> BlockBatch {
        BlockBatch {
            func: FuncId(0),
            block: BlockId(0),
            entry: None,
            evs: Vec::new(),
            vals: Vec::new(),
            counts: [0; KINDS],
            enter_cost: 0,
            last_enter_now: 0,
        }
    }
}

impl BlockBatch {
    #[inline]
    fn push_raw(&mut self, kind: BatchKind, payload: u64, now: u64) {
        debug_assert!(now <= u64::MAX >> 3, "cost counter exceeds 61 bits");
        self.evs.push(RawEv {
            meta: now << 3 | kind as u64,
            payload,
        });
        self.counts[kind as usize] += 1;
    }

    /// Buffers an in-stream block entry.
    #[inline]
    pub fn push_enter(&mut self, block: BlockId, cost: u64, now: u64) {
        debug_assert!(cost <= u64::from(u32::MAX), "block cost exceeds 32 bits");
        self.enter_cost += cost;
        self.last_enter_now = now;
        self.push_raw(BatchKind::Enter, u64::from(block.0) | cost << 32, now);
    }

    /// Buffers a phi resolution.
    #[inline]
    pub fn push_phi(&mut self, phi: ValueId, value: Value, now: u64) {
        self.vals.push(value);
        self.push_raw(BatchKind::Phi, u64::from(phi.0), now);
    }

    /// Buffers a load from `addr`.
    #[inline]
    pub fn push_load(&mut self, addr: u64, now: u64) {
        self.push_raw(BatchKind::Load, addr, now);
    }

    /// Buffers a store to `addr`.
    #[inline]
    pub fn push_store(&mut self, addr: u64, now: u64) {
        self.push_raw(BatchKind::Store, addr, now);
    }

    /// Buffers a watched-value definition.
    #[inline]
    pub fn push_def(&mut self, value: ValueId, val: Value, now: u64) {
        self.vals.push(val);
        self.push_raw(BatchKind::Def, u64::from(value.0), now);
    }

    /// Drops the buffered events, keeping the allocations.
    #[inline]
    pub fn clear(&mut self) {
        self.evs.clear();
        self.vals.clear();
        self.counts = [0; KINDS];
        self.enter_cost = 0;
        self.last_enter_now = 0;
    }

    /// Number of buffered events (in-stream `Enter` markers included).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.evs.len()
    }

    /// Whether no events are buffered.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.evs.is_empty()
    }

    /// Number of buffered events of `kind`.
    #[inline]
    #[must_use]
    pub fn count(&self, kind: BatchKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Summed static cost of the in-stream `Enter` events (the first
    /// block's cost rides in [`BlockBatch::entry`]).
    #[inline]
    #[must_use]
    pub fn enter_cost(&self) -> u64 {
        self.enter_cost
    }

    /// `now` of the latest in-stream block entry, if any.
    #[inline]
    #[must_use]
    pub fn last_enter_now(&self) -> Option<u64> {
        (self.counts[BatchKind::Enter as usize] > 0).then_some(self.last_enter_now)
    }

    /// The side value stream (`Phi`/`Def` events only, in order).
    #[inline]
    #[must_use]
    pub fn vals(&self) -> &[Value] {
        &self.vals
    }

    /// Heap bytes currently reserved by the event streams — what a
    /// pooled buffer saves the next run from reallocating.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        (self.evs.capacity() * std::mem::size_of::<RawEv>()
            + self.vals.capacity() * std::mem::size_of::<Value>()) as u64
    }

    /// The packed event stream as `(kind, payload, now)` triples, in
    /// execution order — the dense view batch-native consumers decode
    /// with a flat match (values ride separately in
    /// [`BlockBatch::vals`]).
    #[inline]
    pub fn raw_events(&self) -> impl Iterator<Item = (BatchKind, u64, u64)> + '_ {
        self.evs
            .iter()
            .map(|e| (kind_of(e.meta & 7), e.payload, e.meta >> 3))
    }

    /// Reconstructs the tagged-enum view of the event stream, in
    /// execution order — the compatibility path the per-instruction
    /// shim and order-sensitive decorators decode through.
    pub fn events(&self) -> impl Iterator<Item = BatchEvent> + '_ {
        let mut vi = 0usize;
        self.raw_events()
            .map(move |(kind, payload, now)| match kind {
                BatchKind::Enter => BatchEvent::Enter {
                    block: BlockId(payload as u32),
                    cost: payload >> 32,
                    now,
                },
                BatchKind::Phi => {
                    let value = self.vals[vi];
                    vi += 1;
                    BatchEvent::Phi {
                        phi: ValueId(payload as u32),
                        value,
                        now,
                    }
                }
                BatchKind::Load => BatchEvent::Load { addr: payload, now },
                BatchKind::Store => BatchEvent::Store { addr: payload, now },
                BatchKind::Def => {
                    let val = self.vals[vi];
                    vi += 1;
                    BatchEvent::Def {
                        value: ValueId(payload as u32),
                        val,
                        now,
                    }
                }
            })
    }
}

/// Receiver of instrumentation events.
pub trait EventSink {
    /// Statically promises that *every* callback on this sink is a
    /// no-op (only [`NullSink`] qualifies). The bytecode engine uses
    /// this to select a silent dispatch loop that skips event plumbing
    /// entirely — observable semantics (results, costs, traps) are
    /// unchanged because there is nothing listening. A sink that does
    /// anything at all in any callback must leave this `false`.
    const INERT: bool = false;
    /// A basic block was entered. `cost` is its static IR cost (non-phi
    /// instructions + terminator); `now` is the cost counter at entry
    /// (before any of the block's instructions are charged).
    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        let _ = (func, block, cost, now);
    }

    /// A phi resolved to `value` on entry to its block. Used to trace
    /// register-LCD values for the value predictors.
    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        let _ = (func, block, phi, value, now);
    }

    /// A load from `addr` executed.
    fn load(&mut self, addr: u64, now: u64) {
        let _ = (addr, now);
    }

    /// A store to `addr` executed.
    fn store(&mut self, addr: u64, now: u64) {
        let _ = (addr, now);
    }

    /// A user function was entered (after its frame was created).
    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        let _ = (func, frame_base, now);
    }

    /// A user function returned.
    fn func_exited(&mut self, func: FuncId, now: u64) {
        let _ = (func, now);
    }

    /// A builtin was invoked from `caller`.
    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        let _ = (caller, builtin, now);
    }

    /// A *watched* value (registered via
    /// [`crate::MachineConfig::watched_values`]) was defined. Loopapalooza
    /// uses this to timestamp register-LCD producers inside an iteration —
    /// the producer side of HELIX `dep1` synchronization edges.
    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        let _ = (func, value, val, now);
    }

    /// The run completed; `stats` summarizes the memory fast path
    /// (last-page cache hits/misses, pages allocated). Delivered once,
    /// after the final instruction, only on successful runs.
    fn mem_stats(&mut self, stats: MemStats) {
        let _ = stats;
    }

    /// Whether this sink wants per-instruction callbacks or one
    /// aggregated [`BlockBatch`] per executed block. Consulted once per
    /// run by the bytecode engine; the tree-walk engine ignores it.
    fn fidelity(&self) -> Fidelity {
        Fidelity::PerInstruction
    }

    /// One block's worth of events, delivered when [`EventSink::fidelity`]
    /// returned [`Fidelity::Block`]. The default implementation is the
    /// per-instruction compatibility shim: it replays the batch through
    /// the individual callbacks in original order with original `now`
    /// stamps, so a sink composed behind a batching decorator observes a
    /// stream byte-identical to the per-instruction engine's.
    fn block_batch(&mut self, batch: &BlockBatch) {
        if let Some(entry) = &batch.entry {
            self.block_entered(batch.func, batch.block, entry.cost, entry.now);
        }
        let mut block = batch.block;
        for ev in batch.events() {
            match ev {
                BatchEvent::Enter {
                    block: entered,
                    cost,
                    now,
                } => {
                    block = entered;
                    self.block_entered(batch.func, entered, cost, now);
                }
                BatchEvent::Phi { phi, value, now } => {
                    self.phi_resolved(batch.func, block, phi, value, now);
                }
                BatchEvent::Load { addr, now } => self.load(addr, now),
                BatchEvent::Store { addr, now } => self.store(addr, now),
                BatchEvent::Def { value, val, now } => {
                    self.value_defined(batch.func, value, val, now);
                }
            }
        }
    }
}

/// Forwarding impl so decorators like `MeteredSink` can borrow a sink
/// instead of owning it.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    const INERT: bool = S::INERT;

    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        (**self).block_entered(func, block, cost, now);
    }

    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        (**self).phi_resolved(func, block, phi, value, now);
    }

    fn load(&mut self, addr: u64, now: u64) {
        (**self).load(addr, now);
    }

    fn store(&mut self, addr: u64, now: u64) {
        (**self).store(addr, now);
    }

    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        (**self).func_entered(func, frame_base, now);
    }

    fn func_exited(&mut self, func: FuncId, now: u64) {
        (**self).func_exited(func, now);
    }

    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        (**self).builtin_called(caller, builtin, now);
    }

    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        (**self).value_defined(func, value, val, now);
    }

    fn mem_stats(&mut self, stats: MemStats) {
        (**self).mem_stats(stats);
    }

    fn fidelity(&self) -> Fidelity {
        (**self).fidelity()
    }

    fn block_batch(&mut self, batch: &BlockBatch) {
        (**self).block_batch(batch);
    }
}

/// A sink that ignores every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    const INERT: bool = true;
}

/// A sink that tallies event counts — handy in tests and as the cheapest
/// possible cost profiler.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Total dynamic IR cost (sum of entered block costs).
    pub cost: u64,
    /// Number of blocks entered.
    pub blocks: u64,
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
    /// Number of user-function entries.
    pub calls: u64,
    /// Number of builtin invocations.
    pub builtins: u64,
    /// Number of phi resolutions.
    pub phis: u64,
}

impl EventSink for CountingSink {
    fn block_entered(&mut self, _func: FuncId, _block: BlockId, cost: u64, _now: u64) {
        self.cost += cost;
        self.blocks += 1;
    }

    fn phi_resolved(
        &mut self,
        _func: FuncId,
        _block: BlockId,
        _phi: ValueId,
        _value: Value,
        _now: u64,
    ) {
        self.phis += 1;
    }

    fn load(&mut self, _addr: u64, _now: u64) {
        self.loads += 1;
    }

    fn store(&mut self, _addr: u64, _now: u64) {
        self.stores += 1;
    }

    fn func_entered(&mut self, _func: FuncId, _frame_base: u64, _now: u64) {
        self.calls += 1;
    }

    fn builtin_called(&mut self, _caller: FuncId, _builtin: Builtin, _now: u64) {
        self.builtins += 1;
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::Block
    }

    fn block_batch(&mut self, batch: &BlockBatch) {
        if let Some(entry) = &batch.entry {
            self.cost += entry.cost;
            self.blocks += 1;
        }
        // The batch keeps per-kind tallies current on push, so metering
        // is O(1) per delivery instead of a walk over the stream.
        self.cost += batch.enter_cost();
        self.blocks += batch.count(BatchKind::Enter);
        self.phis += batch.count(BatchKind::Phi);
        self.loads += batch.count(BatchKind::Load);
        self.stores += batch.count(BatchKind::Store);
    }
}
