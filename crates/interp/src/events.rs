//! Instrumentation call-backs.
//!
//! [`EventSink`] is the run-time component's view of execution — the same
//! call-backs Loopapalooza's custom LLVM passes insert (paper §III-A).
//! Every event carries `now`, the current value of the running sequential
//! dynamic-IR cost counter ("the loop header, loop latch and loop exit
//! call-backs can sample this running sequential IR cost counter"), so
//! sinks can timestamp producers and consumers at instruction
//! granularity. All methods have no-op defaults.

use crate::memory::MemStats;
use crate::value::Value;
use lp_ir::{BlockId, Builtin, FuncId, ValueId};

/// How a sink wants to receive per-block execution events.
///
/// Declared by [`EventSink::fidelity`] and consulted once per run by the
/// bytecode engine (the tree-walk reference engine always delivers
/// per-instruction callbacks). The two modes are observationally
/// equivalent: a [`Fidelity::Block`] sink receives the same events in
/// the same order with the same `now` stamps, just grouped into one
/// [`BlockBatch`] callback per executed block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Deliver `block_entered`/`phi_resolved`/`load`/`store`/
    /// `value_defined` individually, as they happen.
    PerInstruction,
    /// Deliver one [`EventSink::block_batch`] call per executed block
    /// (split at call boundaries so global event order is preserved).
    Block,
}

/// The `block_entered` portion of a [`BlockBatch`]: the block's static
/// cost and the cost counter at entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Static IR cost of the block (non-phi instructions + terminator).
    pub cost: u64,
    /// Cost counter at block entry.
    pub now: u64,
}

/// One buffered per-instruction event inside a [`BlockBatch`].
///
/// Function-level events (`func_entered`, `func_exited`,
/// `builtin_called`, `mem_stats`) are never batched: the engine flushes
/// the pending batch before emitting them so the global event order is
/// identical to the per-instruction stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchEvent {
    /// A phi of the batch's block resolved to `value` on entry.
    Phi {
        /// The phi's result value id.
        phi: ValueId,
        /// The resolved incoming value.
        value: Value,
        /// Cost counter at the edge (block entry).
        now: u64,
    },
    /// A load from `addr` executed.
    Load {
        /// The loaded address.
        addr: u64,
        /// Cost counter after the load was charged.
        now: u64,
    },
    /// A store to `addr` executed.
    Store {
        /// The stored address.
        addr: u64,
        /// Cost counter after the store was charged.
        now: u64,
    },
    /// A watched value was defined.
    Def {
        /// The defined value id.
        value: ValueId,
        /// The defined value.
        val: Value,
        /// Cost counter after the defining instruction was charged.
        now: u64,
    },
}

/// One block's worth of buffered events, delivered through
/// [`EventSink::block_batch`] by the bytecode engine when the sink
/// declared [`Fidelity::Block`].
///
/// `entry` is `Some` when this batch opens the block; a block whose
/// events were split by a call boundary delivers its continuation with
/// `entry: None` so the shim never replays `block_entered` twice.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockBatch {
    /// Function owning the block.
    pub func: FuncId,
    /// The executed block.
    pub block: BlockId,
    /// Block-entry event, if this batch opens the block.
    pub entry: Option<BlockEntry>,
    /// Buffered per-instruction events, in execution order.
    pub events: Vec<BatchEvent>,
}

impl Default for BlockBatch {
    fn default() -> BlockBatch {
        BlockBatch {
            func: FuncId(0),
            block: BlockId(0),
            entry: None,
            events: Vec::new(),
        }
    }
}

/// Receiver of instrumentation events.
pub trait EventSink {
    /// Statically promises that *every* callback on this sink is a
    /// no-op (only [`NullSink`] qualifies). The bytecode engine uses
    /// this to select a silent dispatch loop that skips event plumbing
    /// entirely — observable semantics (results, costs, traps) are
    /// unchanged because there is nothing listening. A sink that does
    /// anything at all in any callback must leave this `false`.
    const INERT: bool = false;
    /// A basic block was entered. `cost` is its static IR cost (non-phi
    /// instructions + terminator); `now` is the cost counter at entry
    /// (before any of the block's instructions are charged).
    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        let _ = (func, block, cost, now);
    }

    /// A phi resolved to `value` on entry to its block. Used to trace
    /// register-LCD values for the value predictors.
    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        let _ = (func, block, phi, value, now);
    }

    /// A load from `addr` executed.
    fn load(&mut self, addr: u64, now: u64) {
        let _ = (addr, now);
    }

    /// A store to `addr` executed.
    fn store(&mut self, addr: u64, now: u64) {
        let _ = (addr, now);
    }

    /// A user function was entered (after its frame was created).
    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        let _ = (func, frame_base, now);
    }

    /// A user function returned.
    fn func_exited(&mut self, func: FuncId, now: u64) {
        let _ = (func, now);
    }

    /// A builtin was invoked from `caller`.
    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        let _ = (caller, builtin, now);
    }

    /// A *watched* value (registered via
    /// [`crate::MachineConfig::watched_values`]) was defined. Loopapalooza
    /// uses this to timestamp register-LCD producers inside an iteration —
    /// the producer side of HELIX `dep1` synchronization edges.
    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        let _ = (func, value, val, now);
    }

    /// The run completed; `stats` summarizes the memory fast path
    /// (last-page cache hits/misses, pages allocated). Delivered once,
    /// after the final instruction, only on successful runs.
    fn mem_stats(&mut self, stats: MemStats) {
        let _ = stats;
    }

    /// Whether this sink wants per-instruction callbacks or one
    /// aggregated [`BlockBatch`] per executed block. Consulted once per
    /// run by the bytecode engine; the tree-walk engine ignores it.
    fn fidelity(&self) -> Fidelity {
        Fidelity::PerInstruction
    }

    /// One block's worth of events, delivered when [`EventSink::fidelity`]
    /// returned [`Fidelity::Block`]. The default implementation is the
    /// per-instruction compatibility shim: it replays the batch through
    /// the individual callbacks in original order with original `now`
    /// stamps, so a sink composed behind a batching decorator observes a
    /// stream byte-identical to the per-instruction engine's.
    fn block_batch(&mut self, batch: &BlockBatch) {
        if let Some(entry) = &batch.entry {
            self.block_entered(batch.func, batch.block, entry.cost, entry.now);
        }
        for ev in &batch.events {
            match *ev {
                BatchEvent::Phi { phi, value, now } => {
                    self.phi_resolved(batch.func, batch.block, phi, value, now);
                }
                BatchEvent::Load { addr, now } => self.load(addr, now),
                BatchEvent::Store { addr, now } => self.store(addr, now),
                BatchEvent::Def { value, val, now } => {
                    self.value_defined(batch.func, value, val, now);
                }
            }
        }
    }
}

/// Forwarding impl so decorators like `MeteredSink` can borrow a sink
/// instead of owning it.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    const INERT: bool = S::INERT;

    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        (**self).block_entered(func, block, cost, now);
    }

    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        (**self).phi_resolved(func, block, phi, value, now);
    }

    fn load(&mut self, addr: u64, now: u64) {
        (**self).load(addr, now);
    }

    fn store(&mut self, addr: u64, now: u64) {
        (**self).store(addr, now);
    }

    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        (**self).func_entered(func, frame_base, now);
    }

    fn func_exited(&mut self, func: FuncId, now: u64) {
        (**self).func_exited(func, now);
    }

    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        (**self).builtin_called(caller, builtin, now);
    }

    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        (**self).value_defined(func, value, val, now);
    }

    fn mem_stats(&mut self, stats: MemStats) {
        (**self).mem_stats(stats);
    }

    fn fidelity(&self) -> Fidelity {
        (**self).fidelity()
    }

    fn block_batch(&mut self, batch: &BlockBatch) {
        (**self).block_batch(batch);
    }
}

/// A sink that ignores every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    const INERT: bool = true;
}

/// A sink that tallies event counts — handy in tests and as the cheapest
/// possible cost profiler.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Total dynamic IR cost (sum of entered block costs).
    pub cost: u64,
    /// Number of blocks entered.
    pub blocks: u64,
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
    /// Number of user-function entries.
    pub calls: u64,
    /// Number of builtin invocations.
    pub builtins: u64,
    /// Number of phi resolutions.
    pub phis: u64,
}

impl EventSink for CountingSink {
    fn block_entered(&mut self, _func: FuncId, _block: BlockId, cost: u64, _now: u64) {
        self.cost += cost;
        self.blocks += 1;
    }

    fn phi_resolved(
        &mut self,
        _func: FuncId,
        _block: BlockId,
        _phi: ValueId,
        _value: Value,
        _now: u64,
    ) {
        self.phis += 1;
    }

    fn load(&mut self, _addr: u64, _now: u64) {
        self.loads += 1;
    }

    fn store(&mut self, _addr: u64, _now: u64) {
        self.stores += 1;
    }

    fn func_entered(&mut self, _func: FuncId, _frame_base: u64, _now: u64) {
        self.calls += 1;
    }

    fn builtin_called(&mut self, _caller: FuncId, _builtin: Builtin, _now: u64) {
        self.builtins += 1;
    }

    fn fidelity(&self) -> Fidelity {
        Fidelity::Block
    }

    fn block_batch(&mut self, batch: &BlockBatch) {
        if let Some(entry) = &batch.entry {
            self.cost += entry.cost;
            self.blocks += 1;
        }
        for ev in &batch.events {
            match ev {
                BatchEvent::Phi { .. } => self.phis += 1,
                BatchEvent::Load { .. } => self.loads += 1,
                BatchEvent::Store { .. } => self.stores += 1,
                BatchEvent::Def { .. } => {}
            }
        }
    }
}
