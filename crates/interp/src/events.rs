//! Instrumentation call-backs.
//!
//! [`EventSink`] is the run-time component's view of execution — the same
//! call-backs Loopapalooza's custom LLVM passes insert (paper §III-A).
//! Every event carries `now`, the current value of the running sequential
//! dynamic-IR cost counter ("the loop header, loop latch and loop exit
//! call-backs can sample this running sequential IR cost counter"), so
//! sinks can timestamp producers and consumers at instruction
//! granularity. All methods have no-op defaults.

use crate::memory::MemStats;
use crate::value::Value;
use lp_ir::{BlockId, Builtin, FuncId, ValueId};

/// Receiver of instrumentation events.
pub trait EventSink {
    /// A basic block was entered. `cost` is its static IR cost (non-phi
    /// instructions + terminator); `now` is the cost counter at entry
    /// (before any of the block's instructions are charged).
    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        let _ = (func, block, cost, now);
    }

    /// A phi resolved to `value` on entry to its block. Used to trace
    /// register-LCD values for the value predictors.
    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        let _ = (func, block, phi, value, now);
    }

    /// A load from `addr` executed.
    fn load(&mut self, addr: u64, now: u64) {
        let _ = (addr, now);
    }

    /// A store to `addr` executed.
    fn store(&mut self, addr: u64, now: u64) {
        let _ = (addr, now);
    }

    /// A user function was entered (after its frame was created).
    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        let _ = (func, frame_base, now);
    }

    /// A user function returned.
    fn func_exited(&mut self, func: FuncId, now: u64) {
        let _ = (func, now);
    }

    /// A builtin was invoked from `caller`.
    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        let _ = (caller, builtin, now);
    }

    /// A *watched* value (registered via
    /// [`crate::MachineConfig::watched_values`]) was defined. Loopapalooza
    /// uses this to timestamp register-LCD producers inside an iteration —
    /// the producer side of HELIX `dep1` synchronization edges.
    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        let _ = (func, value, val, now);
    }

    /// The run completed; `stats` summarizes the memory fast path
    /// (last-page cache hits/misses, pages allocated). Delivered once,
    /// after the final instruction, only on successful runs.
    fn mem_stats(&mut self, stats: MemStats) {
        let _ = stats;
    }
}

/// Forwarding impl so decorators like `MeteredSink` can borrow a sink
/// instead of owning it.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        (**self).block_entered(func, block, cost, now);
    }

    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        (**self).phi_resolved(func, block, phi, value, now);
    }

    fn load(&mut self, addr: u64, now: u64) {
        (**self).load(addr, now);
    }

    fn store(&mut self, addr: u64, now: u64) {
        (**self).store(addr, now);
    }

    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        (**self).func_entered(func, frame_base, now);
    }

    fn func_exited(&mut self, func: FuncId, now: u64) {
        (**self).func_exited(func, now);
    }

    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        (**self).builtin_called(caller, builtin, now);
    }

    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        (**self).value_defined(func, value, val, now);
    }

    fn mem_stats(&mut self, stats: MemStats) {
        (**self).mem_stats(stats);
    }
}

/// A sink that ignores every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {}

/// A sink that tallies event counts — handy in tests and as the cheapest
/// possible cost profiler.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Total dynamic IR cost (sum of entered block costs).
    pub cost: u64,
    /// Number of blocks entered.
    pub blocks: u64,
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
    /// Number of user-function entries.
    pub calls: u64,
    /// Number of builtin invocations.
    pub builtins: u64,
    /// Number of phi resolutions.
    pub phis: u64,
}

impl EventSink for CountingSink {
    fn block_entered(&mut self, _func: FuncId, _block: BlockId, cost: u64, _now: u64) {
        self.cost += cost;
        self.blocks += 1;
    }

    fn phi_resolved(
        &mut self,
        _func: FuncId,
        _block: BlockId,
        _phi: ValueId,
        _value: Value,
        _now: u64,
    ) {
        self.phis += 1;
    }

    fn load(&mut self, _addr: u64, _now: u64) {
        self.loads += 1;
    }

    fn store(&mut self, _addr: u64, _now: u64) {
        self.stores += 1;
    }

    fn func_entered(&mut self, _func: FuncId, _frame_base: u64, _now: u64) {
        self.calls += 1;
    }

    fn builtin_called(&mut self, _caller: FuncId, _builtin: Builtin, _now: u64) {
        self.builtins += 1;
    }
}
