//! Sink combinators: metering and teeing.
//!
//! [`MeteredSink`] decorates any [`EventSink`] with per-kind event
//! counters without touching the inner sink's behaviour — the decorated
//! run produces exactly the same inner-sink state as an undecorated one
//! (counters are plain local `u64`s, so the overhead is one increment
//! per event). [`TeeSink`] fans every event out to two sinks, letting a
//! debugging trace ride along with the profiler, for example.

use crate::events::EventSink;
use crate::value::Value;
use lp_ir::{BlockId, Builtin, FuncId, ValueId};

/// Per-kind tallies of the instrumentation events a run delivered.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EventCounts {
    /// Basic-block entries.
    pub blocks: u64,
    /// Phi resolutions.
    pub phis: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Function entries.
    pub funcs: u64,
    /// Function exits.
    pub exits: u64,
    /// Builtin invocations.
    pub builtins: u64,
    /// Watched-value definitions.
    pub defs: u64,
}

impl EventCounts {
    /// Total events of all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.blocks
            + self.phis
            + self.loads
            + self.stores
            + self.funcs
            + self.exits
            + self.builtins
            + self.defs
    }
}

/// Decorates an inner sink with event metering.
#[derive(Debug, Default, Clone)]
pub struct MeteredSink<S> {
    inner: S,
    counts: EventCounts,
    /// Cost at the most recent block entry — the best "how far did the
    /// run get" stamp available when the end-of-run journal record is
    /// cut in [`EventSink::mem_stats`].
    last_now: u64,
}

impl<S> MeteredSink<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> MeteredSink<S> {
        MeteredSink {
            inner,
            counts: EventCounts::default(),
            last_now: 0,
        }
    }

    /// The tallies so far.
    #[must_use]
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// A reference to the inner sink.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps into the inner sink and the final tallies.
    #[must_use]
    pub fn into_parts(self) -> (S, EventCounts) {
        (self.inner, self.counts)
    }
}

impl<S: EventSink> EventSink for MeteredSink<S> {
    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        self.counts.blocks += 1;
        self.last_now = now;
        self.inner.block_entered(func, block, cost, now);
    }

    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        self.counts.phis += 1;
        self.inner.phi_resolved(func, block, phi, value, now);
    }

    fn load(&mut self, addr: u64, now: u64) {
        self.counts.loads += 1;
        self.inner.load(addr, now);
    }

    fn store(&mut self, addr: u64, now: u64) {
        self.counts.stores += 1;
        self.inner.store(addr, now);
    }

    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        self.counts.funcs += 1;
        self.inner.func_entered(func, frame_base, now);
    }

    fn func_exited(&mut self, func: FuncId, now: u64) {
        self.counts.exits += 1;
        self.inner.func_exited(func, now);
    }

    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        self.counts.builtins += 1;
        self.inner.builtin_called(caller, builtin, now);
    }

    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        self.counts.defs += 1;
        self.inner.value_defined(func, value, val, now);
    }

    fn mem_stats(&mut self, stats: crate::memory::MemStats) {
        // Delivered once per successful run, so it doubles as the
        // flight-recorder's end-of-run mark: total events delivered and
        // the cost reached by the last block entry.
        lp_obs::journal::record(
            lp_obs::EventKind::RunCompleted,
            self.counts.total(),
            self.last_now,
        );
        self.inner.mem_stats(stats);
    }
}

/// Fans every event out to two sinks (`a` first, then `b`).
#[derive(Debug, Default, Clone)]
pub struct TeeSink<A, B> {
    /// The first receiver.
    pub a: A,
    /// The second receiver.
    pub b: B,
}

impl<A, B> TeeSink<A, B> {
    /// Combines two sinks.
    pub fn new(a: A, b: B) -> TeeSink<A, B> {
        TeeSink { a, b }
    }
}

impl<A: EventSink, B: EventSink> EventSink for TeeSink<A, B> {
    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        self.a.block_entered(func, block, cost, now);
        self.b.block_entered(func, block, cost, now);
    }

    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        self.a.phi_resolved(func, block, phi, value, now);
        self.b.phi_resolved(func, block, phi, value, now);
    }

    fn load(&mut self, addr: u64, now: u64) {
        self.a.load(addr, now);
        self.b.load(addr, now);
    }

    fn store(&mut self, addr: u64, now: u64) {
        self.a.store(addr, now);
        self.b.store(addr, now);
    }

    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        self.a.func_entered(func, frame_base, now);
        self.b.func_entered(func, frame_base, now);
    }

    fn func_exited(&mut self, func: FuncId, now: u64) {
        self.a.func_exited(func, now);
        self.b.func_exited(func, now);
    }

    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        self.a.builtin_called(caller, builtin, now);
        self.b.builtin_called(caller, builtin, now);
    }

    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        self.a.value_defined(func, value, val, now);
        self.b.value_defined(func, value, val, now);
    }

    fn mem_stats(&mut self, stats: crate::memory::MemStats) {
        self.a.mem_stats(stats);
        self.b.mem_stats(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CountingSink;
    use crate::machine::Machine;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Global, Module, Type};

    fn sample_module() -> Module {
        let mut m = Module::new("metered");
        let g = m.add_global(Global::zeroed("g", 4));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let p = fb.global_addr(g);
        let x = fb.const_i64(5);
        fb.store(x, p);
        let y = fb.load(Type::I64, p);
        let yf = fb.sitofp(y);
        let s = fb.call_builtin(lp_ir::Builtin::Sqrt, &[yf]);
        let si = fb.fptosi(s);
        fb.ret(Some(si));
        m.add_function(fb.finish().unwrap());
        m
    }

    #[test]
    fn metering_preserves_inner_sink_state() {
        let m = sample_module();
        let mut plain = CountingSink::default();
        let plain_result = Machine::new(&m, &mut plain).run(&[]).unwrap();

        let mut metered = MeteredSink::new(CountingSink::default());
        let metered_result = Machine::new(&m, &mut metered).run(&[]).unwrap();

        assert_eq!(plain_result.ret, metered_result.ret);
        assert_eq!(plain_result.cost, metered_result.cost);
        let (inner, counts) = metered.into_parts();
        assert_eq!(format!("{plain:?}"), format!("{inner:?}"));
        assert_eq!(counts.blocks, inner.blocks);
        assert_eq!(counts.loads, inner.loads);
        assert_eq!(counts.stores, inner.stores);
        assert!(counts.total() >= counts.blocks + counts.loads + counts.stores);
        assert_eq!(counts.funcs, 1);
        assert_eq!(counts.exits, 1);
        assert_eq!(counts.builtins, 1);
    }

    #[test]
    fn metered_run_cuts_a_journal_record() {
        let m = sample_module();
        let journal = lp_obs::journal::global();
        let (before, _) = journal.snapshot();
        let mut metered = MeteredSink::new(CountingSink::default());
        Machine::new(&m, &mut metered).run(&[]).unwrap();
        let (after, records) = journal.snapshot();
        assert!(after > before, "run completion was not journaled");
        assert!(records
            .iter()
            .any(|r| r.kind == lp_obs::EventKind::RunCompleted && r.a == metered.counts().total()));
    }

    #[test]
    fn tee_delivers_to_both_sinks() {
        let m = sample_module();
        let mut tee = TeeSink::new(CountingSink::default(), CountingSink::default());
        Machine::new(&m, &mut tee).run(&[]).unwrap();
        assert_eq!(format!("{:?}", tee.a), format!("{:?}", tee.b));
        assert!(tee.a.loads > 0 && tee.a.stores > 0);
    }

    #[test]
    fn mut_ref_sinks_compose() {
        // `&mut S` is itself a sink, so decorators can borrow.
        let m = sample_module();
        let mut counting = CountingSink::default();
        let mut metered = MeteredSink::new(&mut counting);
        Machine::new(&m, &mut metered).run(&[]).unwrap();
        let counts = metered.counts();
        assert_eq!(counts.loads, counting.loads);
    }
}
