//! Sink combinators: metering and teeing.
//!
//! [`MeteredSink`] decorates any [`EventSink`] with per-kind event
//! counters without touching the inner sink's behaviour — the decorated
//! run produces exactly the same inner-sink state as an undecorated one
//! (counters are plain local `u64`s, so the overhead is one increment
//! per event). [`TeeSink`] fans every event out to two sinks, letting a
//! debugging trace ride along with the profiler, for example.

use crate::events::{BatchKind, BlockBatch, EventSink, Fidelity};
use crate::value::Value;
use lp_ir::{BlockId, Builtin, FuncId, ValueId};

/// Per-kind tallies of the instrumentation events a run delivered.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EventCounts {
    /// Basic-block entries.
    pub blocks: u64,
    /// Phi resolutions.
    pub phis: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Function entries.
    pub funcs: u64,
    /// Function exits.
    pub exits: u64,
    /// Builtin invocations.
    pub builtins: u64,
    /// Watched-value definitions.
    pub defs: u64,
}

impl EventCounts {
    /// Total events of all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.blocks
            + self.phis
            + self.loads
            + self.stores
            + self.funcs
            + self.exits
            + self.builtins
            + self.defs
    }
}

/// Decorates an inner sink with event metering.
#[derive(Debug, Default, Clone)]
pub struct MeteredSink<S> {
    inner: S,
    counts: EventCounts,
    /// Cost at the most recent block entry — the best "how far did the
    /// run get" stamp available when the end-of-run journal record is
    /// cut in [`EventSink::mem_stats`].
    last_now: u64,
}

impl<S> MeteredSink<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> MeteredSink<S> {
        MeteredSink {
            inner,
            counts: EventCounts::default(),
            last_now: 0,
        }
    }

    /// The tallies so far.
    #[must_use]
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// A reference to the inner sink.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps into the inner sink and the final tallies.
    #[must_use]
    pub fn into_parts(self) -> (S, EventCounts) {
        (self.inner, self.counts)
    }
}

impl<S: EventSink> EventSink for MeteredSink<S> {
    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        self.counts.blocks += 1;
        self.last_now = now;
        self.inner.block_entered(func, block, cost, now);
    }

    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        self.counts.phis += 1;
        self.inner.phi_resolved(func, block, phi, value, now);
    }

    fn load(&mut self, addr: u64, now: u64) {
        self.counts.loads += 1;
        self.inner.load(addr, now);
    }

    fn store(&mut self, addr: u64, now: u64) {
        self.counts.stores += 1;
        self.inner.store(addr, now);
    }

    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        self.counts.funcs += 1;
        self.inner.func_entered(func, frame_base, now);
    }

    fn func_exited(&mut self, func: FuncId, now: u64) {
        self.counts.exits += 1;
        self.inner.func_exited(func, now);
    }

    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        self.counts.builtins += 1;
        self.inner.builtin_called(caller, builtin, now);
    }

    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        self.counts.defs += 1;
        self.inner.value_defined(func, value, val, now);
    }

    fn mem_stats(&mut self, stats: crate::memory::MemStats) {
        // Delivered once per successful run, so it doubles as the
        // flight-recorder's end-of-run mark: total events delivered and
        // the cost reached by the last block entry.
        lp_obs::journal::record(
            lp_obs::EventKind::RunCompleted,
            self.counts.total(),
            self.last_now,
        );
        self.inner.mem_stats(stats);
    }

    fn fidelity(&self) -> Fidelity {
        // Counters only need per-block totals; the inner sink loses
        // nothing either way because the whole batch is forwarded (and
        // the per-instruction shim replays it verbatim if the inner sink
        // has no batch handler of its own).
        Fidelity::Block
    }

    fn block_batch(&mut self, batch: &BlockBatch) {
        if let Some(entry) = &batch.entry {
            self.counts.blocks += 1;
            self.last_now = entry.now;
        }
        // Per-kind tallies are maintained by the batch on push, so the
        // decorator meters a whole batch in O(1) — the inner sink is
        // the only consumer that walks the stream.
        self.counts.blocks += batch.count(BatchKind::Enter);
        self.counts.phis += batch.count(BatchKind::Phi);
        self.counts.loads += batch.count(BatchKind::Load);
        self.counts.stores += batch.count(BatchKind::Store);
        self.counts.defs += batch.count(BatchKind::Def);
        if let Some(now) = batch.last_enter_now() {
            self.last_now = now;
        }
        self.inner.block_batch(batch);
    }
}

/// Fans every event out to two sinks (`a` first, then `b`).
#[derive(Debug, Default, Clone)]
pub struct TeeSink<A, B> {
    /// The first receiver.
    pub a: A,
    /// The second receiver.
    pub b: B,
}

impl<A, B> TeeSink<A, B> {
    /// Combines two sinks.
    pub fn new(a: A, b: B) -> TeeSink<A, B> {
        TeeSink { a, b }
    }
}

impl<A: EventSink, B: EventSink> EventSink for TeeSink<A, B> {
    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        self.a.block_entered(func, block, cost, now);
        self.b.block_entered(func, block, cost, now);
    }

    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        self.a.phi_resolved(func, block, phi, value, now);
        self.b.phi_resolved(func, block, phi, value, now);
    }

    fn load(&mut self, addr: u64, now: u64) {
        self.a.load(addr, now);
        self.b.load(addr, now);
    }

    fn store(&mut self, addr: u64, now: u64) {
        self.a.store(addr, now);
        self.b.store(addr, now);
    }

    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        self.a.func_entered(func, frame_base, now);
        self.b.func_entered(func, frame_base, now);
    }

    fn func_exited(&mut self, func: FuncId, now: u64) {
        self.a.func_exited(func, now);
        self.b.func_exited(func, now);
    }

    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        self.a.builtin_called(caller, builtin, now);
        self.b.builtin_called(caller, builtin, now);
    }

    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        self.a.value_defined(func, value, val, now);
        self.b.value_defined(func, value, val, now);
    }

    fn mem_stats(&mut self, stats: crate::memory::MemStats) {
        self.a.mem_stats(stats);
        self.b.mem_stats(stats);
    }

    fn fidelity(&self) -> Fidelity {
        // Batch only when both receivers asked for batches; otherwise
        // stay per-instruction so a direct-delivery sink keeps its fast
        // path instead of paying for buffering it never wanted.
        if self.a.fidelity() == Fidelity::Block && self.b.fidelity() == Fidelity::Block {
            Fidelity::Block
        } else {
            Fidelity::PerInstruction
        }
    }

    fn block_batch(&mut self, batch: &BlockBatch) {
        self.a.block_batch(batch);
        self.b.block_batch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CountingSink;
    use crate::machine::{Engine, MachineConfig};
    use crate::trace::TraceSink;
    use crate::{Exec, ExecUnit};
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Global, Module, Type};

    fn run_with<S: EventSink>(m: &Module, engine: Engine, sink: &mut S) -> crate::RunResult {
        let unit = ExecUnit::with_engine(m, engine);
        Exec::new(&unit).sink(sink).run(&[]).unwrap().result
    }

    fn sample_module() -> Module {
        let mut m = Module::new("metered");
        let g = m.add_global(Global::zeroed("g", 4));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let p = fb.global_addr(g);
        let x = fb.const_i64(5);
        fb.store(x, p);
        let y = fb.load(Type::I64, p);
        let yf = fb.sitofp(y);
        let s = fb.call_builtin(lp_ir::Builtin::Sqrt, &[yf]);
        let si = fb.fptosi(s);
        fb.ret(Some(si));
        m.add_function(fb.finish().unwrap());
        m
    }

    #[test]
    fn metering_preserves_inner_sink_state() {
        let m = sample_module();
        let mut plain = CountingSink::default();
        let plain_result = run_with(&m, Engine::Tree, &mut plain);

        let mut metered = MeteredSink::new(CountingSink::default());
        let metered_result = run_with(&m, Engine::Tree, &mut metered);

        assert_eq!(plain_result.ret, metered_result.ret);
        assert_eq!(plain_result.cost, metered_result.cost);
        let (inner, counts) = metered.into_parts();
        assert_eq!(format!("{plain:?}"), format!("{inner:?}"));
        assert_eq!(counts.blocks, inner.blocks);
        assert_eq!(counts.loads, inner.loads);
        assert_eq!(counts.stores, inner.stores);
        assert!(counts.total() >= counts.blocks + counts.loads + counts.stores);
        assert_eq!(counts.funcs, 1);
        assert_eq!(counts.exits, 1);
        assert_eq!(counts.builtins, 1);
    }

    #[test]
    fn metered_run_cuts_a_journal_record() {
        let m = sample_module();
        let journal = lp_obs::journal::global();
        let (before, _) = journal.snapshot();
        let mut metered = MeteredSink::new(CountingSink::default());
        run_with(&m, Engine::Tree, &mut metered);
        let (after, records) = journal.snapshot();
        assert!(after > before, "run completion was not journaled");
        assert!(records
            .iter()
            .any(|r| r.kind == lp_obs::EventKind::RunCompleted && r.a == metered.counts().total()));
    }

    #[test]
    fn tee_delivers_to_both_sinks() {
        let m = sample_module();
        let mut tee = TeeSink::new(CountingSink::default(), CountingSink::default());
        run_with(&m, Engine::Tree, &mut tee);
        assert_eq!(format!("{:?}", tee.a), format!("{:?}", tee.b));
        assert!(tee.a.loads > 0 && tee.a.stores > 0);
        // Both children declare block fidelity, so under bc the tee
        // forwards whole batches — with identical results.
        let mut batched = TeeSink::new(CountingSink::default(), CountingSink::default());
        assert_eq!(batched.fidelity(), Fidelity::Block);
        run_with(&m, Engine::Bc, &mut batched);
        assert_eq!(format!("{:?}", batched.a), format!("{:?}", tee.a));
        // A per-instruction child demotes the whole tee.
        assert_eq!(
            TeeSink::new(CountingSink::default(), TraceSink::new(4)).fidelity(),
            Fidelity::PerInstruction
        );
    }

    #[test]
    fn mut_ref_sinks_compose() {
        // `&mut S` is itself a sink, so decorators can borrow.
        let m = sample_module();
        let mut counting = CountingSink::default();
        let mut metered = MeteredSink::new(&mut counting);
        run_with(&m, Engine::Tree, &mut metered);
        let counts = metered.counts();
        assert_eq!(counts.loads, counting.loads);
    }

    #[test]
    fn batched_and_per_instruction_metering_agree() {
        // The satellite conformance test: a metered run must produce
        // identical counter totals whether events arrive one by one
        // (tree engine) or as block batches (bc engine) — and an inner
        // per-instruction sink behind the batching decorator must see a
        // byte-identical stream via the compatibility shim.
        let mut m = Module::new("conformance");
        let g = m.add_global(Global::zeroed("g", 4));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let p = fb.global_addr(g);
        let x = fb.const_i64(5);
        fb.store(x, p);
        let y = fb.load(Type::I64, p);
        fb.ret(Some(y));
        m.add_function(fb.finish().unwrap());
        let fid = m.function_by_name("main").unwrap();
        let cfg = MachineConfig {
            watched_values: vec![(fid, y)],
            ..MachineConfig::default()
        };

        let run = |engine: Engine| {
            let unit = ExecUnit::with_engine(&m, engine);
            let mut metered = MeteredSink::new(TraceSink::new(64));
            let result = Exec::new(&unit)
                .sink(&mut metered)
                .config(cfg.clone())
                .run(&[])
                .unwrap()
                .result;
            let counts = metered.counts();
            let trace = metered.inner().render();
            (result, counts, trace)
        };
        let (tree_result, tree_counts, tree_trace) = run(Engine::Tree);
        let (bc_result, bc_counts, bc_trace) = run(Engine::Bc);
        assert_eq!(tree_result, bc_result);
        assert_eq!(tree_counts, bc_counts, "counter totals diverged");
        assert_eq!(tree_trace, bc_trace, "shim-replayed stream diverged");
        assert_eq!(tree_counts.defs, 1, "watched def must be counted");
        assert!(tree_counts.loads >= 1 && tree_counts.stores >= 1);
    }
}
