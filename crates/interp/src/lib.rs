//! # lp-interp — deterministic execution substrate
//!
//! Executes [`lp_ir`] modules and delivers exactly the call-back stream
//! Loopapalooza's compile-time instrumentation would insert into a native
//! binary (paper §III-A): per-block dynamic IR costs, basic-block entries
//! (from which the run-time component derives loop entry / iteration /
//! exit boundaries), memory access addresses, function entry/exit, and
//! per-iteration register-LCD (phi) values.
//!
//! "Time" in the limit study is the dynamic LLVM-IR instruction count —
//! no microarchitecture is modelled — so an interpreter is a faithful
//! substitute for instrumented native execution.
//!
//! Two engines implement these semantics: the tree walk (the reference
//! oracle) and the flat pre-resolved bytecode engine (`lp-bc`, the fast
//! path — see [`bytecode`]). Both are driven through the compile-once /
//! execute-many [`ExecUnit`]/[`Exec`] surface and are observationally
//! identical: same results, same dynamic cost, same event stream.
//!
//! # Example
//!
//! ```
//! use lp_interp::{Engine, Exec, ExecUnit, Value};
//! use lp_ir::builder::FunctionBuilder;
//! use lp_ir::{Module, Type};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut module = Module::new("demo");
//! let mut fb = FunctionBuilder::new("main", &[], Type::I64);
//! let x = fb.const_i64(21);
//! let y = fb.add(x, x);
//! fb.ret(Some(y));
//! module.add_function(fb.finish()?);
//!
//! let unit = ExecUnit::with_engine(&module, Engine::Bc);
//! let out = Exec::new(&unit).run(&[])?;
//! assert_eq!(out.result.ret, Value::I(42));
//! # Ok(())
//! # }
//! ```

pub mod bytecode;
mod compile;
pub mod events;
pub mod exec;
pub mod machine;
pub mod memory;
pub mod metered;
pub mod replay;
pub mod trace;
pub mod value;

pub use bytecode::CompiledModule;
pub use events::{
    BatchEvent, BatchKind, BlockBatch, BlockEntry, CountingSink, EventSink, Fidelity, NullSink,
};
pub use exec::{Exec, ExecOut, ExecUnit};
pub use machine::{Engine, Machine, MachineConfig, RunResult};
pub use memory::{MemStats, Memory, GLOBAL_BASE, HEAP_BASE, STACK_BASE};
pub use metered::{EventCounts, MeteredSink, TeeSink};
pub use replay::{
    run_chunk, ChunkOut, ChunkRequest, ChunkSpec, LoopShape, ParallelExec, PhiKind, ReplayPlan,
    SerialExec, StepExpr,
};
pub use trace::{TraceEvent, TraceSink};
pub use value::Value;

use std::fmt;

/// Runtime traps and resource-limit failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Load/store address not 8-byte aligned.
    Unaligned(u64),
    /// Load/store through the null page (address < 0x1000).
    NullDeref(u64),
    /// The configured dynamic-cost budget was exhausted.
    FuelExhausted,
    /// Call depth exceeded the configured limit.
    CallDepthExceeded,
    /// A value had the wrong runtime type for an operation (indicates an
    /// unverified module; run `lp_ir::verify_module` first).
    TypeConfusion(&'static str),
    /// Math-domain trap (e.g. `log` of a non-positive number).
    MathDomain(&'static str),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivByZero => write!(f, "integer division by zero"),
            InterpError::Unaligned(a) => write!(f, "unaligned memory access at {a:#x}"),
            InterpError::NullDeref(a) => write!(f, "null-page dereference at {a:#x}"),
            InterpError::FuelExhausted => write!(f, "dynamic cost budget exhausted"),
            InterpError::CallDepthExceeded => write!(f, "call depth limit exceeded"),
            InterpError::TypeConfusion(what) => write!(f, "runtime type confusion in {what}"),
            InterpError::MathDomain(what) => write!(f, "math domain error in {what}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Convenience alias.
pub type Result<T, E = InterpError> = std::result::Result<T, E>;
