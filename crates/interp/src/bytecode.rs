//! The flat pre-resolved bytecode engine (`lp-bc`).
//!
//! [`CompiledModule`] is the compile-once artifact produced by
//! [`crate::compile`]; the dispatch loop below executes it with
//! observationally identical semantics to the tree walk
//! (`Machine::call_function`): same results, same dynamic cost, same
//! event stream with the same `now` stamps, same error on the same
//! instruction. The speed comes from what was pre-resolved — operands
//! are direct register indices, branch targets are absolute offsets,
//! per-edge phi-run tables replace the per-entry `incomings` search,
//! block costs are table lookups, and the dominant dispatch pairs are
//! fused ([`Bc::IcmpBr`], [`Bc::GepLoad`]) — never from skipping
//! bookkeeping: fused superinstructions still tick the heat table,
//! charge fuel, and stamp events once per constituent instruction.
//!
//! The loop also implements the block-granular event batching path:
//! when the sink declares [`crate::Fidelity::Block`], per-instruction
//! events are buffered into one [`crate::BlockBatch`] per executed
//! block and delivered through [`EventSink::block_batch`], flushed at
//! every block boundary and before any function-level event so global
//! event order is preserved exactly.

use crate::events::{BlockEntry, EventSink};
use crate::machine::{exec_bin, Machine};
use crate::value::Value;
use crate::{InterpError, Result};
use lp_ir::{
    BinOp, BlockId, Builtin, CastKind, FcmpPred, FuncId, IcmpPred, Module, Opcode, Type, ValueId,
};

/// One flat bytecode instruction. Operands are dense `u32` indices into
/// the function's register file (the same indexing as [`ValueId`], so
/// the replay probe and chunk workers interoperate unchanged); branch
/// operands are indices into the function's [`Edge`] table.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Bc {
    /// Binary arithmetic/logic.
    Bin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Integer comparison.
    Icmp {
        pred: IcmpPred,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Ordered float comparison.
    Fcmp {
        pred: FcmpPred,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Ternary select.
    Select {
        dst: u32,
        cond: u32,
        then_val: u32,
        else_val: u32,
    },
    /// Value cast.
    Cast { kind: CastKind, dst: u32, val: u32 },
    /// Memory load.
    Load { ty: Type, dst: u32, addr: u32 },
    /// Memory store (`dst` receives `Unit`, mirroring the tree walk).
    Store { dst: u32, val: u32, addr: u32 },
    /// Address computation: `base + index * scale + offset`.
    Gep {
        dst: u32,
        base: u32,
        index: u32,
        scale: i64,
        offset: i64,
    },
    /// Fused `gep` + `load` superinstruction: computes the address,
    /// writes it to `gep_dst`, then loads through it into `dst`.
    GepLoad {
        ty: Type,
        gep_dst: u32,
        dst: u32,
        base: u32,
        index: u32,
        scale: i64,
        offset: i64,
    },
    /// Fused `gep` + `store` superinstruction: computes the address,
    /// writes it to `gep_dst`, then stores `val` through it.
    GepStore {
        gep_dst: u32,
        dst: u32,
        val: u32,
        base: u32,
        index: u32,
        scale: i64,
        offset: i64,
    },
    /// Fused pair of adjacent binary ops (the second may read the
    /// first's destination; they execute strictly in order).
    BinBin {
        op1: BinOp,
        dst1: u32,
        lhs1: u32,
        rhs1: u32,
        op2: BinOp,
        dst2: u32,
        lhs2: u32,
        rhs2: u32,
    },
    /// Fused `store` + immediately following binary op. The store
    /// executes first; it only defines `Unit`, so order is the only
    /// constraint.
    StoreBin {
        sdst: u32,
        val: u32,
        addr: u32,
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Fused `load` + immediately following binary op. The load defines
    /// `ldst` first, so the bin is free to read it.
    LoadBin {
        ty: Type,
        ldst: u32,
        addr: u32,
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Fused block-terminal binary op + unconditional branch.
    BinBr {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        edge: u32,
    },
    /// Stack allocation.
    Alloca { dst: u32, words: u32 },
    /// Direct call of a user function.
    CallFunc {
        dst: u32,
        func: u32,
        args: Box<[u32]>,
    },
    /// Direct call of a builtin.
    CallBuiltin {
        dst: u32,
        builtin: Builtin,
        args: Box<[u32]>,
    },
    /// Unconditional branch.
    Br { edge: u32 },
    /// Conditional branch.
    CondBr {
        cond: u32,
        then_edge: u32,
        else_edge: u32,
    },
    /// Fused `icmp` + `cond_br` superinstruction: compares, writes the
    /// `i1` result to `dst`, then branches on it.
    IcmpBr {
        pred: IcmpPred,
        dst: u32,
        lhs: u32,
        rhs: u32,
        then_edge: u32,
        else_edge: u32,
    },
    /// Return a value.
    Ret { val: u32 },
    /// Return void.
    RetVoid,
}

/// A pre-resolved CFG edge: where to jump, which block that is (for
/// events, heat attribution, and replay interception), the target's
/// static cost, and the phi-run move table resolving the target's phi
/// prefix for this specific predecessor.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Edge {
    /// Absolute pc of the target block's first instruction.
    pub(crate) target: u32,
    /// The target block id.
    pub(crate) block: BlockId,
    /// Static cost of the target block.
    pub(crate) cost: u64,
    /// Parallel-copy `(dst, src)` register moves for the target's phis.
    pub(crate) moves: Box<[(u32, u32)]>,
    /// `true` when no move reads an earlier move's destination, so the
    /// parallel copy can be executed as a plain in-order loop without
    /// the two-phase scratch buffer (see `compile::compile_function`).
    pub(crate) sequential: bool,
}

/// One compiled function: flat code plus its edge table.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BcFunc {
    /// Flat instruction stream; blocks are contiguous, entry at pc 0.
    pub(crate) code: Vec<Bc>,
    /// Pre-resolved CFG edges referenced by branch instructions.
    pub(crate) edges: Vec<Edge>,
    /// Static cost of the entry block.
    pub(crate) entry_cost: u64,
}

/// A module compiled to flat bytecode — the compile-once artifact an
/// [`crate::ExecUnit`] holds and executes many times. Owns no borrows
/// of the source module; register indexing matches [`ValueId`] so the
/// per-function register templates, replay probe, and chunk workers are
/// shared with the tree walk unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModule {
    /// Compiled functions, indexed by [`FuncId`].
    pub(crate) funcs: Vec<BcFunc>,
}

impl CompiledModule {
    /// Compiles `module`. Pure and infallible; the module is expected to
    /// be verified (the tree walk has the same precondition).
    #[must_use]
    pub fn compile(module: &Module) -> CompiledModule {
        crate::compile::compile_module(module)
    }
}

/// Integer comparison with the tree walk's pointer special case
/// (`ptr`/`ptr` compares are allowed and compare the raw addresses).
#[inline]
fn icmp_eval(pred: IcmpPred, lv: Value, rv: Value) -> Result<bool> {
    let (l, r) = match (lv, rv) {
        (Value::P(a), Value::P(b)) => (a as i64, b as i64),
        (a, b) => (a.as_i64()?, b.as_i64()?),
    };
    Ok(match pred {
        IcmpPred::Eq => l == r,
        IcmpPred::Ne => l != r,
        IcmpPred::Slt => l < r,
        IcmpPred::Sle => l <= r,
        IcmpPred::Sgt => l > r,
        IcmpPred::Sge => l >= r,
    })
}

#[inline]
fn fcmp_eval(pred: FcmpPred, lv: Value, rv: Value) -> Result<bool> {
    let l = lv.as_f64()?;
    let r = rv.as_f64()?;
    Ok(match pred {
        FcmpPred::Oeq => l == r,
        FcmpPred::One => l != r,
        FcmpPred::Olt => l < r,
        FcmpPred::Ole => l <= r,
        FcmpPred::Ogt => l > r,
        FcmpPred::Oge => l >= r,
    })
}

#[inline]
fn cast_eval(kind: CastKind, v: Value) -> Result<Value> {
    Ok(match kind {
        CastKind::SiToFp => Value::F(v.as_i64()? as f64),
        CastKind::FpToSi => Value::I(v.as_f64()? as i64),
        CastKind::PtrToInt => Value::I(v.as_ptr()? as i64),
        CastKind::IntToPtr => Value::P(v.as_i64()? as u64),
        CastKind::BoolToInt => Value::I(i64::from(v.as_bool()?)),
    })
}

/// Flattened GEP address arithmetic (wrapping, as in the tree walk).
#[inline]
fn gep_addr(base: Value, index: Value, scale: i64, offset: i64) -> Result<u64> {
    let b = base.as_ptr()?;
    let i = index.as_i64()?;
    Ok((b as i64)
        .wrapping_add(i.wrapping_mul(scale))
        .wrapping_add(offset) as u64)
}

/// Batch size cap, checked at block entry so blocks stay contiguous: a
/// batch flushes before opening another block once it holds this many
/// events. Large enough to amortize per-delivery bookkeeping (flush,
/// metering, the consumer's hoisted preamble) over dozens of blocks,
/// small enough to keep the working set inside L1.
const BATCH_CAP: usize = 128;

impl<'a, S: EventSink> Machine<'a, S> {
    /// Delivers the pending block batch, if any, and resets the buffer
    /// for the next one. `func`/`block` are left in place so a block
    /// continuation after a call boundary batches under the right block
    /// (with `entry: None`).
    pub(crate) fn flush_batch(&mut self) {
        if self.batch.entry.is_some() || !self.batch.is_empty() {
            self.sink.block_batch(&self.batch);
            self.batch.entry = None;
            self.batch.clear();
        }
    }

    /// Block-entry event: batched or direct, per the sink's fidelity.
    /// A batched entry extends the pending batch with an in-stream
    /// marker; only the size cap (or a call boundary, elsewhere) cuts a
    /// delivery, so one batch spans a run of blocks.
    #[inline]
    fn enter_block(&mut self, fid: FuncId, block: BlockId, cost: u64, now: u64) {
        if self.batching {
            if self.batch.len() >= BATCH_CAP {
                self.flush_batch();
            }
            if self.batch.entry.is_none() && self.batch.is_empty() {
                // Fresh batch (frame start, post-flush, or an eventless
                // continuation): this entry opens it.
                self.batch.func = fid;
                self.batch.block = block;
                self.batch.entry = Some(BlockEntry { cost, now });
            } else {
                self.batch.push_enter(block, cost, now);
            }
        } else {
            self.sink.block_entered(fid, block, cost, now);
        }
    }

    #[inline]
    fn emit_phi(&mut self, fid: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        if self.batching {
            self.batch.push_phi(phi, value, now);
        } else {
            self.sink.phi_resolved(fid, block, phi, value, now);
        }
    }

    #[inline]
    fn emit_load(&mut self, addr: u64, now: u64) {
        if self.batching {
            self.batch.push_load(addr, now);
        } else {
            self.sink.load(addr, now);
        }
    }

    #[inline]
    fn emit_store(&mut self, addr: u64, now: u64) {
        if self.batching {
            self.batch.push_store(addr, now);
        } else {
            self.sink.store(addr, now);
        }
    }

    #[inline]
    fn emit_def(&mut self, fid: FuncId, value: ValueId, val: Value, now: u64) {
        if self.batching {
            self.batch.push_def(value, val, now);
        } else {
            self.sink.value_defined(fid, value, val, now);
        }
    }

    /// Writes an instruction result and reports it if watched —
    /// the bytecode twin of the tree walk's per-instruction epilogue.
    #[inline]
    fn set_reg(
        &mut self,
        fid: FuncId,
        watch: bool,
        regs: &mut [Value],
        dst: u32,
        v: Value,
        now: u64,
    ) {
        regs[dst as usize] = v;
        if watch && self.watched[fid.index()][dst as usize] {
            self.emit_def(fid, ValueId(dst), v, now);
        }
    }

    /// Takes a pre-resolved CFG edge: block-entry event, phi-run moves
    /// (parallel-copy, with per-phi heat ticks and events exactly as the
    /// tree walk orders them), then the replay interception check. The
    /// caller updates its `block`/`pc` from the edge afterwards.
    ///
    /// `cost` is the frame's live fuel counter (see `exec_frame_bc`);
    /// phi resolution charges nothing, but replay interception runs
    /// whole loop chunks, so the counter is synced across it.
    fn take_edge(
        &mut self,
        fid: FuncId,
        func: &'a lp_ir::Function,
        from: BlockId,
        e: &Edge,
        regs: &mut [Value],
        cost: &mut u64,
    ) -> Result<()> {
        self.enter_block(fid, e.block, e.cost, *cost);
        if e.sequential {
            // No move reads an earlier move's destination (the compiler
            // proved it), so the parallel copy degenerates to a plain
            // loop — same values, same event order, no scratch buffer.
            for &(dst, src) in e.moves.iter() {
                let v = regs[src as usize];
                regs[dst as usize] = v;
                self.heat_tick(fid, e.block, Opcode::Phi);
                self.emit_phi(fid, e.block, ValueId(dst), v, *cost);
            }
        } else {
            let mut updates = std::mem::take(&mut self.phi_scratch);
            for &(dst, src) in e.moves.iter() {
                updates.push((ValueId(dst), regs[src as usize]));
            }
            for &(r, v) in &updates {
                regs[r.index()] = v;
                self.heat_tick(fid, e.block, Opcode::Phi);
                self.emit_phi(fid, e.block, r, v, *cost);
            }
            updates.clear();
            self.phi_scratch = updates;
        }
        if self.replay.is_some() {
            self.cost = *cost;
            let r = self.maybe_replay(fid, func, e.block, Some(from), regs);
            *cost = self.cost;
            r?;
        }
        Ok(())
    }

    /// The bytecode dispatch loop — the fast twin of `call_function`.
    /// Every observable (events, `now` stamps, heat ticks, fuel charges,
    /// error instruction) matches the tree walk exactly; see the module
    /// docs for where the speed comes from.
    ///
    /// This wrapper keeps `self.cost` authoritative at the call
    /// boundary; the loop itself runs on a frame-local fuel counter
    /// (`exec_frame_bc`) so the per-instruction charge is register
    /// arithmetic, not a load/store round-trip through `self`.
    pub(crate) fn call_function_bc(
        &mut self,
        code: &CompiledModule,
        fid: FuncId,
        args: &[Value],
    ) -> Result<Value> {
        let mut cost = self.cost;
        // When the sink statically promises every callback is a no-op
        // and nothing else can observe the run (no watched values, no
        // live sampler, no replay plan), dispatch through the silent
        // loop: same charges, same memory traffic, same trap points —
        // minus the event plumbing nothing is listening to. `S::INERT`
        // is a constant, so non-null sinks never even compile the check.
        let r = if S::INERT
            && !self.force_exact
            && self.heat.is_none()
            && self.replay.is_none()
            && self.watched[fid.index()].is_empty()
        {
            self.exec_frame_silent(code, fid, args, &mut cost)
        } else {
            self.exec_frame_bc(code, fid, args, &mut cost)
        };
        self.cost = cost;
        r
    }

    /// The silent twin of `exec_frame_bc`: selected by
    /// `call_function_bc` when no observer exists. Register writes,
    /// memory operations, trap points, and the final cost are identical;
    /// every sink/heat/replay hook is gone rather than checked, and two
    /// further liberties are taken — both invisible by construction:
    ///
    /// - **Block-granular fuel.** Instead of one increment-and-compare
    ///   per instruction, the whole static cost of a block is added when
    ///   the block is entered (the frame adds its entry block's cost,
    ///   every edge-take adds its target's). On success the total is
    ///   exactly the per-instruction sum — blocks only exit early by
    ///   erroring — and no spurious exhaustion is possible: the counter
    ///   stays monotone and never exceeds the true final cost, so a run
    ///   the reference engine completes passes every check here too. A
    ///   run that *errors* may report the wrong error (a mid-block trap
    ///   after the precharged counter passed `max_cost`, or an
    ///   exhaustion surfacing at a block boundary instead of
    ///   mid-block); `Exec::run` catches any silent-path error and
    ///   re-executes the run on the exact observing loop — errors are
    ///   cold, the machine state of a failed run is discarded anyway,
    ///   and the re-run reproduces the reference error and error point
    ///   precisely.
    /// - **Unchecked register access.** Every operand index was
    ///   validated against the function's register-file length once at
    ///   compile time (`compile::validate`), so per-dispatch bounds
    ///   checks carry no information and are elided.
    fn exec_frame_silent(
        &mut self,
        code: &CompiledModule,
        fid: FuncId,
        args: &[Value],
        cost: &mut u64,
    ) -> Result<Value> {
        self.depth += 1;
        if self.depth > self.config.max_call_depth {
            return Err(InterpError::CallDepthExceeded);
        }
        let bf = &code.funcs[fid.index()];
        let max_cost = self.config.max_cost;
        let mut regs = match self.frame_pools[fid.index()].pop() {
            // A recycled frame still holds this function's constants
            // (instruction destinations never alias constant slots) and
            // its stale `Param`/`Inst` slots are dead: verified SSA
            // defines every register before any read.
            Some(regs) => regs,
            None => self.reg_templates[fid.index()].clone(),
        };
        regs[..args.len()].copy_from_slice(args);
        let frame_mark = self.memory.stack_top();
        *cost += bf.entry_cost;
        if *cost > max_cost {
            return Err(InterpError::FuelExhausted);
        }

        // SAFETY (for every `get_unchecked` below): `compile::validate`
        // proved, for this exact `CompiledModule`, that every operand
        // index is below the function's register-file length (`regs`
        // was just sized from the same function's template), that every
        // branch names an in-range edge leading to an in-range pc, and
        // that every non-terminator is followed by another instruction —
        // so `pc` stays in range and operand indexing cannot go out of
        // bounds. `ExecUnit` is the only constructor of bytecode runs
        // and always pairs the compiled module with the module it was
        // compiled from.
        macro_rules! reg {
            ($i:expr) => {
                unsafe { *regs.get_unchecked($i as usize) }
            };
        }
        macro_rules! set {
            ($i:expr, $v:expr) => {{
                let v = $v;
                unsafe { *regs.get_unchecked_mut($i as usize) = v }
            }};
        }
        macro_rules! take_edge {
            ($e:expr) => {{
                let e = $e;
                *cost += e.cost;
                if *cost > max_cost {
                    return Err(InterpError::FuelExhausted);
                }
                take_edge_silent(e, &mut regs, &mut self.phi_scratch);
                e.target as usize
            }};
        }

        let mut pc: usize = 0;
        let ret = loop {
            let inst = unsafe { bf.code.get_unchecked(pc) };
            pc += 1;
            match inst {
                Bc::Bin { op, dst, lhs, rhs } => {
                    set!(*dst, exec_bin(*op, reg!(*lhs), reg!(*rhs))?);
                }
                Bc::Icmp {
                    pred,
                    dst,
                    lhs,
                    rhs,
                } => {
                    set!(*dst, Value::B(icmp_eval(*pred, reg!(*lhs), reg!(*rhs))?));
                }
                Bc::Fcmp {
                    pred,
                    dst,
                    lhs,
                    rhs,
                } => {
                    set!(*dst, Value::B(fcmp_eval(*pred, reg!(*lhs), reg!(*rhs))?));
                }
                Bc::Select {
                    dst,
                    cond,
                    then_val,
                    else_val,
                } => {
                    let c = reg!(*cond).as_bool()?;
                    set!(*dst, reg!(if c { *then_val } else { *else_val }));
                }
                Bc::Cast { kind, dst, val } => {
                    set!(*dst, cast_eval(*kind, reg!(*val))?);
                }
                Bc::Load { ty, dst, addr } => {
                    let a = reg!(*addr).as_ptr()?;
                    let bits = self.memory.read(a)?;
                    set!(*dst, Value::from_bits(*ty, bits));
                }
                Bc::Store { dst, val, addr } => {
                    let v = reg!(*val).to_bits()?;
                    let a = reg!(*addr).as_ptr()?;
                    self.memory.write(a, v)?;
                    set!(*dst, Value::Unit);
                }
                Bc::Gep {
                    dst,
                    base,
                    index,
                    scale,
                    offset,
                } => {
                    let a = gep_addr(reg!(*base), reg!(*index), *scale, *offset)?;
                    set!(*dst, Value::P(a));
                }
                Bc::GepLoad {
                    ty,
                    gep_dst,
                    dst,
                    base,
                    index,
                    scale,
                    offset,
                } => {
                    let a = gep_addr(reg!(*base), reg!(*index), *scale, *offset)?;
                    set!(*gep_dst, Value::P(a));
                    let bits = self.memory.read(a)?;
                    set!(*dst, Value::from_bits(*ty, bits));
                }
                Bc::GepStore {
                    gep_dst,
                    dst,
                    val,
                    base,
                    index,
                    scale,
                    offset,
                } => {
                    let a = gep_addr(reg!(*base), reg!(*index), *scale, *offset)?;
                    set!(*gep_dst, Value::P(a));
                    let v = reg!(*val).to_bits()?;
                    self.memory.write(a, v)?;
                    set!(*dst, Value::Unit);
                }
                Bc::BinBin {
                    op1,
                    dst1,
                    lhs1,
                    rhs1,
                    op2,
                    dst2,
                    lhs2,
                    rhs2,
                } => {
                    set!(*dst1, exec_bin(*op1, reg!(*lhs1), reg!(*rhs1))?);
                    set!(*dst2, exec_bin(*op2, reg!(*lhs2), reg!(*rhs2))?);
                }
                Bc::StoreBin {
                    sdst,
                    val,
                    addr,
                    op,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let v = reg!(*val).to_bits()?;
                    let a = reg!(*addr).as_ptr()?;
                    self.memory.write(a, v)?;
                    set!(*sdst, Value::Unit);
                    set!(*dst, exec_bin(*op, reg!(*lhs), reg!(*rhs))?);
                }
                Bc::LoadBin {
                    ty,
                    ldst,
                    addr,
                    op,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = reg!(*addr).as_ptr()?;
                    let bits = self.memory.read(a)?;
                    set!(*ldst, Value::from_bits(*ty, bits));
                    set!(*dst, exec_bin(*op, reg!(*lhs), reg!(*rhs))?);
                }
                Bc::BinBr {
                    op,
                    dst,
                    lhs,
                    rhs,
                    edge,
                } => {
                    set!(*dst, exec_bin(*op, reg!(*lhs), reg!(*rhs))?);
                    pc = take_edge!(unsafe { bf.edges.get_unchecked(*edge as usize) });
                }
                Bc::Alloca { dst, words } => {
                    let base = self.memory.stack_alloc(u64::from(*words));
                    set!(*dst, Value::P(base));
                }
                Bc::CallFunc { dst, func, args } => {
                    let mut argbuf = [Value::Unit; 8];
                    self.cost = *cost;
                    let v = if args.len() <= argbuf.len() {
                        for (slot, &a) in argbuf.iter_mut().zip(args.iter()) {
                            *slot = reg!(a);
                        }
                        self.call_function_bc(code, FuncId(*func), &argbuf[..args.len()])
                    } else {
                        let argv: Vec<Value> = args.iter().map(|&a| reg!(a)).collect();
                        self.call_function_bc(code, FuncId(*func), &argv)
                    };
                    *cost = self.cost;
                    set!(*dst, v?);
                }
                Bc::CallBuiltin { dst, builtin, args } => {
                    let mut argbuf = [Value::Unit; 8];
                    self.cost = *cost;
                    let v = if args.len() <= argbuf.len() {
                        for (slot, &a) in argbuf.iter_mut().zip(args.iter()) {
                            *slot = reg!(a);
                        }
                        self.exec_builtin(*builtin, &argbuf[..args.len()])
                    } else {
                        let argv: Vec<Value> = args.iter().map(|&a| reg!(a)).collect();
                        self.exec_builtin(*builtin, &argv)
                    };
                    *cost = self.cost;
                    set!(*dst, v?);
                }
                Bc::Br { edge } => {
                    pc = take_edge!(unsafe { bf.edges.get_unchecked(*edge as usize) });
                }
                Bc::CondBr {
                    cond,
                    then_edge,
                    else_edge,
                } => {
                    let c = reg!(*cond).as_bool()?;
                    pc = take_edge!(unsafe {
                        bf.edges
                            .get_unchecked(if c { *then_edge } else { *else_edge } as usize)
                    });
                }
                Bc::IcmpBr {
                    pred,
                    dst,
                    lhs,
                    rhs,
                    then_edge,
                    else_edge,
                } => {
                    let c = icmp_eval(*pred, reg!(*lhs), reg!(*rhs))?;
                    set!(*dst, Value::B(c));
                    pc = take_edge!(unsafe {
                        bf.edges
                            .get_unchecked(if c { *then_edge } else { *else_edge } as usize)
                    });
                }
                Bc::Ret { val } => break reg!(*val),
                Bc::RetVoid => break Value::Unit,
            }
        };
        self.memory.stack_release(frame_mark);
        self.depth -= 1;
        self.frame_pools[fid.index()].push(regs);
        Ok(ret)
    }

    fn exec_frame_bc(
        &mut self,
        code: &CompiledModule,
        fid: FuncId,
        args: &[Value],
        cost: &mut u64,
    ) -> Result<Value> {
        self.depth += 1;
        if self.depth > self.config.max_call_depth {
            return Err(InterpError::CallDepthExceeded);
        }
        let func = self.module.function(fid);
        let bf = &code.funcs[fid.index()];
        let max_cost = self.config.max_cost;
        debug_assert_eq!(args.len(), func.params.len());
        let mut regs = self.frame_pool.pop().unwrap_or_default();
        regs.clone_from(&self.reg_templates[fid.index()]);
        regs[..args.len()].copy_from_slice(args);
        let frame_mark = self.memory.stack_top();
        self.sink.func_entered(fid, frame_mark, *cost);

        let watch = !self.watched[fid.index()].is_empty();
        let mut block = BlockId::ENTRY;
        let mut pc: usize = 0;
        self.enter_block(fid, block, bf.entry_cost, *cost);
        if self.replay.is_some() {
            self.cost = *cost;
            let r = self.maybe_replay(fid, func, block, None, &mut regs);
            *cost = self.cost;
            r?;
        }

        let ret = loop {
            let inst = &bf.code[pc];
            pc += 1;
            match inst {
                Bc::Bin { op, dst, lhs, rhs } => {
                    self.heat_tick(fid, block, Opcode::Bin);
                    charge(cost, max_cost)?;
                    let v = exec_bin(*op, regs[*lhs as usize], regs[*rhs as usize])?;
                    self.set_reg(fid, watch, &mut regs, *dst, v, *cost);
                }
                Bc::Icmp {
                    pred,
                    dst,
                    lhs,
                    rhs,
                } => {
                    self.heat_tick(fid, block, Opcode::Icmp);
                    charge(cost, max_cost)?;
                    let c = icmp_eval(*pred, regs[*lhs as usize], regs[*rhs as usize])?;
                    self.set_reg(fid, watch, &mut regs, *dst, Value::B(c), *cost);
                }
                Bc::Fcmp {
                    pred,
                    dst,
                    lhs,
                    rhs,
                } => {
                    self.heat_tick(fid, block, Opcode::Fcmp);
                    charge(cost, max_cost)?;
                    let c = fcmp_eval(*pred, regs[*lhs as usize], regs[*rhs as usize])?;
                    self.set_reg(fid, watch, &mut regs, *dst, Value::B(c), *cost);
                }
                Bc::Select {
                    dst,
                    cond,
                    then_val,
                    else_val,
                } => {
                    self.heat_tick(fid, block, Opcode::Select);
                    charge(cost, max_cost)?;
                    let c = regs[*cond as usize].as_bool()?;
                    let v = regs[if c { *then_val } else { *else_val } as usize];
                    self.set_reg(fid, watch, &mut regs, *dst, v, *cost);
                }
                Bc::Cast { kind, dst, val } => {
                    self.heat_tick(fid, block, Opcode::Cast);
                    charge(cost, max_cost)?;
                    let v = cast_eval(*kind, regs[*val as usize])?;
                    self.set_reg(fid, watch, &mut regs, *dst, v, *cost);
                }
                Bc::Load { ty, dst, addr } => {
                    self.heat_tick(fid, block, Opcode::Load);
                    charge(cost, max_cost)?;
                    let a = regs[*addr as usize].as_ptr()?;
                    let bits = self.memory.read(a)?;
                    self.emit_load(a, *cost);
                    self.set_reg(
                        fid,
                        watch,
                        &mut regs,
                        *dst,
                        Value::from_bits(*ty, bits),
                        *cost,
                    );
                }
                Bc::Store { dst, val, addr } => {
                    self.heat_tick(fid, block, Opcode::Store);
                    charge(cost, max_cost)?;
                    let v = regs[*val as usize].to_bits()?;
                    let a = regs[*addr as usize].as_ptr()?;
                    self.memory.write(a, v)?;
                    self.emit_store(a, *cost);
                    self.set_reg(fid, watch, &mut regs, *dst, Value::Unit, *cost);
                }
                Bc::Gep {
                    dst,
                    base,
                    index,
                    scale,
                    offset,
                } => {
                    self.heat_tick(fid, block, Opcode::Gep);
                    charge(cost, max_cost)?;
                    let a = gep_addr(regs[*base as usize], regs[*index as usize], *scale, *offset)?;
                    self.set_reg(fid, watch, &mut regs, *dst, Value::P(a), *cost);
                }
                Bc::GepLoad {
                    ty,
                    gep_dst,
                    dst,
                    base,
                    index,
                    scale,
                    offset,
                } => {
                    // Fused, but each half keeps its own tick + charge so
                    // cost stamps and fuel-exhaustion points are exact.
                    self.heat_tick(fid, block, Opcode::Gep);
                    charge(cost, max_cost)?;
                    let a = gep_addr(regs[*base as usize], regs[*index as usize], *scale, *offset)?;
                    self.set_reg(fid, watch, &mut regs, *gep_dst, Value::P(a), *cost);
                    self.heat_tick(fid, block, Opcode::Load);
                    charge(cost, max_cost)?;
                    let bits = self.memory.read(a)?;
                    self.emit_load(a, *cost);
                    self.set_reg(
                        fid,
                        watch,
                        &mut regs,
                        *dst,
                        Value::from_bits(*ty, bits),
                        *cost,
                    );
                }
                Bc::GepStore {
                    gep_dst,
                    dst,
                    val,
                    base,
                    index,
                    scale,
                    offset,
                } => {
                    // Fused, but each half keeps its own tick + charge so
                    // cost stamps and fuel-exhaustion points are exact.
                    self.heat_tick(fid, block, Opcode::Gep);
                    charge(cost, max_cost)?;
                    let a = gep_addr(regs[*base as usize], regs[*index as usize], *scale, *offset)?;
                    self.set_reg(fid, watch, &mut regs, *gep_dst, Value::P(a), *cost);
                    self.heat_tick(fid, block, Opcode::Store);
                    charge(cost, max_cost)?;
                    let v = regs[*val as usize].to_bits()?;
                    self.memory.write(a, v)?;
                    self.emit_store(a, *cost);
                    self.set_reg(fid, watch, &mut regs, *dst, Value::Unit, *cost);
                }
                Bc::BinBin {
                    op1,
                    dst1,
                    lhs1,
                    rhs1,
                    op2,
                    dst2,
                    lhs2,
                    rhs2,
                } => {
                    self.heat_tick(fid, block, Opcode::Bin);
                    charge(cost, max_cost)?;
                    let v = exec_bin(*op1, regs[*lhs1 as usize], regs[*rhs1 as usize])?;
                    self.set_reg(fid, watch, &mut regs, *dst1, v, *cost);
                    self.heat_tick(fid, block, Opcode::Bin);
                    charge(cost, max_cost)?;
                    let v = exec_bin(*op2, regs[*lhs2 as usize], regs[*rhs2 as usize])?;
                    self.set_reg(fid, watch, &mut regs, *dst2, v, *cost);
                }
                Bc::StoreBin {
                    sdst,
                    val,
                    addr,
                    op,
                    dst,
                    lhs,
                    rhs,
                } => {
                    // Fused, but each half keeps its own tick + charge so
                    // cost stamps and fuel-exhaustion points are exact.
                    self.heat_tick(fid, block, Opcode::Store);
                    charge(cost, max_cost)?;
                    let v = regs[*val as usize].to_bits()?;
                    let a = regs[*addr as usize].as_ptr()?;
                    self.memory.write(a, v)?;
                    self.emit_store(a, *cost);
                    self.set_reg(fid, watch, &mut regs, *sdst, Value::Unit, *cost);
                    self.heat_tick(fid, block, Opcode::Bin);
                    charge(cost, max_cost)?;
                    let v = exec_bin(*op, regs[*lhs as usize], regs[*rhs as usize])?;
                    self.set_reg(fid, watch, &mut regs, *dst, v, *cost);
                }
                Bc::LoadBin {
                    ty,
                    ldst,
                    addr,
                    op,
                    dst,
                    lhs,
                    rhs,
                } => {
                    // Fused, but each half keeps its own tick + charge so
                    // cost stamps and fuel-exhaustion points are exact.
                    self.heat_tick(fid, block, Opcode::Load);
                    charge(cost, max_cost)?;
                    let a = regs[*addr as usize].as_ptr()?;
                    let bits = self.memory.read(a)?;
                    self.emit_load(a, *cost);
                    self.set_reg(
                        fid,
                        watch,
                        &mut regs,
                        *ldst,
                        Value::from_bits(*ty, bits),
                        *cost,
                    );
                    self.heat_tick(fid, block, Opcode::Bin);
                    charge(cost, max_cost)?;
                    let v = exec_bin(*op, regs[*lhs as usize], regs[*rhs as usize])?;
                    self.set_reg(fid, watch, &mut regs, *dst, v, *cost);
                }
                Bc::BinBr {
                    op,
                    dst,
                    lhs,
                    rhs,
                    edge,
                } => {
                    self.heat_tick(fid, block, Opcode::Bin);
                    charge(cost, max_cost)?;
                    let v = exec_bin(*op, regs[*lhs as usize], regs[*rhs as usize])?;
                    self.set_reg(fid, watch, &mut regs, *dst, v, *cost);
                    self.heat_tick(fid, block, Opcode::Br);
                    charge(cost, max_cost)?;
                    let e = &bf.edges[*edge as usize];
                    self.take_edge(fid, func, block, e, &mut regs, cost)?;
                    block = e.block;
                    pc = e.target as usize;
                }
                Bc::Alloca { dst, words } => {
                    self.heat_tick(fid, block, Opcode::Alloca);
                    charge(cost, max_cost)?;
                    let base = self.memory.stack_alloc(u64::from(*words));
                    self.set_reg(fid, watch, &mut regs, *dst, Value::P(base), *cost);
                }
                Bc::CallFunc { dst, func, args } => {
                    self.heat_tick(fid, block, Opcode::Call);
                    charge(cost, max_cost)?;
                    let argv: Vec<Value> = args.iter().map(|&a| regs[a as usize]).collect();
                    if self.batching {
                        // The callee batches its own blocks through the
                        // shared buffer; flush ours first so event order
                        // is preserved, and re-point the buffer at the
                        // current block when the callee returns.
                        self.flush_batch();
                    }
                    self.cost = *cost;
                    let v = self.call_function_bc(code, FuncId(*func), &argv);
                    *cost = self.cost;
                    let v = v?;
                    if self.batching {
                        self.batch.func = fid;
                        self.batch.block = block;
                    }
                    self.set_reg(fid, watch, &mut regs, *dst, v, *cost);
                }
                Bc::CallBuiltin { dst, builtin, args } => {
                    self.heat_tick(fid, block, Opcode::Call);
                    charge(cost, max_cost)?;
                    let argv: Vec<Value> = args.iter().map(|&a| regs[a as usize]).collect();
                    if self.batching {
                        // `builtin_called` and memcpy/memset word events
                        // are delivered directly (never batched); flush
                        // so they land in order. The buffer keeps
                        // pointing at the current block.
                        self.flush_batch();
                    }
                    self.sink.builtin_called(fid, *builtin, *cost);
                    self.cost = *cost;
                    let v = self.exec_builtin(*builtin, &argv);
                    *cost = self.cost;
                    let v = v?;
                    self.set_reg(fid, watch, &mut regs, *dst, v, *cost);
                }
                Bc::Br { edge } => {
                    self.heat_tick(fid, block, Opcode::Br);
                    charge(cost, max_cost)?;
                    let e = &bf.edges[*edge as usize];
                    self.take_edge(fid, func, block, e, &mut regs, cost)?;
                    block = e.block;
                    pc = e.target as usize;
                }
                Bc::CondBr {
                    cond,
                    then_edge,
                    else_edge,
                } => {
                    self.heat_tick(fid, block, Opcode::CondBr);
                    charge(cost, max_cost)?;
                    let c = regs[*cond as usize].as_bool()?;
                    let e = &bf.edges[if c { *then_edge } else { *else_edge } as usize];
                    self.take_edge(fid, func, block, e, &mut regs, cost)?;
                    block = e.block;
                    pc = e.target as usize;
                }
                Bc::IcmpBr {
                    pred,
                    dst,
                    lhs,
                    rhs,
                    then_edge,
                    else_edge,
                } => {
                    // Fused, with per-constituent ticks and charges.
                    self.heat_tick(fid, block, Opcode::Icmp);
                    charge(cost, max_cost)?;
                    let c = icmp_eval(*pred, regs[*lhs as usize], regs[*rhs as usize])?;
                    self.set_reg(fid, watch, &mut regs, *dst, Value::B(c), *cost);
                    self.heat_tick(fid, block, Opcode::CondBr);
                    charge(cost, max_cost)?;
                    let e = &bf.edges[if c { *then_edge } else { *else_edge } as usize];
                    self.take_edge(fid, func, block, e, &mut regs, cost)?;
                    block = e.block;
                    pc = e.target as usize;
                }
                Bc::Ret { val } => {
                    self.heat_tick(fid, block, Opcode::Ret);
                    charge(cost, max_cost)?;
                    break regs[*val as usize];
                }
                Bc::RetVoid => {
                    self.heat_tick(fid, block, Opcode::Ret);
                    charge(cost, max_cost)?;
                    break Value::Unit;
                }
            }
        };
        self.memory.stack_release(frame_mark);
        if self.batching {
            // The final block's batch must land before `func_exited`.
            self.flush_batch();
        }
        self.sink.func_exited(fid, *cost);
        self.depth -= 1;
        self.frame_pool.push(regs);
        Ok(ret)
    }
}

/// The silent loop's edge taker: the same phi-run parallel copy as
/// `take_edge`, minus events and heat (phi resolution charges nothing,
/// so the fuel counter is untouched on both paths).
#[inline]
fn take_edge_silent(e: &Edge, regs: &mut [Value], scratch: &mut Vec<(ValueId, Value)>) {
    if e.sequential {
        for &(dst, src) in e.moves.iter() {
            // SAFETY: `compile::validate` checked every phi-move index
            // against the owning function's register-file length.
            unsafe { *regs.get_unchecked_mut(dst as usize) = *regs.get_unchecked(src as usize) };
        }
    } else {
        for &(dst, src) in e.moves.iter() {
            scratch.push((ValueId(dst), regs[src as usize]));
        }
        for &(r, v) in scratch.iter() {
            regs[r.index()] = v;
        }
        scratch.clear();
    }
}

/// The per-instruction fuel charge on the frame-local counter — plain
/// register arithmetic instead of a `self.cost` round-trip (the sole
/// reason `exec_frame_bc` threads `cost` explicitly).
#[inline]
fn charge(cost: &mut u64, max_cost: u64) -> Result<()> {
    *cost += 1;
    if *cost > max_cost {
        return Err(InterpError::FuelExhausted);
    }
    Ok(())
}
