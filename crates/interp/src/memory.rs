//! Flat, paged, word-granular memory.
//!
//! The address space is split into three regions so the run-time component
//! can distinguish access classes:
//!
//! - **globals** at [`GLOBAL_BASE`] — statically laid out at machine
//!   construction;
//! - **heap** at [`HEAP_BASE`] — bump-allocated by `malloc` (free is a
//!   no-op, as in many real allocators' fast paths; addresses are never
//!   reused, which keeps heap conflict tracking exact);
//! - **stack** at [`STACK_BASE`] — LIFO frames that *do* reuse addresses
//!   across calls, which is precisely the structural call-stack hazard of
//!   paper §II-E.
//!
//! All accesses are 8-byte words; unaligned or null-page accesses trap.
//!
//! # Hot-path layout
//!
//! Every dynamic load and store resolves an address here, so the page
//! lookup must not hash (see DESIGN.md §10). Pages live in an arena
//! (`Vec<Box<[u64; 512]>>`) and are located through a **two-level page
//! directory**: the bounded dense directory covers every page below
//! [`DIRECT_LIMIT`] — which contains all three allocator regions — with
//! two array indexes, and a small Fx-hashed fallback map catches
//! anything above it (e.g. synthetic function-pointer addresses). In
//! front of both sits a small **direct-mapped page cache**, so loops
//! that cycle through a few live pages (sequential walks, strided
//! multi-array kernels) touch no directory at all.

use crate::{InterpError, Result};
use lp_ir::fx::FxHashMap;

/// Base address of the globals region.
pub const GLOBAL_BASE: u64 = 0x1000_0000;
/// Base address of the heap region.
pub const HEAP_BASE: u64 = 0x4000_0000;
/// Base address of the stack region.
pub const STACK_BASE: u64 = 0x8000_0000;

const PAGE_WORDS: usize = 512;
const PAGE_BYTES: u64 = (PAGE_WORDS as u64) * 8;

/// Pages per second-level directory node (and the number of first-level
/// slots), giving `1024 × 1024` directly mapped pages.
const L2_LEN: usize = 1024;
const L2_BITS: u64 = 10;
const L2_MASK: u64 = (L2_LEN as u64) - 1;

/// First page number outside the dense directory (addresses ≥ 4 GiB).
/// Globals, heap, and stack all start well below this; only synthetic
/// far pointers (function addresses) fall through to the fallback map.
const DIRECT_LIMIT: u64 = (L2_LEN as u64) * (L2_LEN as u64);

/// Sentinel directory entry: page not allocated.
const NO_PAGE: u32 = u32::MAX;

/// Ways in the direct-mapped page cache (indexed by `page % ways`).
const CACHE_WAYS: usize = 8;

/// Counters of the memory fast path, reported through
/// [`crate::EventSink::mem_stats`] at the end of a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Accesses served by the direct-mapped page cache.
    pub page_cache_hits: u64,
    /// Accesses that walked the page directory.
    pub page_cache_misses: u64,
    /// Pages allocated over the run.
    pub pages_allocated: u64,
}

/// Paged word memory with region allocators.
#[derive(Debug, Clone)]
pub struct Memory {
    /// Page arena; directory entries hold indexes into it, so growing
    /// the arena never invalidates a directory entry.
    pages: Vec<Box<[u64; PAGE_WORDS]>>,
    /// First directory level, densely covering pages `0..DIRECT_LIMIT`.
    l1: Vec<Option<Box<[u32; L2_LEN]>>>,
    /// Fallback for pages at or above [`DIRECT_LIMIT`].
    far: FxHashMap<u64, u32>,
    /// Direct-mapped page cache: page numbers and arena indexes of
    /// recently resolved *allocated* pages, indexed by `page % ways`.
    cache_page: [u64; CACHE_WAYS],
    cache_idx: [u32; CACHE_WAYS],
    heap_top: u64,
    stack_top: u64,
    hits: u64,
    misses: u64,
    /// When armed, every successful [`Memory::write`] appends
    /// `(addr, word)` here in program order. Replay workers run on a
    /// clone of the parent memory with the log enabled, so the log *is*
    /// the chunk's memory delta and can be re-applied deterministically.
    write_log: Option<Vec<(u64, u64)>>,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

impl Memory {
    /// An empty memory with both allocators at their region bases.
    #[must_use]
    pub fn new() -> Memory {
        let mut l1 = Vec::new();
        l1.resize_with(L2_LEN, || None);
        Memory {
            pages: Vec::new(),
            l1,
            far: FxHashMap::default(),
            cache_page: [u64::MAX; CACHE_WAYS],
            cache_idx: [NO_PAGE; CACHE_WAYS],
            heap_top: HEAP_BASE,
            stack_top: STACK_BASE,
            hits: 0,
            misses: 0,
            write_log: None,
        }
    }

    /// Starts recording every subsequent write into the delta log,
    /// discarding any previously recorded entries.
    pub fn enable_write_log(&mut self) {
        self.write_log = Some(Vec::new());
    }

    /// Stops logging and returns the recorded `(addr, word)` writes in
    /// program order. Returns an empty log if logging was never enabled.
    pub fn take_write_log(&mut self) -> Vec<(u64, u64)> {
        self.write_log.take().unwrap_or_default()
    }

    fn check(addr: u64) -> Result<()> {
        if addr < 0x1000 {
            return Err(InterpError::NullDeref(addr));
        }
        if !addr.is_multiple_of(8) {
            return Err(InterpError::Unaligned(addr));
        }
        Ok(())
    }

    /// Resolves `page` to its arena index, or `None` if unallocated.
    /// Updates the page cache on success.
    #[inline]
    fn lookup(&mut self, page: u64) -> Option<u32> {
        let way = (page as usize) & (CACHE_WAYS - 1);
        if page == self.cache_page[way] {
            self.hits += 1;
            return Some(self.cache_idx[way]);
        }
        self.misses += 1;
        let idx = if page < DIRECT_LIMIT {
            match &self.l1[(page >> L2_BITS) as usize] {
                Some(l2) => l2[(page & L2_MASK) as usize],
                None => NO_PAGE,
            }
        } else {
            self.far.get(&page).copied().unwrap_or(NO_PAGE)
        };
        if idx == NO_PAGE {
            return None;
        }
        self.cache_page[way] = page;
        self.cache_idx[way] = idx;
        Some(idx)
    }

    /// As [`Memory::lookup`], allocating the page if absent.
    #[inline]
    fn lookup_or_alloc(&mut self, page: u64) -> u32 {
        if let Some(idx) = self.lookup(page) {
            return idx;
        }
        let idx = self.pages.len() as u32;
        assert!(idx != NO_PAGE, "page arena exhausted");
        self.pages.push(Box::new([0u64; PAGE_WORDS]));
        if page < DIRECT_LIMIT {
            let l2 = self.l1[(page >> L2_BITS) as usize]
                .get_or_insert_with(|| Box::new([NO_PAGE; L2_LEN]));
            l2[(page & L2_MASK) as usize] = idx;
        } else {
            self.far.insert(page, idx);
        }
        let way = (page as usize) & (CACHE_WAYS - 1);
        self.cache_page[way] = page;
        self.cache_idx[way] = idx;
        idx
    }

    /// Reads the word at `addr`.
    ///
    /// Takes `&mut self` to maintain the last-page cache — the logical
    /// memory state is unchanged.
    ///
    /// # Errors
    /// Traps on unaligned or null-page addresses. Unwritten words read as
    /// zero.
    pub fn read(&mut self, addr: u64) -> Result<u64> {
        Self::check(addr)?;
        let page = addr / PAGE_BYTES;
        let slot = ((addr % PAGE_BYTES) / 8) as usize;
        Ok(match self.lookup(page) {
            Some(idx) => self.pages[idx as usize][slot],
            None => 0,
        })
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    /// Traps on unaligned or null-page addresses.
    pub fn write(&mut self, addr: u64, word: u64) -> Result<()> {
        Self::check(addr)?;
        let page = addr / PAGE_BYTES;
        let slot = ((addr % PAGE_BYTES) / 8) as usize;
        let idx = self.lookup_or_alloc(page);
        self.pages[idx as usize][slot] = word;
        if let Some(log) = &mut self.write_log {
            log.push((addr, word));
        }
        Ok(())
    }

    /// Compares the global and heap regions of two memories word by
    /// word, returning the first differing `(addr, self_word, other_word)`
    /// in address order, or `None` when byte-identical. Unallocated
    /// pages read as zero on either side; the stack region is excluded
    /// (frames are dead after the run and reuse addresses freely).
    ///
    /// This is the replay engine's divergence oracle: a parallel replay
    /// is correct iff its final image is identical to the serial run's.
    #[must_use]
    pub fn first_difference(&mut self, other: &mut Memory) -> Option<(u64, u64, u64)> {
        let mut pages: Vec<u64> = self
            .allocated_pages()
            .chain(other.allocated_pages())
            .filter(|&p| p * PAGE_BYTES < STACK_BASE)
            .collect();
        pages.sort_unstable();
        pages.dedup();
        for page in pages {
            let a = self.lookup(page);
            let b = other.lookup(page);
            for slot in 0..PAGE_WORDS {
                let wa = a.map_or(0, |idx| self.pages[idx as usize][slot]);
                let wb = b.map_or(0, |idx| other.pages[idx as usize][slot]);
                if wa != wb {
                    return Some((page * PAGE_BYTES + (slot as u64) * 8, wa, wb));
                }
            }
        }
        None
    }

    /// Page numbers of every allocated page, in no particular order.
    fn allocated_pages(&self) -> impl Iterator<Item = u64> + '_ {
        let dense = self.l1.iter().enumerate().flat_map(|(hi, l2)| {
            l2.iter().flat_map(move |l2| {
                l2.iter().enumerate().filter_map(move |(lo, &idx)| {
                    (idx != NO_PAGE).then_some(((hi as u64) << L2_BITS) | lo as u64)
                })
            })
        });
        dense.chain(self.far.keys().copied())
    }

    /// Fast-path counters for observability exports.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        MemStats {
            page_cache_hits: self.hits,
            page_cache_misses: self.misses,
            pages_allocated: self.pages.len() as u64,
        }
    }

    /// Bump-allocates `bytes` on the heap (rounded up to whole words),
    /// returning the base address. Zero-byte allocations return a unique,
    /// valid address.
    pub fn heap_alloc(&mut self, bytes: u64) -> u64 {
        let words = bytes.div_ceil(8).max(1);
        let base = self.heap_top;
        self.heap_top += words * 8;
        base
    }

    /// Current top of the stack region.
    #[must_use]
    pub fn stack_top(&self) -> u64 {
        self.stack_top
    }

    /// Pushes `words` stack slots, returning the base address of the new
    /// allocation. Used for `alloca`.
    pub fn stack_alloc(&mut self, words: u64) -> u64 {
        let base = self.stack_top;
        self.stack_top += words * 8;
        base
    }

    /// Pops the stack back to `mark` (a value previously returned by
    /// [`Memory::stack_top`]). Addresses above the mark become reusable —
    /// deliberately *without* clearing their contents, mirroring a real
    /// call stack.
    pub fn stack_release(&mut self, mark: u64) {
        debug_assert!(mark <= self.stack_top);
        self.stack_top = mark;
    }

    /// Returns which region an address belongs to.
    #[must_use]
    pub fn region_of(addr: u64) -> Region {
        if addr >= STACK_BASE {
            Region::Stack
        } else if addr >= HEAP_BASE {
            Region::Heap
        } else {
            Region::Global
        }
    }
}

/// Memory region classification (drives structural-hazard handling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Statically allocated module globals.
    Global,
    /// Bump-allocated heap.
    Heap,
    /// LIFO call-stack frames.
    Stack,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write(GLOBAL_BASE, 0xDEAD).unwrap();
        assert_eq!(m.read(GLOBAL_BASE).unwrap(), 0xDEAD);
        assert_eq!(m.read(GLOBAL_BASE + 8).unwrap(), 0, "unwritten reads zero");
    }

    #[test]
    fn traps() {
        let mut m = Memory::new();
        assert_eq!(m.read(0), Err(InterpError::NullDeref(0)));
        assert_eq!(
            m.read(GLOBAL_BASE + 4),
            Err(InterpError::Unaligned(GLOBAL_BASE + 4))
        );
        assert_eq!(m.write(12, 1), Err(InterpError::NullDeref(12)));
    }

    #[test]
    fn heap_never_reuses() {
        let mut m = Memory::new();
        let a = m.heap_alloc(16);
        let b = m.heap_alloc(0);
        let c = m.heap_alloc(1);
        assert!(a < b && b < c);
        assert_eq!(a % 8, 0);
    }

    #[test]
    fn stack_is_lifo_and_reuses_addresses() {
        let mut m = Memory::new();
        let mark = m.stack_top();
        let a = m.stack_alloc(4);
        m.write(a, 7).unwrap();
        m.stack_release(mark);
        let b = m.stack_alloc(4);
        assert_eq!(a, b, "released stack slots are reused");
        assert_eq!(m.read(b).unwrap(), 7, "contents are not cleared");
    }

    #[test]
    fn regions() {
        assert_eq!(Memory::region_of(GLOBAL_BASE), Region::Global);
        assert_eq!(Memory::region_of(HEAP_BASE + 64), Region::Heap);
        assert_eq!(Memory::region_of(STACK_BASE + 8), Region::Stack);
    }

    #[test]
    fn cross_page_writes() {
        let mut m = Memory::new();
        let base = HEAP_BASE + PAGE_BYTES - 8;
        m.write(base, 1).unwrap();
        m.write(base + 8, 2).unwrap();
        assert_eq!(m.read(base).unwrap(), 1);
        assert_eq!(m.read(base + 8).unwrap(), 2);
    }

    #[test]
    fn far_pages_round_trip_through_the_fallback_map() {
        // A synthetic function-pointer-like address, far above the
        // dense directory's 4 GiB coverage.
        let mut m = Memory::new();
        let far = 0xF000_0000_0000u64 | 0x18;
        m.write(far, 42).unwrap();
        assert_eq!(m.read(far).unwrap(), 42);
        assert_eq!(m.read(far + 8).unwrap(), 0);
        // Near pages still work after a far allocation.
        m.write(HEAP_BASE, 7).unwrap();
        assert_eq!(m.read(HEAP_BASE).unwrap(), 7);
        assert_eq!(m.read(far).unwrap(), 42);
    }

    #[test]
    fn write_log_records_in_program_order() {
        let mut m = Memory::new();
        m.write(GLOBAL_BASE, 1).unwrap(); // not logged
        m.enable_write_log();
        m.write(GLOBAL_BASE + 8, 2).unwrap();
        m.write(GLOBAL_BASE, 3).unwrap();
        let log = m.take_write_log();
        assert_eq!(log, vec![(GLOBAL_BASE + 8, 2), (GLOBAL_BASE, 3)]);
        // Taking the log disarms it.
        m.write(GLOBAL_BASE + 16, 4).unwrap();
        assert!(m.take_write_log().is_empty());
    }

    #[test]
    fn first_difference_finds_lowest_divergent_address() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write(GLOBAL_BASE, 1).unwrap();
        b.write(GLOBAL_BASE, 1).unwrap();
        assert_eq!(a.first_difference(&mut b), None);
        b.write(HEAP_BASE + 24, 9).unwrap();
        b.write(GLOBAL_BASE + 8, 5).unwrap();
        assert_eq!(
            a.first_difference(&mut b),
            Some((GLOBAL_BASE + 8, 0, 5)),
            "lowest differing address wins even against unallocated pages"
        );
        // Stack divergence is ignored: frames are dead after the run.
        let mut c = a.clone();
        c.write(STACK_BASE + 64, 77).unwrap();
        b.write(GLOBAL_BASE + 8, 0).unwrap();
        b.write(HEAP_BASE + 24, 0).unwrap();
        assert_eq!(a.first_difference(&mut c), None);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Memory::new();
        a.write(HEAP_BASE, 11).unwrap();
        let mut b = a.clone();
        b.write(HEAP_BASE, 22).unwrap();
        assert_eq!(a.read(HEAP_BASE).unwrap(), 11);
        assert_eq!(b.read(HEAP_BASE).unwrap(), 22);
    }

    #[test]
    fn last_page_cache_counts_hits_and_misses() {
        let mut m = Memory::new();
        m.write(HEAP_BASE, 1).unwrap(); // miss (allocates)
        m.write(HEAP_BASE + 8, 2).unwrap(); // hit
        m.read(HEAP_BASE + 16).unwrap(); // hit
        m.read(HEAP_BASE + PAGE_BYTES).unwrap(); // miss (absent page)
        let s = m.stats();
        assert_eq!(s.page_cache_hits, 2);
        assert_eq!(s.page_cache_misses, 2);
        assert_eq!(s.pages_allocated, 1);
    }
}
