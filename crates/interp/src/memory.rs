//! Flat, paged, word-granular memory.
//!
//! The address space is split into three regions so the run-time component
//! can distinguish access classes:
//!
//! - **globals** at [`GLOBAL_BASE`] — statically laid out at machine
//!   construction;
//! - **heap** at [`HEAP_BASE`] — bump-allocated by `malloc` (free is a
//!   no-op, as in many real allocators' fast paths; addresses are never
//!   reused, which keeps heap conflict tracking exact);
//! - **stack** at [`STACK_BASE`] — LIFO frames that *do* reuse addresses
//!   across calls, which is precisely the structural call-stack hazard of
//!   paper §II-E.
//!
//! All accesses are 8-byte words; unaligned or null-page accesses trap.

use crate::{InterpError, Result};
use std::collections::HashMap;

/// Base address of the globals region.
pub const GLOBAL_BASE: u64 = 0x1000_0000;
/// Base address of the heap region.
pub const HEAP_BASE: u64 = 0x4000_0000;
/// Base address of the stack region.
pub const STACK_BASE: u64 = 0x8000_0000;

const PAGE_WORDS: usize = 512;
const PAGE_BYTES: u64 = (PAGE_WORDS as u64) * 8;

/// Paged word memory with region allocators.
#[derive(Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u64; PAGE_WORDS]>>,
    heap_top: u64,
    stack_top: u64,
}

impl Memory {
    /// An empty memory with both allocators at their region bases.
    #[must_use]
    pub fn new() -> Memory {
        Memory {
            pages: HashMap::new(),
            heap_top: HEAP_BASE,
            stack_top: STACK_BASE,
        }
    }

    fn check(addr: u64) -> Result<()> {
        if addr < 0x1000 {
            return Err(InterpError::NullDeref(addr));
        }
        if !addr.is_multiple_of(8) {
            return Err(InterpError::Unaligned(addr));
        }
        Ok(())
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    /// Traps on unaligned or null-page addresses. Unwritten words read as
    /// zero.
    pub fn read(&self, addr: u64) -> Result<u64> {
        Self::check(addr)?;
        let page = addr / PAGE_BYTES;
        let slot = ((addr % PAGE_BYTES) / 8) as usize;
        Ok(self.pages.get(&page).map_or(0, |p| p[slot]))
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    /// Traps on unaligned or null-page addresses.
    pub fn write(&mut self, addr: u64, word: u64) -> Result<()> {
        Self::check(addr)?;
        let page = addr / PAGE_BYTES;
        let slot = ((addr % PAGE_BYTES) / 8) as usize;
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u64; PAGE_WORDS]))[slot] = word;
        Ok(())
    }

    /// Bump-allocates `bytes` on the heap (rounded up to whole words),
    /// returning the base address. Zero-byte allocations return a unique,
    /// valid address.
    pub fn heap_alloc(&mut self, bytes: u64) -> u64 {
        let words = bytes.div_ceil(8).max(1);
        let base = self.heap_top;
        self.heap_top += words * 8;
        base
    }

    /// Current top of the stack region.
    #[must_use]
    pub fn stack_top(&self) -> u64 {
        self.stack_top
    }

    /// Pushes `words` stack slots, returning the base address of the new
    /// allocation. Used for `alloca`.
    pub fn stack_alloc(&mut self, words: u64) -> u64 {
        let base = self.stack_top;
        self.stack_top += words * 8;
        base
    }

    /// Pops the stack back to `mark` (a value previously returned by
    /// [`Memory::stack_top`]). Addresses above the mark become reusable —
    /// deliberately *without* clearing their contents, mirroring a real
    /// call stack.
    pub fn stack_release(&mut self, mark: u64) {
        debug_assert!(mark <= self.stack_top);
        self.stack_top = mark;
    }

    /// Returns which region an address belongs to.
    #[must_use]
    pub fn region_of(addr: u64) -> Region {
        if addr >= STACK_BASE {
            Region::Stack
        } else if addr >= HEAP_BASE {
            Region::Heap
        } else {
            Region::Global
        }
    }
}

/// Memory region classification (drives structural-hazard handling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Statically allocated module globals.
    Global,
    /// Bump-allocated heap.
    Heap,
    /// LIFO call-stack frames.
    Stack,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write(GLOBAL_BASE, 0xDEAD).unwrap();
        assert_eq!(m.read(GLOBAL_BASE).unwrap(), 0xDEAD);
        assert_eq!(m.read(GLOBAL_BASE + 8).unwrap(), 0, "unwritten reads zero");
    }

    #[test]
    fn traps() {
        let mut m = Memory::new();
        assert_eq!(m.read(0), Err(InterpError::NullDeref(0)));
        assert_eq!(
            m.read(GLOBAL_BASE + 4),
            Err(InterpError::Unaligned(GLOBAL_BASE + 4))
        );
        assert_eq!(m.write(12, 1), Err(InterpError::NullDeref(12)));
    }

    #[test]
    fn heap_never_reuses() {
        let mut m = Memory::new();
        let a = m.heap_alloc(16);
        let b = m.heap_alloc(0);
        let c = m.heap_alloc(1);
        assert!(a < b && b < c);
        assert_eq!(a % 8, 0);
    }

    #[test]
    fn stack_is_lifo_and_reuses_addresses() {
        let mut m = Memory::new();
        let mark = m.stack_top();
        let a = m.stack_alloc(4);
        m.write(a, 7).unwrap();
        m.stack_release(mark);
        let b = m.stack_alloc(4);
        assert_eq!(a, b, "released stack slots are reused");
        assert_eq!(m.read(b).unwrap(), 7, "contents are not cleared");
    }

    #[test]
    fn regions() {
        assert_eq!(Memory::region_of(GLOBAL_BASE), Region::Global);
        assert_eq!(Memory::region_of(HEAP_BASE + 64), Region::Heap);
        assert_eq!(Memory::region_of(STACK_BASE + 8), Region::Stack);
    }

    #[test]
    fn cross_page_writes() {
        let mut m = Memory::new();
        let base = HEAP_BASE + PAGE_BYTES - 8;
        m.write(base, 1).unwrap();
        m.write(base + 8, 2).unwrap();
        assert_eq!(m.read(base).unwrap(), 1);
        assert_eq!(m.read(base + 8).unwrap(), 2);
    }
}
