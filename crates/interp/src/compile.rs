//! One-pass compiler from [`lp_ir`] to the flat bytecode executed by
//! [`crate::bytecode`].
//!
//! The compiler pre-resolves everything the tree walk re-derives on
//! every dispatch:
//!
//! - operands become dense `u32` register indices into the function's
//!   frame (constants were already materialized into the per-function
//!   register template at machine construction),
//! - branch targets become absolute instruction offsets via per-edge
//!   records,
//! - each CFG edge carries its block-local phi-run table — the
//!   parallel-copy `(dst, src)` moves for the target block's phi prefix,
//!   so loop back-edges no longer search `incomings` per phi per
//!   iteration,
//! - block costs are precomputed ([`lp_ir::Function::block_costs`])
//!   instead of re-counted on every block entry,
//! - the dominant dispatch pairs named by `lpstudy dispatch-heat` are
//!   fused into superinstructions: a block-terminal `icmp` feeding its
//!   own `cond_br` becomes [`Bc::IcmpBr`], and a `gep` feeding the
//!   immediately following `load` becomes [`Bc::GepLoad`]. Fused forms
//!   keep per-constituent cost charging, heat ticks, and event stamps,
//!   so the observable stream is identical to the unfused one.

use crate::bytecode::{Bc, BcFunc, CompiledModule, Edge};
use lp_ir::{BlockId, Callee, Function, Inst, InstData, Module, Term};

/// Compiles every function of `module`. Pure and infallible: the module
/// is expected to be verified (the same precondition the tree walk has).
#[must_use]
pub(crate) fn compile_module(module: &Module) -> CompiledModule {
    let compiled = CompiledModule {
        funcs: module.functions.iter().map(compile_function).collect(),
    };
    validate(module, &compiled);
    compiled
}

/// Proves, once per compile, the invariants the silent dispatch loop's
/// unchecked accesses rely on (`bytecode::exec_frame_silent`): every
/// operand index is below the owning function's register-file length,
/// every edge index and edge target is in range, every phi move stays
/// inside the register file, every direct call names an existing
/// function, and every non-terminator instruction is followed by
/// another instruction (so `pc + 1` after a non-branch never leaves the
/// stream). Violations are compiler bugs, not user errors, so this
/// panics — the same contract the tree walk assumes of verified IR,
/// surfaced at compile time instead of dispatch time.
fn validate(module: &Module, compiled: &CompiledModule) {
    for (func, bf) in module.functions.iter().zip(&compiled.funcs) {
        let nregs = func.values.len() as u32;
        let r = |i: u32| assert!(i < nregs, "{}: operand {i} >= {nregs}", func.name);
        let e = |i: u32| {
            let edge = &bf.edges[i as usize];
            assert!(
                (edge.target as usize) < bf.code.len(),
                "{}: edge target",
                func.name
            );
            for &(dst, src) in edge.moves.iter() {
                r(dst);
                r(src);
            }
        };
        for (pc, inst) in bf.code.iter().enumerate() {
            let is_term = matches!(
                inst,
                Bc::BinBr { .. }
                    | Bc::Br { .. }
                    | Bc::CondBr { .. }
                    | Bc::IcmpBr { .. }
                    | Bc::Ret { .. }
                    | Bc::RetVoid
            );
            assert!(
                is_term || pc + 1 < bf.code.len(),
                "{}: fallthrough off the end at pc {pc}",
                func.name
            );
            match inst {
                Bc::Bin { dst, lhs, rhs, .. }
                | Bc::Icmp { dst, lhs, rhs, .. }
                | Bc::Fcmp { dst, lhs, rhs, .. }
                | Bc::Store {
                    dst,
                    val: lhs,
                    addr: rhs,
                }
                | Bc::Gep {
                    dst,
                    base: lhs,
                    index: rhs,
                    ..
                } => {
                    r(*dst);
                    r(*lhs);
                    r(*rhs);
                }
                Bc::Select {
                    dst,
                    cond,
                    then_val,
                    else_val,
                } => {
                    r(*dst);
                    r(*cond);
                    r(*then_val);
                    r(*else_val);
                }
                Bc::Cast { dst, val, .. } => {
                    r(*dst);
                    r(*val);
                }
                Bc::Load { dst, addr, .. } => {
                    r(*dst);
                    r(*addr);
                }
                Bc::GepLoad {
                    gep_dst,
                    dst,
                    base,
                    index,
                    ..
                } => {
                    r(*gep_dst);
                    r(*dst);
                    r(*base);
                    r(*index);
                }
                Bc::GepStore {
                    gep_dst,
                    dst,
                    val,
                    base,
                    index,
                    ..
                } => {
                    r(*gep_dst);
                    r(*dst);
                    r(*val);
                    r(*base);
                    r(*index);
                }
                Bc::BinBin {
                    dst1,
                    lhs1,
                    rhs1,
                    dst2,
                    lhs2,
                    rhs2,
                    ..
                } => {
                    r(*dst1);
                    r(*lhs1);
                    r(*rhs1);
                    r(*dst2);
                    r(*lhs2);
                    r(*rhs2);
                }
                Bc::StoreBin {
                    sdst,
                    val,
                    addr,
                    dst,
                    lhs,
                    rhs,
                    ..
                } => {
                    r(*sdst);
                    r(*val);
                    r(*addr);
                    r(*dst);
                    r(*lhs);
                    r(*rhs);
                }
                Bc::LoadBin {
                    ldst,
                    addr,
                    dst,
                    lhs,
                    rhs,
                    ..
                } => {
                    r(*ldst);
                    r(*addr);
                    r(*dst);
                    r(*lhs);
                    r(*rhs);
                }
                Bc::BinBr {
                    dst,
                    lhs,
                    rhs,
                    edge,
                    ..
                } => {
                    r(*dst);
                    r(*lhs);
                    r(*rhs);
                    e(*edge);
                }
                Bc::Alloca { dst, .. } => r(*dst),
                Bc::CallFunc { dst, func: f, args } => {
                    assert!(
                        (*f as usize) < module.functions.len(),
                        "{}: callee index {f} out of range",
                        func.name
                    );
                    r(*dst);
                    args.iter().for_each(|&a| r(a));
                }
                Bc::CallBuiltin { dst, args, .. } => {
                    r(*dst);
                    args.iter().for_each(|&a| r(a));
                }
                Bc::Br { edge } => e(*edge),
                Bc::CondBr {
                    cond,
                    then_edge,
                    else_edge,
                } => {
                    r(*cond);
                    e(*then_edge);
                    e(*else_edge);
                }
                Bc::IcmpBr {
                    dst,
                    lhs,
                    rhs,
                    then_edge,
                    else_edge,
                    ..
                } => {
                    r(*dst);
                    r(*lhs);
                    r(*rhs);
                    e(*then_edge);
                    e(*else_edge);
                }
                Bc::Ret { val } => r(*val),
                Bc::RetVoid => {}
            }
        }
    }
}

/// The phi-run table for the edge `from -> to`: one `(dst, src)`
/// register move per phi in `to`'s phi prefix, in phi order.
fn edge_moves(func: &Function, from: BlockId, to: BlockId) -> Box<[(u32, u32)]> {
    func.block(to)
        .insts
        .iter()
        .map_while(|&iid| {
            let data = func.inst(iid);
            let Inst::Phi { incomings, .. } = &data.inst else {
                return None;
            };
            let (_, v) = incomings
                .iter()
                .find(|(b, _)| *b == from)
                .expect("verified phi covers predecessors");
            Some((data.result.0, v.0))
        })
        .collect()
}

fn compile_function(func: &Function) -> BcFunc {
    let costs = func.block_costs();
    let mut code: Vec<Bc> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut block_starts = vec![0u32; func.blocks.len()];

    let add_edge = |edges: &mut Vec<Edge>, from: BlockId, to: BlockId| -> u32 {
        let idx = u32::try_from(edges.len()).expect("edge count fits u32");
        let moves = edge_moves(func, from, to);
        // A phi run is a *parallel* copy: all sources are read before
        // any destination is written. When no move reads an earlier
        // move's destination, executing the moves in order is
        // equivalent, and the dispatch loop can skip the two-phase
        // scratch buffer. Loop phis almost always read body-computed
        // registers, so this is the overwhelmingly common case.
        let sequential = moves
            .iter()
            .enumerate()
            .all(|(j, &(_, src))| !moves[..j].iter().any(|&(dst, _)| dst == src));
        edges.push(Edge {
            target: 0, // patched below once every block's start pc is known
            block: to,
            cost: costs[to.index()],
            moves,
            sequential,
        });
        idx
    };

    for (bi, blk) in func.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        block_starts[bi] = u32::try_from(code.len()).expect("bytecode length fits u32");
        let body: Vec<&InstData> = blk
            .insts
            .iter()
            .map(|&iid| func.inst(iid))
            .filter(|d| !d.inst.is_phi())
            .collect();

        // cmp+br fusion: a block-terminal icmp feeding its own cond_br.
        let fuse_tail = matches!(
            (&blk.term, body.last()),
            (Term::CondBr { cond, .. }, Some(d))
                if matches!(&d.inst, Inst::Icmp { .. }) && d.result == *cond
        );
        // bin+br fusion: a block-terminal binary op before a plain br.
        let fuse_bin_tail = matches!(
            (&blk.term, body.last()),
            (Term::Br(_), Some(d)) if matches!(&d.inst, Inst::Bin { .. })
        );
        let body_emit = if fuse_tail || fuse_bin_tail {
            &body[..body.len() - 1]
        } else {
            &body[..]
        };

        let mut k = 0;
        while k < body_emit.len() {
            let d = body_emit[k];
            // gep+load / gep+store fusion: a gep feeding the immediately
            // following memory op. The gep result register is still
            // written (later instructions may reuse the address).
            if let Inst::Gep {
                base,
                index,
                scale,
                offset,
            } = &d.inst
            {
                match body_emit.get(k + 1).map(|next| (&next.inst, *next)) {
                    Some((Inst::Load { ty, addr }, next)) if *addr == d.result => {
                        code.push(Bc::GepLoad {
                            ty: *ty,
                            gep_dst: d.result.0,
                            dst: next.result.0,
                            base: base.0,
                            index: index.0,
                            scale: *scale,
                            offset: *offset,
                        });
                        k += 2;
                        continue;
                    }
                    Some((Inst::Store { val, addr }, next)) if *addr == d.result => {
                        code.push(Bc::GepStore {
                            gep_dst: d.result.0,
                            dst: next.result.0,
                            val: val.0,
                            base: base.0,
                            index: index.0,
                            scale: *scale,
                            offset: *offset,
                        });
                        k += 2;
                        continue;
                    }
                    _ => {}
                }
            }
            // bin+bin fusion: adjacent binary ops execute strictly in
            // order, so the second is free to read the first's result.
            if let Inst::Bin { op, lhs, rhs } = &d.inst {
                if let Some(next) = body_emit.get(k + 1) {
                    if let Inst::Bin {
                        op: op2,
                        lhs: lhs2,
                        rhs: rhs2,
                    } = &next.inst
                    {
                        code.push(Bc::BinBin {
                            op1: *op,
                            dst1: d.result.0,
                            lhs1: lhs.0,
                            rhs1: rhs.0,
                            op2: *op2,
                            dst2: next.result.0,
                            lhs2: lhs2.0,
                            rhs2: rhs2.0,
                        });
                        k += 2;
                        continue;
                    }
                }
            }
            // store+bin / load+bin fusion: a memory op followed by a
            // binary op. The memory half executes first, so the bin may
            // read the loaded value; both halves keep their own charge.
            if let Some(next) = body_emit.get(k + 1) {
                if let Inst::Bin {
                    op: bop,
                    lhs: blhs,
                    rhs: brhs,
                } = &next.inst
                {
                    match &d.inst {
                        Inst::Store { val, addr } => {
                            code.push(Bc::StoreBin {
                                sdst: d.result.0,
                                val: val.0,
                                addr: addr.0,
                                op: *bop,
                                dst: next.result.0,
                                lhs: blhs.0,
                                rhs: brhs.0,
                            });
                            k += 2;
                            continue;
                        }
                        Inst::Load { ty, addr } => {
                            code.push(Bc::LoadBin {
                                ty: *ty,
                                ldst: d.result.0,
                                addr: addr.0,
                                op: *bop,
                                dst: next.result.0,
                                lhs: blhs.0,
                                rhs: brhs.0,
                            });
                            k += 2;
                            continue;
                        }
                        _ => {}
                    }
                }
            }
            code.push(lower(d));
            k += 1;
        }

        match &blk.term {
            Term::Br(t) => {
                let edge = add_edge(&mut edges, b, *t);
                if fuse_bin_tail {
                    let d = body.last().expect("fuse_bin_tail implies a body tail");
                    let Inst::Bin { op, lhs, rhs } = &d.inst else {
                        unreachable!("fuse_bin_tail implies a tail bin");
                    };
                    code.push(Bc::BinBr {
                        op: *op,
                        dst: d.result.0,
                        lhs: lhs.0,
                        rhs: rhs.0,
                        edge,
                    });
                } else {
                    code.push(Bc::Br { edge });
                }
            }
            Term::CondBr {
                cond,
                then_blk,
                else_blk,
            } => {
                let then_edge = add_edge(&mut edges, b, *then_blk);
                let else_edge = add_edge(&mut edges, b, *else_blk);
                if fuse_tail {
                    let d = body.last().expect("fuse_tail implies a body tail");
                    let Inst::Icmp { pred, lhs, rhs } = &d.inst else {
                        unreachable!("fuse_tail implies a tail icmp");
                    };
                    code.push(Bc::IcmpBr {
                        pred: *pred,
                        dst: d.result.0,
                        lhs: lhs.0,
                        rhs: rhs.0,
                        then_edge,
                        else_edge,
                    });
                } else {
                    code.push(Bc::CondBr {
                        cond: cond.0,
                        then_edge,
                        else_edge,
                    });
                }
            }
            Term::Ret(Some(v)) => code.push(Bc::Ret { val: v.0 }),
            Term::Ret(None) => code.push(Bc::RetVoid),
        }
    }

    for e in &mut edges {
        e.target = block_starts[e.block.index()];
    }
    BcFunc {
        code,
        edges,
        entry_cost: costs.first().copied().unwrap_or(1),
    }
}

/// Lowers one unfused non-phi instruction.
fn lower(d: &InstData) -> Bc {
    let dst = d.result.0;
    match &d.inst {
        Inst::Bin { op, lhs, rhs } => Bc::Bin {
            op: *op,
            dst,
            lhs: lhs.0,
            rhs: rhs.0,
        },
        Inst::Icmp { pred, lhs, rhs } => Bc::Icmp {
            pred: *pred,
            dst,
            lhs: lhs.0,
            rhs: rhs.0,
        },
        Inst::Fcmp { pred, lhs, rhs } => Bc::Fcmp {
            pred: *pred,
            dst,
            lhs: lhs.0,
            rhs: rhs.0,
        },
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => Bc::Select {
            dst,
            cond: cond.0,
            then_val: then_val.0,
            else_val: else_val.0,
        },
        Inst::Cast { kind, val } => Bc::Cast {
            kind: *kind,
            dst,
            val: val.0,
        },
        Inst::Load { ty, addr } => Bc::Load {
            ty: *ty,
            dst,
            addr: addr.0,
        },
        Inst::Store { val, addr } => Bc::Store {
            dst,
            val: val.0,
            addr: addr.0,
        },
        Inst::Gep {
            base,
            index,
            scale,
            offset,
        } => Bc::Gep {
            dst,
            base: base.0,
            index: index.0,
            scale: *scale,
            offset: *offset,
        },
        Inst::Alloca { words } => Bc::Alloca { dst, words: *words },
        Inst::Call { callee, args } => {
            let args: Box<[u32]> = args.iter().map(|a| a.0).collect();
            match callee {
                Callee::Func(f) => Bc::CallFunc {
                    dst,
                    func: f.0,
                    args,
                },
                Callee::Builtin(b) => Bc::CallBuiltin {
                    dst,
                    builtin: *b,
                    args,
                },
            }
        }
        Inst::Phi { .. } => unreachable!("phis are lowered into edge move tables"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Global, IcmpPred, Type};

    /// `for (i = 0; i < n; i++) acc += a[i]` — the canonical hot loop:
    /// tail icmp feeding the cond_br, and a gep feeding the next load.
    fn sum_module(n: i64) -> Module {
        let mut m = Module::new("sum");
        let a = m.add_global(Global::from_i64("a", &(1..=n).collect::<Vec<_>>()));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let bound = fb.const_i64(n);
        let base = fb.global_addr(a);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let acc = fb.phi(Type::I64);
        let done = fb.icmp(IcmpPred::Sge, i, bound);
        fb.cond_br(done, exit, body);
        fb.switch_to(body);
        let addr = fb.gep(base, i, 8, 0);
        let v = fb.load(Type::I64, addr);
        let acc2 = fb.add(acc, v);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(acc, BlockId::ENTRY, zero);
        fb.add_phi_incoming(acc, body, acc2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(acc));
        m.add_function(fb.finish().unwrap());
        m
    }

    #[test]
    fn fuses_tail_icmp_and_gep_load() {
        let m = sum_module(4);
        let code = &compile_module(&m).funcs[0].code;
        assert!(
            code.iter().any(|b| matches!(b, Bc::IcmpBr { .. })),
            "tail icmp + cond_br must fuse: {code:?}"
        );
        assert!(
            code.iter().any(|b| matches!(b, Bc::GepLoad { .. })),
            "gep + load must fuse: {code:?}"
        );
        // The fused constituents are gone from the unfused stream.
        assert!(!code.iter().any(|b| matches!(b, Bc::Icmp { .. })));
        assert!(!code.iter().any(|b| matches!(b, Bc::Gep { .. })));
        assert!(!code.iter().any(|b| matches!(b, Bc::Load { .. })));
        assert!(!code.iter().any(|b| matches!(b, Bc::CondBr { .. })));
    }

    #[test]
    fn fuses_memory_and_bin_pairs() {
        // Block 1: load+add -> LoadBin, store+add -> StoreBin, and the
        // block-terminal add before the br -> BinBr.
        // Block 2: gep+store -> GepStore, adjacent adds -> BinBin.
        let mut m = Module::new("pairs");
        let g = m.add_global(Global::from_i64("g", &[7, 0]));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let one = fb.const_i64(1);
        let base = fb.global_addr(g);
        let second = fb.create_block("second");
        let x = fb.load(Type::I64, base);
        let y = fb.add(x, one);
        fb.store(y, base);
        let z = fb.add(y, one);
        let w = fb.add(z, one);
        fb.br(second);
        fb.switch_to(second);
        let addr = fb.gep(base, one, 8, 0);
        fb.store(w, addr);
        let p = fb.add(w, one);
        let q = fb.add(p, one);
        fb.ret(Some(q));
        m.add_function(fb.finish().unwrap());
        let code = &compile_module(&m).funcs[0].code;
        for (want, name) in [
            (
                code.iter().any(|b| matches!(b, Bc::LoadBin { .. })),
                "LoadBin",
            ),
            (
                code.iter().any(|b| matches!(b, Bc::StoreBin { .. })),
                "StoreBin",
            ),
            (code.iter().any(|b| matches!(b, Bc::BinBr { .. })), "BinBr"),
            (
                code.iter().any(|b| matches!(b, Bc::GepStore { .. })),
                "GepStore",
            ),
            (
                code.iter().any(|b| matches!(b, Bc::BinBin { .. })),
                "BinBin",
            ),
        ] {
            assert!(want, "{name} must fuse: {code:?}");
        }
        // Everything fused: no lone memory op, bin, gep, or plain br
        // survives in the stream.
        assert!(!code.iter().any(|b| matches!(
            b,
            Bc::Load { .. } | Bc::Store { .. } | Bc::Gep { .. } | Bc::Bin { .. } | Bc::Br { .. }
        )));
    }

    #[test]
    fn edges_are_patched_and_carry_phi_moves() {
        let m = sum_module(4);
        let bf = &compile_module(&m).funcs[0];
        for e in &bf.edges {
            assert!(
                (e.target as usize) < bf.code.len(),
                "edge target {e:?} out of range"
            );
            assert!(e.cost >= 1, "block cost includes the terminator");
        }
        // The two edges into the header (entry fallthrough + latch) each
        // carry the header's two phi moves; edges into body/exit carry none.
        let func = &m.functions[0];
        let header_start: Vec<&Edge> = bf.edges.iter().filter(|e| e.moves.len() == 2).collect();
        assert_eq!(header_start.len(), 2, "edges: {:?}", bf.edges);
        let (h0, h1) = (header_start[0], header_start[1]);
        assert_eq!(h0.target, h1.target);
        assert_eq!(h0.block, h1.block);
        // Move tables differ per predecessor: from entry both phis read
        // the same zero constant; from the latch they read distinct regs.
        let from_entry = if h0.moves[0].1 == h0.moves[1].1 {
            h0
        } else {
            h1
        };
        let from_latch = if std::ptr::eq(from_entry, h0) { h1 } else { h0 };
        assert_eq!(from_entry.moves[0].1, from_entry.moves[1].1);
        assert_ne!(from_latch.moves[0].1, from_latch.moves[1].1);
        // Destination registers are the phi results, in phi order.
        let phis: Vec<u32> = func
            .block(from_entry.block)
            .insts
            .iter()
            .map(|&iid| func.inst(iid))
            .filter(|d| d.inst.is_phi())
            .map(|d| d.result.0)
            .collect();
        assert_eq!(
            from_entry.moves.iter().map(|(d, _)| *d).collect::<Vec<_>>(),
            phis
        );
        assert!(bf.edges.iter().any(|e| e.moves.is_empty()));
    }

    #[test]
    fn straight_line_function_has_no_edges() {
        let mut m = Module::new("s");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let x = fb.const_i64(7);
        fb.ret(Some(x));
        m.add_function(fb.finish().unwrap());
        let bf = &compile_module(&m).funcs[0];
        assert!(bf.edges.is_empty());
        assert_eq!(bf.code.len(), 1);
        assert!(matches!(bf.code[0], Bc::Ret { .. }));
        assert_eq!(bf.entry_cost, 1);
    }
}
