//! Compile-once / execute-many execution surface.
//!
//! [`ExecUnit`] binds a module to an [`Engine`] and performs any
//! per-module compilation exactly once (bytecode translation for
//! [`Engine::Bc`], nothing for [`Engine::Tree`]). [`Exec`] is the
//! builder-style run entry that replaces the old
//! `Machine::run`/`run_keep_memory`/`run_function` trio:
//!
//! ```
//! use lp_interp::{Engine, Exec, ExecUnit, Value};
//! # use lp_ir::builder::FunctionBuilder;
//! # use lp_ir::{Module, Type};
//! # let mut module = Module::new("m");
//! # let mut fb = FunctionBuilder::new("main", &[], Type::I64);
//! # let x = fb.const_i64(42);
//! # fb.ret(Some(x));
//! # module.add_function(fb.finish().unwrap());
//! let unit = ExecUnit::with_engine(&module, Engine::Bc); // compile once
//! for _ in 0..3 {
//!     let out = Exec::new(&unit).run(&[]).unwrap(); // execute many
//!     assert_eq!(out.result.ret, Value::I(42));
//! }
//! ```

use crate::bytecode::CompiledModule;
use crate::events::{EventSink, NullSink};
use crate::machine::{Engine, Machine, MachineConfig, RunResult};
use crate::memory::Memory;
use crate::replay::{ParallelExec, ReplayPlan};
use crate::value::Value;
use crate::Result;
use lp_ir::Module;

/// A module prepared for repeated execution on one engine.
///
/// Construction is the compile step; [`Exec::run`] is the (repeatable)
/// execute step. The unit is immutable and shareable across runs — the
/// per-run state all lives in the machine `Exec` builds internally.
#[derive(Debug, Clone)]
pub struct ExecUnit<'m> {
    module: &'m Module,
    engine: Engine,
    code: Option<CompiledModule>,
}

impl<'m> ExecUnit<'m> {
    /// Prepares `module` for the default engine ([`Engine::Bc`]),
    /// compiling it to bytecode once up front.
    #[must_use]
    pub fn new(module: &'m Module) -> ExecUnit<'m> {
        ExecUnit::with_engine(module, Engine::default())
    }

    /// Prepares `module` for `engine`, compiling it to bytecode when the
    /// engine is [`Engine::Bc`].
    #[must_use]
    pub fn with_engine(module: &'m Module, engine: Engine) -> ExecUnit<'m> {
        let code = match engine {
            Engine::Tree => None,
            Engine::Bc => Some(CompiledModule::compile(module)),
        };
        ExecUnit {
            module,
            engine,
            code,
        }
    }

    /// The module this unit executes.
    #[must_use]
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The engine this unit was compiled for.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }
}

/// Everything a run produced.
#[derive(Debug, Clone)]
pub struct ExecOut {
    /// Return value, dynamic cost, and captured output.
    pub result: RunResult,
    /// The final memory image, present iff [`Exec::keep_memory`] was
    /// requested (the replay engine byte-compares serial and replayed
    /// images to detect divergence).
    pub memory: Option<Memory>,
}

/// Builder-style run entry over an [`ExecUnit`].
///
/// Defaults: [`NullSink`], default [`MachineConfig`], entry function
/// `main`, memory discarded, replay disarmed. The configured engine
/// always comes from the unit (the config's `engine` field is
/// overwritten), so a unit never runs on an engine it was not compiled
/// for.
pub struct Exec<'x, 'm, S> {
    unit: &'x ExecUnit<'m>,
    sink: S,
    config: MachineConfig,
    keep_memory: bool,
    function: Option<&'x str>,
    replay: Option<(&'x ReplayPlan, &'x dyn ParallelExec)>,
}

impl<'x, 'm> Exec<'x, 'm, NullSink> {
    /// Starts a run of `unit` with the defaults above.
    #[must_use]
    pub fn new(unit: &'x ExecUnit<'m>) -> Exec<'x, 'm, NullSink> {
        Exec {
            unit,
            sink: NullSink,
            config: MachineConfig::default(),
            keep_memory: false,
            function: None,
            replay: None,
        }
    }
}

impl<'x, 'm, S: EventSink> Exec<'x, 'm, S> {
    /// Delivers events to `sink` (pass `&mut sink` to inspect it after
    /// the run — `&mut S` forwards the [`EventSink`] impl).
    #[must_use]
    pub fn sink<T: EventSink>(self, sink: T) -> Exec<'x, 'm, T> {
        Exec {
            unit: self.unit,
            sink,
            config: self.config,
            keep_memory: self.keep_memory,
            function: self.function,
            replay: self.replay,
        }
    }

    /// Replaces the machine configuration (the `engine` field is
    /// overwritten with the unit's engine at [`Exec::run`]).
    #[must_use]
    pub fn config(mut self, config: MachineConfig) -> Exec<'x, 'm, S> {
        self.config = config;
        self
    }

    /// Whether to return the final memory image in [`ExecOut::memory`].
    #[must_use]
    pub fn keep_memory(mut self, keep: bool) -> Exec<'x, 'm, S> {
        self.keep_memory = keep;
        self
    }

    /// Runs `name` instead of `main` (for tests and examples).
    #[must_use]
    pub fn function(mut self, name: &'x str) -> Exec<'x, 'm, S> {
        self.function = Some(name);
        self
    }

    /// Arms parallel replay: certified loops in `plan` execute across
    /// `exec`'s workers instead of serially.
    #[must_use]
    pub fn replay(mut self, plan: &'x ReplayPlan, exec: &'x dyn ParallelExec) -> Exec<'x, 'm, S> {
        self.replay = Some((plan, exec));
        self
    }

    /// Runs the unit's entry (or the selected function) with `args`.
    ///
    /// # Errors
    /// Propagates traps and resource-limit failures, or
    /// [`crate::InterpError::TypeConfusion`] for a missing entry
    /// function.
    pub fn run(self, args: &[Value]) -> Result<ExecOut> {
        let Exec {
            unit,
            mut sink,
            mut config,
            keep_memory,
            function,
            replay,
        } = self;
        config.engine = unit.engine;
        // A failed *silent* bytecode run may misreport the error: its
        // fuel checks are block-granular (see `exec_frame_silent`), so a
        // trap landing after the precharged counter passed the limit
        // comes out as the wrong variant or at the wrong point. Errors
        // are cold and a failed run's state is discarded anyway, so
        // recover exactness by re-executing on the per-instruction loop.
        let exact_rerun = unit.engine == Engine::Bc
            && S::INERT
            && replay.is_none()
            && !lp_obs::sampler::collecting();
        let rerun_config = exact_rerun.then(|| config.clone());
        let mut machine = Machine::with_config(unit.module, &mut sink, config);
        if let Some((plan, pexec)) = replay {
            machine = machine.with_replay(plan, pexec);
        }
        let first = machine.run_entry(function, args, unit.code.as_ref());
        let (result, memory) = match (first, rerun_config) {
            (Err(_), Some(cfg)) => {
                let mut exact = Machine::with_config(unit.module, &mut sink, cfg);
                exact.force_exact = true;
                exact.run_entry(function, args, unit.code.as_ref())?
            }
            (r, _) => r?,
        };
        Ok(ExecOut {
            result,
            memory: keep_memory.then_some(memory),
        })
    }
}
