//! The interpreter core.

use crate::events::{EventSink, NullSink};
use crate::memory::Memory;
use crate::replay::{
    reduction_identity, ChunkOut, ChunkRequest, ChunkSpec, LoopShape, PhiKind, ReplayCtl,
    ReplayPlan,
};
use crate::value::Value;
use crate::{InterpError, Result};
use lp_ir::{
    BinOp, BlockId, Builtin, Callee, CastKind, FcmpPred, FuncId, IcmpPred, Inst, Module, Opcode,
    Term, ValueId, ValueKind,
};

/// Dispatch-heat collection state, allocated only when
/// `lp_obs::sampler::collecting()` is on at machine construction. While
/// live, every dispatched opcode (1) bumps the exact count of its
/// dynamic `(previous, current)` opcode pair and (2) publishes the
/// packed `(func, block, prev, cur)` progress word for the sampling
/// self-profiler. When absent the hot loop pays one `Option` check per
/// instruction and nothing else.
#[derive(Debug)]
pub(crate) struct Heat {
    /// Exact pair counts, `prev * OPCODE_LIMIT + cur`.
    pairs: Vec<u64>,
    /// Opcode of the previously dispatched instruction.
    prev: u8,
}

/// Which execution engine interprets the module.
///
/// Both engines implement identical semantics — same results, same
/// dynamic cost, same event stream with the same `now` stamps — proven
/// by the engine differential suite. The bytecode engine is the default
/// fast path; the tree walk stays available as the reference oracle
/// (`--engine tree` on every CLI, `LP_ENGINE=tree` in the environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Walk the `lp_ir` arena directly (reference oracle).
    Tree,
    /// Execute flat pre-resolved bytecode compiled once per module
    /// (see [`crate::bytecode`] and [`crate::ExecUnit`]).
    #[default]
    Bc,
}

impl Engine {
    /// Parses the `--engine` CLI spelling.
    ///
    /// # Errors
    /// Returns the offending string for anything but `tree` or `bc`.
    pub fn parse(s: &str) -> std::result::Result<Engine, String> {
        match s {
            "tree" => Ok(Engine::Tree),
            "bc" => Ok(Engine::Bc),
            other => Err(other.to_string()),
        }
    }

    /// The CLI spelling (`tree` / `bc`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Tree => "tree",
            Engine::Bc => "bc",
        }
    }
}

/// Resource limits and reproducibility knobs.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Maximum total dynamic IR cost before [`InterpError::FuelExhausted`].
    pub max_cost: u64,
    /// Maximum user-function call depth.
    pub max_call_depth: u32,
    /// Seed of the deterministic `rand` builtin.
    pub rng_seed: u64,
    /// Whether `print_*` builtins capture their output into
    /// [`RunResult::output`] (capped at 10 000 lines) or discard it.
    pub capture_output: bool,
    /// Values whose definitions should be reported through
    /// [`EventSink::value_defined`]. Loopapalooza registers the latch
    /// incoming values of traced register LCDs here.
    pub watched_values: Vec<(FuncId, ValueId)>,
    /// Which engine executes the module. Engines are observationally
    /// identical, so this never affects results or profiles — only
    /// wall-clock speed (lp_runtime's `ProfileKey` excludes it for the
    /// same reason).
    pub engine: Engine,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            max_cost: 2_000_000_000,
            max_call_depth: 4096,
            rng_seed: 0x5EED_1234_ABCD_0001,
            capture_output: false,
            watched_values: Vec::new(),
            engine: Engine::Bc,
        }
    }
}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Return value of the entry function.
    pub ret: Value,
    /// Total dynamic IR cost (the paper's sequential "time").
    pub cost: u64,
    /// Captured `print_*` output, if enabled.
    pub output: Vec<String>,
}

/// An interpreter instance bound to a module and an event sink.
///
/// The machine is single-use per program run: construct, [`Machine::run`],
/// inspect. Globals are laid out and initialized at construction.
#[derive(Debug)]
pub struct Machine<'a, S> {
    pub(crate) module: &'a Module,
    pub(crate) sink: &'a mut S,
    pub(crate) config: MachineConfig,
    pub(crate) memory: Memory,
    global_bases: Vec<u64>,
    pub(crate) cost: u64,
    pub(crate) rng: u64,
    pub(crate) output: Vec<String>,
    pub(crate) depth: u32,
    /// Per-function bitmap of watched value ids (empty vec = none).
    pub(crate) watched: Vec<Vec<bool>>,
    /// Per-function register-file template with every constant value
    /// (ints, floats, bools, null, global/function addresses) already
    /// materialized. A frame starts as a memcpy of its template, so
    /// operand evaluation is a plain indexed load with no `ValueKind`
    /// dispatch on the hot path.
    pub(crate) reg_templates: Vec<Vec<Value>>,
    /// Reused scratch for two-phase phi resolution, so header re-entry
    /// (every loop iteration) does not allocate.
    pub(crate) phi_scratch: Vec<(ValueId, Value)>,
    /// Recycled register files for the bytecode engine: a returning
    /// frame parks its `Vec` here and the next call reuses the
    /// allocation (`clone_from` the template), so call-heavy code does
    /// not hit the allocator per frame.
    pub(crate) frame_pool: Vec<Vec<Value>>,
    /// Per-function recycled register files for the *silent* bytecode
    /// loop. Constant slots are immutable during execution (no
    /// instruction destination ever aliases one), so a frame recycled
    /// for the same function needs no template copy at all: its stale
    /// `Param`/`Inst` slots are dead under verified SSA's
    /// define-before-use guarantee — the precondition both engines
    /// already assume.
    pub(crate) frame_pools: Vec<Vec<Vec<Value>>>,
    /// Forces the bytecode engine onto the exact per-instruction
    /// observing loop even for an inert sink. Set by `Exec::run` when it
    /// re-executes a failed silent run to recover the exact error and
    /// error point (the silent loop's fuel checks are block-granular).
    pub(crate) force_exact: bool,
    /// Dispatch-heat collection, on only while a sampler is live.
    pub(crate) heat: Option<Box<Heat>>,
    /// Parallel replay control: when armed, entering a planned certified
    /// loop header from outside the loop fans its iterations out through
    /// the executor instead of running them serially. One `Option` check
    /// per block entry when disarmed.
    pub(crate) replay: Option<ReplayCtl<'a>>,
    /// `true` while the bytecode engine is delivering block batches
    /// (the sink declared [`crate::Fidelity::Block`]); always `false`
    /// under the tree-walk engine.
    pub(crate) batching: bool,
    /// Reused block-batch buffer for the bytecode engine's batched
    /// event path. At most one frame has a pending batch at a time
    /// (batches are flushed before calls), so one buffer serves the
    /// whole call stack. Taken from (and returned to) the per-thread
    /// batch pool so repeated runs keep the grown event streams.
    pub(crate) batch: crate::events::BlockBatch,
}

thread_local! {
    /// Recycled [`crate::events::BlockBatch`] buffers: `run_entry` parks
    /// the machine's batch buffer here at end of run and the next
    /// machine on this thread takes it back, so repeated profiled runs
    /// (a sweep, a rep loop) reuse the grown event streams instead of
    /// re-growing them from zero. Capped so idle threads hold at most a
    /// few buffers.
    static BATCH_POOL: std::cell::RefCell<Vec<crate::events::BlockBatch>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Maximum parked batch buffers per thread.
const BATCH_POOL_CAP: usize = 4;

/// Takes a recycled batch buffer off this thread's pool (crediting its
/// retained capacity to the `batch_bytes_reused` counter) or makes a
/// fresh one.
fn take_pooled_batch() -> crate::events::BlockBatch {
    BATCH_POOL
        .with(|pool| pool.borrow_mut().pop())
        .inspect(|batch| {
            let reused = batch.capacity_bytes();
            if reused > 0 {
                lp_obs::counters().add(lp_obs::Counter::BatchBytesReused, reused);
            }
        })
        .unwrap_or_default()
}

/// Parks a finished batch buffer for reuse, dropping it when it holds
/// no capacity worth keeping or the pool is full.
fn park_pooled_batch(batch: crate::events::BlockBatch) {
    if batch.capacity_bytes() == 0 {
        return;
    }
    BATCH_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < BATCH_POOL_CAP {
            pool.push(batch);
        }
    });
}

impl<'a, S: EventSink> Machine<'a, S> {
    /// Creates a machine with default configuration.
    ///
    /// # Panics
    /// Panics if global initializers are longer than their globals (the
    /// module should have been verified).
    #[must_use]
    pub fn new(module: &'a Module, sink: &'a mut S) -> Machine<'a, S> {
        Machine::with_config(module, sink, MachineConfig::default())
    }

    /// Creates a machine with an explicit configuration.
    ///
    /// # Panics
    /// Panics if global initializers are longer than their globals.
    #[must_use]
    pub fn with_config(
        module: &'a Module,
        sink: &'a mut S,
        config: MachineConfig,
    ) -> Machine<'a, S> {
        let mut memory = Memory::new();
        let mut global_bases = Vec::with_capacity(module.globals.len());
        let mut base = crate::memory::GLOBAL_BASE;
        for g in &module.globals {
            assert!(
                g.init.len() as u64 <= g.words,
                "global {} initializer too long",
                g.name
            );
            global_bases.push(base);
            for (i, w) in g.init.iter().enumerate() {
                memory
                    .write(base + (i as u64) * 8, *w)
                    .expect("global layout is aligned");
            }
            base += g.words.max(1) * 8;
        }
        let rng = config.rng_seed;
        let mut watched: Vec<Vec<bool>> = vec![Vec::new(); module.functions.len()];
        for (fid, vid) in &config.watched_values {
            let func = module.function(*fid);
            let map = &mut watched[fid.index()];
            if map.is_empty() {
                map.resize(func.values.len(), false);
            }
            map[vid.index()] = true;
        }
        let reg_templates = module
            .functions
            .iter()
            .map(|func| {
                func.values
                    .iter()
                    .map(|kind| match kind {
                        ValueKind::Param(_) | ValueKind::Inst(_) => Value::Unit,
                        ValueKind::ConstInt(c) => Value::I(*c),
                        ValueKind::ConstFloat(c) => Value::F(*c),
                        ValueKind::ConstBool(b) => Value::B(*b),
                        ValueKind::ConstNull => Value::P(0),
                        ValueKind::GlobalAddr(g) => Value::P(global_bases[g.index()]),
                        ValueKind::FuncAddr(f) => Value::P(0xF000_0000_0000 | u64::from(f.0)),
                    })
                    .collect()
            })
            .collect();
        Machine {
            module,
            sink,
            config,
            memory,
            global_bases,
            cost: 0,
            rng,
            output: Vec::new(),
            depth: 0,
            watched,
            reg_templates,
            phi_scratch: Vec::new(),
            frame_pool: Vec::new(),
            frame_pools: vec![Vec::new(); module.functions.len()],
            force_exact: false,
            heat: lp_obs::sampler::collecting().then(|| {
                Box::new(Heat {
                    pairs: vec![0; lp_obs::sampler::PAIR_SLOTS],
                    prev: 0,
                })
            }),
            replay: None,
            batching: false,
            batch: take_pooled_batch(),
        }
    }

    /// Arms parallel replay: certified loops in `plan` will be executed
    /// across `exec`'s workers instead of serially.
    #[must_use]
    pub fn with_replay(
        mut self,
        plan: &'a ReplayPlan,
        exec: &'a dyn crate::replay::ParallelExec,
    ) -> Machine<'a, S> {
        self.replay = Some(ReplayCtl { plan, exec });
        self
    }

    /// Runs `main` with the given arguments.
    ///
    /// # Errors
    /// Propagates traps and resource-limit failures, or an
    /// [`InterpError::TypeConfusion`] if the module has no `main`.
    #[deprecated(note = "compile once with `ExecUnit` and run through the `Exec` builder")]
    pub fn run(self, args: &[Value]) -> Result<RunResult> {
        self.run_entry(None, args, None).map(|(result, _)| result)
    }

    /// As [`Machine::run`], additionally returning the final memory
    /// image. The replay engine byte-compares the images of a serial and
    /// a replayed run to detect divergence.
    ///
    /// # Errors
    /// As [`Machine::run`].
    #[deprecated(note = "use `Exec::new(&unit).keep_memory(true).run(args)`")]
    pub fn run_keep_memory(self, args: &[Value]) -> Result<(RunResult, Memory)> {
        self.run_entry(None, args, None)
    }

    /// Runs an arbitrary function by name (for tests and examples).
    ///
    /// # Errors
    /// As [`Machine::run`].
    #[deprecated(note = "use `Exec::new(&unit).function(name).run(args)`")]
    pub fn run_function(self, name: &str, args: &[Value]) -> Result<RunResult> {
        self.run_entry(Some(name), args, None)
            .map(|(result, _)| result)
    }

    /// Shared run entry for both engines and every public surface (the
    /// [`crate::Exec`] builder and the deprecated `run*` trio): resolves
    /// the entry function, dispatches to the tree walk or — when `code`
    /// is present — the bytecode loop, and finalizes heat/batch/memory
    /// bookkeeping identically on both paths.
    pub(crate) fn run_entry(
        mut self,
        function: Option<&str>,
        args: &[Value],
        code: Option<&crate::bytecode::CompiledModule>,
    ) -> Result<(RunResult, Memory)> {
        let entry = match function {
            Some(name) => self
                .module
                .function_by_name(name)
                .ok_or(InterpError::TypeConfusion("unknown function"))?,
            None => self
                .module
                .entry()
                .map_err(|_| InterpError::TypeConfusion("missing main"))?,
        };
        let ret = match code {
            Some(code) => {
                self.batching = self.sink.fidelity() == crate::events::Fidelity::Block;
                let ret = self.call_function_bc(code, entry, args);
                // Deliver any pending block batch even when the run
                // trapped, so batched sinks observe exactly the events
                // the per-instruction stream would have delivered.
                self.flush_batch();
                ret
            }
            None => self.call_function(entry, args),
        };
        self.flush_heat();
        // Park the (flushed, empty) batch buffer for the next machine on
        // this thread — on error paths too, so trapped runs still recycle.
        park_pooled_batch(std::mem::take(&mut self.batch));
        let ret = ret?;
        self.sink.mem_stats(self.memory.stats());
        Ok((
            RunResult {
                ret,
                cost: self.cost,
                output: self.output,
            },
            self.memory,
        ))
    }

    /// Dynamic cost so far.
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Address of a global (for constructing pointer arguments in tests).
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[must_use]
    pub fn global_base(&self, g: lp_ir::GlobalId) -> u64 {
        self.global_bases[g.index()]
    }

    /// Folds any collected dispatch-heat pair counts into the global
    /// table, even if the run errored mid-way.
    pub(crate) fn flush_heat(&mut self) {
        if let Some(heat) = self.heat.take() {
            lp_obs::sampler::merge_pairs(&heat.pairs);
        }
    }

    /// Dispatch-heat bookkeeping for one dispatched opcode: bumps the
    /// exact `(prev, cur)` pair count and publishes the packed progress
    /// word for the sampling self-profiler. One `Option` check when no
    /// sampler is live.
    #[inline]
    pub(crate) fn heat_tick(&mut self, fid: FuncId, block: BlockId, op: Opcode) {
        let Some(heat) = self.heat.as_deref_mut() else {
            return;
        };
        let cur = op as u8;
        let idx = heat.prev as usize * lp_obs::sampler::OPCODE_LIMIT + cur as usize;
        heat.pairs[idx] = heat.pairs[idx].saturating_add(1);
        lp_obs::sampler::publish(lp_obs::sampler::pack_progress(
            fid.index() as u32,
            block.index() as u32,
            heat.prev,
            cur,
        ));
        heat.prev = cur;
    }

    pub(crate) fn charge(&mut self, c: u64) -> Result<()> {
        self.cost += c;
        if self.cost > self.config.max_cost {
            return Err(InterpError::FuelExhausted);
        }
        Ok(())
    }

    /// Operand evaluation. Constants were materialized into the frame's
    /// register file at entry (see `reg_templates`), so every operand —
    /// param, instruction result, or constant — is a plain indexed load.
    #[inline]
    fn eval(&self, _func: &lp_ir::Function, regs: &[Value], v: ValueId) -> Value {
        regs[v.index()]
    }

    fn call_function(&mut self, fid: FuncId, args: &[Value]) -> Result<Value> {
        self.depth += 1;
        if self.depth > self.config.max_call_depth {
            return Err(InterpError::CallDepthExceeded);
        }
        let func = self.module.function(fid);
        debug_assert_eq!(args.len(), func.params.len());
        let mut regs: Vec<Value> = self.reg_templates[fid.index()].clone();
        regs[..args.len()].copy_from_slice(args);
        let frame_mark = self.memory.stack_top();
        self.sink.func_entered(fid, frame_mark, self.cost);

        let mut block = BlockId::ENTRY;
        let mut prev: Option<BlockId> = None;
        let ret = loop {
            let cost = func.block_cost(block);
            self.sink.block_entered(fid, block, cost, self.cost);

            // Two-phase phi resolution (parallel-copy semantics). Phis are
            // free (resolved on edges), so no cost is charged.
            if let Some(pred) = prev {
                let blk = func.block(block);
                let mut updates = std::mem::take(&mut self.phi_scratch);
                for &iid in &blk.insts {
                    let data = func.inst(iid);
                    let Inst::Phi { incomings, .. } = &data.inst else {
                        break;
                    };
                    let (_, v) = incomings
                        .iter()
                        .find(|(b, _)| *b == pred)
                        .expect("verified phi covers predecessors");
                    updates.push((data.result, self.eval(func, &regs, *v)));
                }
                for &(r, v) in &updates {
                    regs[r.index()] = v;
                    self.heat_tick(fid, block, Opcode::Phi);
                    self.sink.phi_resolved(fid, block, r, v, self.cost);
                }
                updates.clear();
                self.phi_scratch = updates;
            }

            // Parallel replay interception: entering a planned certified
            // header from outside its loop (phis hold iteration-0 values)
            // runs all iterations across workers and leaves the exit phi
            // values in `regs`; the header then executes once more below
            // and exits through its ordinary compare.
            if self.replay.is_some() {
                self.maybe_replay(fid, func, block, prev, &mut regs)?;
            }

            // Body, charged one cost unit per instruction so producer and
            // consumer timestamps have instruction granularity. `func`
            // borrows from the module (lifetime `'a`), not from `self`, so
            // iterating it while mutating `self` is fine.
            for &iid in &func.block(block).insts {
                let data = func.inst(iid);
                if data.inst.is_phi() {
                    continue;
                }
                self.heat_tick(fid, block, data.inst.opcode());
                self.charge(1)?;
                let result = self.exec_inst(fid, func, &mut regs, &data.inst)?;
                regs[data.result.index()] = result;
                let map = &self.watched[fid.index()];
                if !map.is_empty() && map[data.result.index()] {
                    self.sink.value_defined(fid, data.result, result, self.cost);
                }
            }

            // Terminator (one cost unit).
            self.heat_tick(fid, block, func.block(block).term.opcode());
            self.charge(1)?;
            match &func.block(block).term {
                Term::Br(t) => {
                    prev = Some(block);
                    block = *t;
                }
                Term::CondBr {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    let c = self.eval(func, &regs, *cond).as_bool()?;
                    prev = Some(block);
                    block = if c { *then_blk } else { *else_blk };
                }
                Term::Ret(v) => {
                    break match v {
                        Some(v) => self.eval(func, &regs, *v),
                        None => Value::Unit,
                    };
                }
            }
        };
        self.memory.stack_release(frame_mark);
        self.sink.func_exited(fid, self.cost);
        self.depth -= 1;
        Ok(ret)
    }

    /// Replays a certified loop across workers if `block` is a planned
    /// header being entered from outside its loop. On return, `regs`
    /// holds the loop's exit phi values, memory holds every iteration's
    /// writes, and exactly the serial cost has been charged — minus the
    /// final header evaluation, which the caller performs next.
    ///
    /// Falls through (leaving everything untouched) when the header is
    /// not planned, is being re-entered from its latch, or runs fewer
    /// than two iterations.
    pub(crate) fn maybe_replay(
        &mut self,
        fid: FuncId,
        func: &lp_ir::Function,
        block: BlockId,
        prev: Option<BlockId>,
        regs: &mut [Value],
    ) -> Result<()> {
        let Some(ctl) = self.replay else {
            return Ok(());
        };
        let Some(shape) = ctl.plan.shape_at(fid, block) else {
            return Ok(());
        };
        if prev.is_some_and(|p| shape.contains(p)) {
            // Latch re-entry: the serial tail of a loop the probe
            // declined to replay (fewer than two iterations).
            return Ok(());
        }

        // Loop-invariant step values, evaluated once at entry.
        let mut steps = Vec::with_capacity(shape.phis.len());
        for (_, kind) in &shape.phis {
            steps.push(match kind {
                PhiKind::Affine { step } => step.eval(regs)?,
                PhiKind::Reduction { .. } => 0,
            });
        }
        let probe_budget = (self.config.max_cost - self.cost) / func.block_cost(block).max(1) + 2;
        let n = probe_trip_count(func, shape, regs, &steps, probe_budget)?;
        if n < 2 {
            return Ok(());
        }

        // Seed one register file per chunk.
        let entries: Vec<Value> = shape.phis.iter().map(|(v, _)| regs[v.index()]).collect();
        let ranges = lp_ir::split_iterations(n, ctl.plan.jobs());
        let mut chunks = Vec::with_capacity(ranges.len());
        for (ci, range) in ranges.iter().enumerate() {
            let mut cregs = regs.to_vec();
            for (pi, (v, kind)) in shape.phis.iter().enumerate() {
                cregs[v.index()] = match kind {
                    PhiKind::Affine { .. } => Value::I(
                        entries[pi]
                            .as_i64()?
                            .wrapping_add((range.start as i64).wrapping_mul(steps[pi])),
                    ),
                    PhiKind::Reduction { .. } if ci == 0 => {
                        // First chunk carries the live-in value; make
                        // sure it really is an integer before workers
                        // start folding.
                        Value::I(entries[pi].as_i64()?)
                    }
                    PhiKind::Reduction { op } => Value::I(reduction_identity(*op).ok_or(
                        InterpError::TypeConfusion("non-integer reduction in replay"),
                    )?),
                };
            }
            chunks.push(ChunkSpec {
                index: ci,
                iters: range.end - range.start,
                regs: cregs,
            });
        }

        // Fan out. Workers inherit the remaining fuel and call depth;
        // certified loops cannot print, draw random numbers, or touch
        // the allocators, so no other machine state needs to travel.
        let worker_config = MachineConfig {
            max_cost: self.config.max_cost - self.cost,
            max_call_depth: self.config.max_call_depth - self.depth,
            rng_seed: self.config.rng_seed,
            capture_output: false,
            watched_values: Vec::new(),
            // Chunk workers always run the tree walk (`run_chunk` calls
            // `exec_chunk` directly); both engines produce value-identical
            // chunks, so this only labels the worker's config.
            engine: Engine::Tree,
        };
        let request = ChunkRequest {
            module: self.module,
            shape,
            memory: &self.memory,
            config: &worker_config,
            chunks,
        };
        let outs = ctl.exec.run_chunks(request)?;
        if outs.len() != ranges.len() {
            return Err(InterpError::TypeConfusion(
                "replay executor returned wrong chunk count",
            ));
        }

        // Charge every worker's cost before touching memory, so fuel
        // exhaustion surfaces exactly as it would have serially.
        for out in &outs {
            self.charge(out.cost)?;
        }
        // Deterministic delta merge: apply chunk logs in chunk (=
        // iteration) order. Addresses at or above the loop-entry stack
        // top are worker-private scratch frames (dead on both sides)
        // and are skipped; live caller-frame and global/heap writes land.
        let stack_mark = self.memory.stack_top();
        for out in &outs {
            for &(addr, word) in &out.log {
                if addr < stack_mark {
                    self.memory.write(addr, word)?;
                }
            }
        }
        // Exit phi values: affine phis in closed form, reduction phis
        // as the in-chunk-order fold of the partials.
        for (pi, (v, kind)) in shape.phis.iter().enumerate() {
            regs[v.index()] = match kind {
                PhiKind::Affine { .. } => Value::I(
                    entries[pi]
                        .as_i64()?
                        .wrapping_add((n as i64).wrapping_mul(steps[pi])),
                ),
                PhiKind::Reduction { op } => {
                    let mut acc = outs[0].phi_out[pi];
                    for out in &outs[1..] {
                        acc = exec_bin(*op, acc, out.phi_out[pi])?;
                    }
                    acc
                }
            };
        }
        Ok(())
    }

    /// Executes `iters` iterations of a certified loop, starting at the
    /// header with `regs` pre-seeded for the chunk's first iteration.
    /// Stops on the latch→header arrival after the last iteration,
    /// leaving the next iteration's phi inputs in `regs` (the chunk's
    /// partials / exit values).
    fn exec_chunk(&mut self, shape: &LoopShape, regs: &mut [Value], iters: u64) -> Result<()> {
        let fid = shape.func;
        let func = self.module.function(fid);
        let mut done = 0u64;
        let mut block = shape.header;
        let mut prev: Option<BlockId> = None;
        loop {
            if !shape.contains(block) {
                return Err(InterpError::TypeConfusion(
                    "certified loop escaped during replay",
                ));
            }
            // Two-phase phi resolution, as in `call_function` (free).
            if let Some(pred) = prev {
                let blk = func.block(block);
                let mut updates = std::mem::take(&mut self.phi_scratch);
                for &iid in &blk.insts {
                    let data = func.inst(iid);
                    let Inst::Phi { incomings, .. } = &data.inst else {
                        break;
                    };
                    let (_, v) = incomings
                        .iter()
                        .find(|(b, _)| *b == pred)
                        .expect("verified phi covers predecessors");
                    updates.push((data.result, regs[v.index()]));
                }
                for &(r, v) in &updates {
                    regs[r.index()] = v;
                }
                updates.clear();
                self.phi_scratch = updates;
            }
            // A latch→header arrival completes one iteration; stop
            // before re-executing the header once the chunk is done, so
            // the header's compare runs exactly once per iteration.
            if block == shape.header && prev.is_some() {
                done += 1;
                if done == iters {
                    return Ok(());
                }
            }
            for &iid in &func.block(block).insts {
                let data = func.inst(iid);
                if data.inst.is_phi() {
                    continue;
                }
                self.charge(1)?;
                let result = self.exec_inst(fid, func, regs, &data.inst)?;
                regs[data.result.index()] = result;
            }
            self.charge(1)?;
            match &func.block(block).term {
                Term::Br(t) => {
                    prev = Some(block);
                    block = *t;
                }
                Term::CondBr {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    let c = regs[cond.index()].as_bool()?;
                    prev = Some(block);
                    block = if c { *then_blk } else { *else_blk };
                }
                Term::Ret(_) => {
                    return Err(InterpError::TypeConfusion(
                        "certified loop escaped during replay",
                    ));
                }
            }
        }
    }

    fn exec_inst(
        &mut self,
        fid: FuncId,
        func: &lp_ir::Function,
        regs: &mut [Value],
        inst: &Inst,
    ) -> Result<Value> {
        match inst {
            Inst::Bin { .. }
            | Inst::Icmp { .. }
            | Inst::Fcmp { .. }
            | Inst::Select { .. }
            | Inst::Cast { .. }
            | Inst::Gep { .. } => exec_pure(regs, inst),
            Inst::Load { ty, addr } => {
                let a = self.eval(func, regs, *addr).as_ptr()?;
                let bits = self.memory.read(a)?;
                self.sink.load(a, self.cost);
                Ok(Value::from_bits(*ty, bits))
            }
            Inst::Store { val, addr } => {
                let v = self.eval(func, regs, *val).to_bits()?;
                let a = self.eval(func, regs, *addr).as_ptr()?;
                self.memory.write(a, v)?;
                self.sink.store(a, self.cost);
                Ok(Value::Unit)
            }
            Inst::Alloca { words } => {
                let base = self.memory.stack_alloc(u64::from(*words));
                Ok(Value::P(base))
            }
            Inst::Call { callee, args } => {
                let argv: Vec<Value> = args.iter().map(|a| self.eval(func, regs, *a)).collect();
                match callee {
                    Callee::Func(target) => self.call_function(*target, &argv),
                    Callee::Builtin(b) => {
                        self.sink.builtin_called(fid, *b, self.cost);
                        self.exec_builtin(*b, &argv)
                    }
                }
            }
            Inst::Phi { .. } => unreachable!("phis handled at block entry"),
        }
    }

    pub(crate) fn exec_builtin(&mut self, b: Builtin, args: &[Value]) -> Result<Value> {
        match b {
            Builtin::Malloc => {
                let bytes = args[0].as_i64()?.max(0) as u64;
                Ok(Value::P(self.memory.heap_alloc(bytes)))
            }
            Builtin::Free => Ok(Value::Unit),
            Builtin::Memcpy => {
                // Forward word copy: like C `memcpy`, overlapping
                // dst/src ranges are not supported (no memmove variant).
                let dst = args[0].as_ptr()?;
                let src = args[1].as_ptr()?;
                let bytes = args[2].as_i64()?.max(0) as u64;
                for w in 0..bytes.div_ceil(8) {
                    let bits = self.memory.read(src + w * 8)?;
                    self.sink.load(src + w * 8, self.cost);
                    self.memory.write(dst + w * 8, bits)?;
                    self.sink.store(dst + w * 8, self.cost);
                }
                Ok(Value::Unit)
            }
            Builtin::Memset => {
                let dst = args[0].as_ptr()?;
                let word = args[1].as_i64()? as u64;
                let bytes = args[2].as_i64()?.max(0) as u64;
                for w in 0..bytes.div_ceil(8) {
                    self.memory.write(dst + w * 8, word)?;
                    self.sink.store(dst + w * 8, self.cost);
                }
                Ok(Value::Unit)
            }
            Builtin::PrintI64 => {
                if self.config.capture_output && self.output.len() < 10_000 {
                    self.output.push(args[0].as_i64()?.to_string());
                }
                Ok(Value::Unit)
            }
            Builtin::PrintF64 => {
                if self.config.capture_output && self.output.len() < 10_000 {
                    self.output.push(format!("{:?}", args[0].as_f64()?));
                }
                Ok(Value::Unit)
            }
            Builtin::Rand => {
                self.rng = self
                    .rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Ok(Value::I((self.rng >> 33) as i64))
            }
            Builtin::Sqrt => {
                let x = args[0].as_f64()?;
                if x < 0.0 {
                    return Err(InterpError::MathDomain("sqrt"));
                }
                Ok(Value::F(x.sqrt()))
            }
            Builtin::Sin => Ok(Value::F(args[0].as_f64()?.sin())),
            Builtin::Cos => Ok(Value::F(args[0].as_f64()?.cos())),
            Builtin::Exp => Ok(Value::F(args[0].as_f64()?.exp())),
            Builtin::Log => {
                let x = args[0].as_f64()?;
                if x <= 0.0 {
                    return Err(InterpError::MathDomain("log"));
                }
                Ok(Value::F(x.ln()))
            }
            Builtin::FAbs => Ok(Value::F(args[0].as_f64()?.abs())),
            Builtin::Floor => Ok(Value::F(args[0].as_f64()?.floor())),
            Builtin::Pow => Ok(Value::F(args[0].as_f64()?.powf(args[1].as_f64()?))),
        }
    }
}

pub(crate) fn exec_bin(op: BinOp, l: Value, r: Value) -> Result<Value> {
    if op.is_float() {
        let (a, b) = (l.as_f64()?, r.as_f64()?);
        return Ok(Value::F(match op {
            BinOp::FAdd => a + b,
            BinOp::FSub => a - b,
            BinOp::FMul => a * b,
            BinOp::FDiv => a / b,
            BinOp::FMin => a.min(b),
            BinOp::FMax => a.max(b),
            _ => unreachable!(),
        }));
    }
    let (a, b) = (l.as_i64()?, r.as_i64()?);
    Ok(Value::I(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if b == 0 {
                return Err(InterpError::DivByZero);
            }
            a.checked_div(b).unwrap_or(i64::MIN)
        }
        BinOp::SRem => {
            if b == 0 {
                return Err(InterpError::DivByZero);
            }
            a.checked_rem(b).unwrap_or(0)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::AShr => a.wrapping_shr(b as u32 & 63),
        BinOp::SMin => a.min(b),
        BinOp::SMax => a.max(b),
        _ => unreachable!(),
    }))
}

/// Evaluates a register-pure instruction against `regs` — no memory, no
/// allocators, no calls. This is both the interpreter's fast path for
/// such instructions and the replay trip-count probe's evaluator (the
/// only instruction kinds certification admits into a certified header).
fn exec_pure(regs: &[Value], inst: &Inst) -> Result<Value> {
    let get = |v: &ValueId| regs[v.index()];
    match inst {
        Inst::Bin { op, lhs, rhs } => exec_bin(*op, get(lhs), get(rhs)),
        Inst::Icmp { pred, lhs, rhs } => {
            let (l, r) = match (get(lhs), get(rhs)) {
                (Value::P(a), Value::P(b)) => (a as i64, b as i64),
                (a, b) => (a.as_i64()?, b.as_i64()?),
            };
            Ok(Value::B(match pred {
                IcmpPred::Eq => l == r,
                IcmpPred::Ne => l != r,
                IcmpPred::Slt => l < r,
                IcmpPred::Sle => l <= r,
                IcmpPred::Sgt => l > r,
                IcmpPred::Sge => l >= r,
            }))
        }
        Inst::Fcmp { pred, lhs, rhs } => {
            let l = get(lhs).as_f64()?;
            let r = get(rhs).as_f64()?;
            Ok(Value::B(match pred {
                FcmpPred::Oeq => l == r,
                FcmpPred::One => l != r,
                FcmpPred::Olt => l < r,
                FcmpPred::Ole => l <= r,
                FcmpPred::Ogt => l > r,
                FcmpPred::Oge => l >= r,
            }))
        }
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => {
            let c = get(cond).as_bool()?;
            Ok(if c { get(then_val) } else { get(else_val) })
        }
        Inst::Cast { kind, val } => {
            let v = get(val);
            Ok(match kind {
                CastKind::SiToFp => Value::F(v.as_i64()? as f64),
                CastKind::FpToSi => Value::I(v.as_f64()? as i64),
                CastKind::PtrToInt => Value::I(v.as_ptr()? as i64),
                CastKind::IntToPtr => Value::P(v.as_i64()? as u64),
                CastKind::BoolToInt => Value::I(i64::from(v.as_bool()?)),
            })
        }
        Inst::Gep {
            base,
            index,
            scale,
            offset,
        } => {
            let b = get(base).as_ptr()?;
            let i = get(index).as_i64()?;
            let addr = (b as i64)
                .wrapping_add(i.wrapping_mul(*scale))
                .wrapping_add(*offset) as u64;
            Ok(Value::P(addr))
        }
        _ => Err(InterpError::TypeConfusion(
            "impure instruction in pure context",
        )),
    }
}

/// Derives a certified loop's exact trip count by evaluating the
/// header's pure instructions against closed-form induction values
/// `entry + k·step` for `k = 0, 1, …` until the header's branch selects
/// an exit successor. Charges nothing; `budget` bounds the walk so a
/// diverging loop surfaces as fuel exhaustion just like it would
/// serially.
fn probe_trip_count(
    func: &lp_ir::Function,
    shape: &LoopShape,
    regs: &[Value],
    steps: &[i64],
    budget: u64,
) -> Result<u64> {
    let mut scratch = regs.to_vec();
    // Reduction phis never feed the exit condition (certification
    // guarantees it), so only affine entries matter below.
    let entries: Vec<i64> = shape
        .phis
        .iter()
        .map(|(v, kind)| match kind {
            PhiKind::Affine { .. } => scratch[v.index()].as_i64(),
            PhiKind::Reduction { .. } => Ok(0),
        })
        .collect::<Result<_>>()?;
    let header = func.block(shape.header);
    for k in 0..=budget {
        for (pi, (v, kind)) in shape.phis.iter().enumerate() {
            if matches!(kind, PhiKind::Affine { .. }) {
                scratch[v.index()] =
                    Value::I(entries[pi].wrapping_add((k as i64).wrapping_mul(steps[pi])));
            }
        }
        for &iid in &header.insts {
            let data = func.inst(iid);
            if data.inst.is_phi() {
                continue;
            }
            scratch[data.result.index()] = exec_pure(&scratch, &data.inst)?;
        }
        let Term::CondBr {
            cond,
            then_blk,
            else_blk,
        } = &header.term
        else {
            return Err(InterpError::TypeConfusion(
                "certified header must end in a conditional branch",
            ));
        };
        let taken = if scratch[cond.index()].as_bool()? {
            *then_blk
        } else {
            *else_blk
        };
        if !shape.contains(taken) {
            return Ok(k);
        }
    }
    Err(InterpError::FuelExhausted)
}

/// Runs one replay chunk on a fresh worker machine over a clone of the
/// parent memory, returning the chunk's write log, cost, and final phi
/// values. Workers carry no replay plan, so any nested loop inside the
/// chunk runs serially.
///
/// # Errors
/// Propagates interpreter traps, fuel exhaustion, and the defensive
/// escape check (control leaving the certified loop's blocks — which
/// certification should make impossible).
///
/// # Panics
/// Panics if a chunk register file has the wrong length for the loop's
/// function (the machine that built the [`ChunkSpec`] guarantees this).
pub fn run_chunk(req: &ChunkRequest<'_>, spec: &ChunkSpec) -> Result<ChunkOut> {
    let mut sink = NullSink;
    let mut machine = Machine::with_config(req.module, &mut sink, req.config.clone());
    machine.memory = req.memory.clone();
    machine.memory.enable_write_log();
    let mut regs = spec.regs.clone();
    assert_eq!(
        regs.len(),
        req.module.function(req.shape.func).values.len(),
        "chunk register file length"
    );
    machine.exec_chunk(req.shape, &mut regs, spec.iters)?;
    let cost = machine.cost;
    let log = machine.memory.take_write_log();
    let phi_out = req
        .shape
        .phis
        .iter()
        .map(|(v, _)| regs[v.index()])
        .collect();
    Ok(ChunkOut {
        index: spec.index,
        cost,
        log,
        phi_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{CountingSink, NullSink};
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Global, Type};

    use crate::{Exec, ExecUnit};

    /// Runs `m` on both engines with the same config and asserts the
    /// results are identical — every machine test doubles as an engine
    /// differential test.
    fn run_both_cfg(m: &Module, cfg: &MachineConfig, args: &[Value]) -> RunResult {
        let tree_unit = ExecUnit::with_engine(m, Engine::Tree);
        let tree = Exec::new(&tree_unit)
            .config(cfg.clone())
            .run(args)
            .unwrap()
            .result;
        let bc_unit = ExecUnit::with_engine(m, Engine::Bc);
        let bc = Exec::new(&bc_unit)
            .config(cfg.clone())
            .run(args)
            .unwrap()
            .result;
        assert_eq!(tree, bc, "tree and bc engines diverged");
        tree
    }

    fn run_main(m: &Module, args: &[Value]) -> RunResult {
        run_both_cfg(m, &MachineConfig::default(), args)
    }

    /// As [`run_both_cfg`] for runs that must trap: both engines must
    /// fail with the same error.
    fn err_both(m: &Module, cfg: &MachineConfig, args: &[Value]) -> InterpError {
        let tree_unit = ExecUnit::with_engine(m, Engine::Tree);
        let tree = Exec::new(&tree_unit)
            .config(cfg.clone())
            .run(args)
            .unwrap_err();
        let bc_unit = ExecUnit::with_engine(m, Engine::Bc);
        let bc = Exec::new(&bc_unit)
            .config(cfg.clone())
            .run(args)
            .unwrap_err();
        assert_eq!(tree, bc, "tree and bc engines trapped differently");
        tree
    }

    /// sum of 0..n via loop.
    fn sum_module() -> Module {
        let mut m = Module::new("sum");
        let mut fb = FunctionBuilder::new("main", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let s = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let s2 = fb.add(s, i);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(s, BlockId::ENTRY, zero);
        fb.add_phi_incoming(s, body, s2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(s));
        m.add_function(fb.finish().unwrap());
        m
    }

    #[test]
    fn loop_sums_correctly() {
        let m = sum_module();
        assert_eq!(run_main(&m, &[Value::I(10)]).ret, Value::I(45));
        assert_eq!(run_main(&m, &[Value::I(0)]).ret, Value::I(0));
    }

    #[test]
    fn cost_is_dynamic_ir_count() {
        let m = sum_module();
        let r0 = run_main(&m, &[Value::I(0)]);
        let r10 = run_main(&m, &[Value::I(10)]);
        let r20 = run_main(&m, &[Value::I(20)]);
        // Each extra iteration costs the same (header + body).
        assert_eq!(r20.cost - r10.cost, r10.cost - r0.cost);
        assert!(r0.cost > 0);
    }

    #[test]
    fn events_are_emitted() {
        let mut m = Module::new("ev");
        let g = m.add_global(Global::zeroed("buf", 4));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let p = fb.global_addr(g);
        let x = fb.const_i64(5);
        fb.store(x, p);
        let y = fb.load(Type::I64, p);
        fb.ret(Some(y));
        m.add_function(fb.finish().unwrap());
        let mut sink = CountingSink::default();
        let unit = ExecUnit::new(&m);
        let r = Exec::new(&unit).sink(&mut sink).run(&[]).unwrap().result;
        assert_eq!(r.ret, Value::I(5));
        assert_eq!(sink.loads, 1);
        assert_eq!(sink.stores, 1);
        assert_eq!(sink.blocks, 1);
        assert_eq!(sink.calls, 1); // main itself
        assert_eq!(r.cost, sink.cost);
        // The bc engine delivers the same events through the batched
        // path (CountingSink declares block fidelity).
        let mut bc_sink = CountingSink::default();
        let bc_unit = ExecUnit::with_engine(&m, Engine::Bc);
        let rb = Exec::new(&bc_unit)
            .sink(&mut bc_sink)
            .run(&[])
            .unwrap()
            .result;
        assert_eq!(rb, r);
        assert_eq!(
            (bc_sink.cost, bc_sink.blocks, bc_sink.loads, bc_sink.stores),
            (sink.cost, sink.blocks, sink.loads, sink.stores)
        );
        assert_eq!(
            (bc_sink.calls, bc_sink.builtins, bc_sink.phis),
            (sink.calls, sink.builtins, sink.phis)
        );
    }

    #[test]
    fn dispatch_heat_counts_pairs_when_collecting() {
        use lp_obs::sampler;
        // Store-then-load body: the exact (store, load) adjacency must
        // land in the pair table, and load dispatches must cover the
        // sink's load count. Other tests may run machines concurrently
        // while collection is on, so assertions are lower bounds.
        let mut m = Module::new("heat");
        let g = m.add_global(Global::zeroed("buf", 4));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let p = fb.global_addr(g);
        let x = fb.const_i64(5);
        fb.store(x, p);
        let y = fb.load(Type::I64, p);
        fb.ret(Some(y));
        m.add_function(fb.finish().unwrap());

        for engine in [Engine::Tree, Engine::Bc] {
            sampler::reset_pairs();
            sampler::set_collecting(true);
            let mut sink = CountingSink::default();
            let unit = ExecUnit::with_engine(&m, engine);
            let r = Exec::new(&unit).sink(&mut sink).run(&[]).unwrap().result;
            sampler::set_collecting(false);
            assert_eq!(r.ret, Value::I(5));

            let pairs = sampler::pair_counts();
            let load_dispatches: u64 = (0..sampler::OPCODE_LIMIT)
                .map(|prev| pairs[prev * sampler::OPCODE_LIMIT + Opcode::Load as usize])
                .sum();
            assert!(load_dispatches >= sink.loads, "{engine:?}");
            let idx = Opcode::Store as usize * sampler::OPCODE_LIMIT + Opcode::Load as usize;
            assert!(
                pairs[idx] >= 1,
                "store->load pair missing from {engine:?} heat table"
            );
            sampler::reset_pairs();
        }
    }

    #[test]
    fn globals_are_initialized() {
        let mut m = Module::new("gi");
        let g = m.add_global(Global::from_i64("tab", &[7, 8, 9]));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let p = fb.global_addr(g);
        let two = fb.const_i64(2);
        let a = fb.gep(p, two, 8, 0);
        let v = fb.load(Type::I64, a);
        fb.ret(Some(v));
        m.add_function(fb.finish().unwrap());
        assert_eq!(run_main(&m, &[]).ret, Value::I(9));
    }

    #[test]
    fn user_calls_and_stack_frames() {
        let mut m = Module::new("call");
        // callee: alloca a slot, store arg, load it back doubled.
        let mut fb = FunctionBuilder::new("twice", &[Type::I64], Type::I64);
        let x = fb.param(0);
        let slot = fb.alloca(1);
        fb.store(x, slot);
        let v = fb.load(Type::I64, slot);
        let r = fb.add(v, v);
        fb.ret(Some(r));
        let twice = m.add_function(fb.finish().unwrap());
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let a = fb.const_i64(21);
        let r = fb.call(twice, Type::I64, &[a]);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        assert_eq!(run_main(&m, &[]).ret, Value::I(42));
    }

    #[test]
    fn builtins_work() {
        let mut m = Module::new("b");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let sixty_four = fb.const_i64(64);
        let p = fb.call_builtin(Builtin::Malloc, &[sixty_four]);
        let x = fb.const_i64(-3);
        fb.store(x, p);
        let four = fb.const_f64(4.0);
        let s = fb.call_builtin(Builtin::Sqrt, &[four]);
        let si = fb.fptosi(s);
        let v = fb.load(Type::I64, p);
        let r = fb.add(si, v);
        fb.call_builtin(Builtin::Free, &[p]);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        assert_eq!(run_main(&m, &[]).ret, Value::I(-1));
    }

    #[test]
    fn rand_is_deterministic() {
        let mut m = Module::new("r");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let a = fb.call_builtin(Builtin::Rand, &[]);
        let b = fb.call_builtin(Builtin::Rand, &[]);
        let r = fb.xor(a, b);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        let r1 = run_main(&m, &[]);
        let r2 = run_main(&m, &[]);
        assert_eq!(r1.ret, r2.ret);
        assert_ne!(r1.ret, Value::I(0), "two draws should differ");
    }

    #[test]
    fn div_by_zero_traps() {
        let mut m = Module::new("d");
        let mut fb = FunctionBuilder::new("main", &[Type::I64], Type::I64);
        let x = fb.const_i64(1);
        let n = fb.param(0);
        let r = fb.sdiv(x, n);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        let e = err_both(&m, &MachineConfig::default(), &[Value::I(0)]);
        assert_eq!(e, InterpError::DivByZero);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut m = Module::new("inf");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let l = fb.create_block("l");
        fb.br(l);
        fb.switch_to(l);
        fb.br(l);
        // No phis needed: infinite empty loop.
        m.add_function(fb.finish().unwrap());
        let cfg = MachineConfig {
            max_cost: 1000,
            ..MachineConfig::default()
        };
        let e = err_both(&m, &cfg, &[]);
        assert_eq!(e, InterpError::FuelExhausted);
    }

    #[test]
    fn output_capture() {
        let mut m = Module::new("o");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let x = fb.const_i64(7);
        fb.call_builtin(Builtin::PrintI64, &[x]);
        fb.ret(Some(x));
        m.add_function(fb.finish().unwrap());
        let cfg = MachineConfig {
            capture_output: true,
            ..MachineConfig::default()
        };
        let r = run_both_cfg(&m, &cfg, &[]);
        assert_eq!(r.output, vec!["7".to_string()]);
    }

    #[test]
    fn phi_swap_has_parallel_copy_semantics() {
        // a, b = b, a each iteration; after 3 iterations of swapping
        // (1, 2) we get (2, 1).
        let mut m = Module::new("swap");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let one = fb.const_i64(1);
        let two = fb.const_i64(2);
        let zero = fb.const_i64(0);
        let three = fb.const_i64(3);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let a = fb.phi(Type::I64);
        let b = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, three);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(a, BlockId::ENTRY, one);
        fb.add_phi_incoming(a, body, b); // a <- b
        fb.add_phi_incoming(b, BlockId::ENTRY, two);
        fb.add_phi_incoming(b, body, a); // b <- a (old a!)
        fb.br(header);
        fb.switch_to(exit);
        let ten = fb.const_i64(10);
        let hi = fb.mul(a, ten);
        let r = fb.add(hi, b);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        // After odd number of swaps: a=2, b=1 -> 21.
        assert_eq!(run_main(&m, &[]).ret, Value::I(21));
    }

    #[test]
    fn memcpy_and_memset_move_words_and_emit_events() {
        let mut m = Module::new("mm");
        let src = m.add_global(Global::from_i64("src", &[1, 2, 3, 4]));
        let dst = m.add_global(Global::zeroed("dst", 4));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let s = fb.global_addr(src);
        let d = fb.global_addr(dst);
        let bytes = fb.const_i64(32);
        fb.call_builtin(Builtin::Memcpy, &[d, s, bytes]);
        let word = fb.const_i64(9);
        let half = fb.const_i64(16);
        fb.call_builtin(Builtin::Memset, &[s, word, half]);
        let two = fb.const_i64(2);
        let a = fb.gep(d, two, 8, 0);
        let v1 = fb.load(Type::I64, a); // dst[2] == 3 (copied)
        let z = fb.const_i64(0);
        let b = fb.gep(s, z, 8, 8);
        let v2 = fb.load(Type::I64, b); // src[1] == 9 (memset)
        let r = fb.mul(v1, v2);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        for engine in [Engine::Tree, Engine::Bc] {
            let mut sink = CountingSink::default();
            let unit = ExecUnit::with_engine(&m, engine);
            let res = Exec::new(&unit).sink(&mut sink).run(&[]).unwrap().result;
            assert_eq!(res.ret, Value::I(27), "{engine:?}");
            // 4 memcpy loads + 2 explicit loads; 4 memcpy + 2 memset stores.
            assert_eq!(sink.loads, 6, "{engine:?}");
            assert_eq!(sink.stores, 6, "{engine:?}");
            assert_eq!(sink.builtins, 2, "{engine:?}");
        }
    }

    #[test]
    fn call_depth_limit_trips_on_infinite_recursion() {
        let mut m = Module::new("rec");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let r = fb.call(lp_ir::FuncId(0), Type::I64, &[]); // self-call
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        let cfg = MachineConfig {
            max_call_depth: 64,
            ..MachineConfig::default()
        };
        let e = err_both(&m, &cfg, &[]);
        assert_eq!(e, InterpError::CallDepthExceeded);
    }

    #[test]
    fn null_and_unaligned_accesses_trap() {
        let mut m = Module::new("bad");
        let mut fb = FunctionBuilder::new("main", &[Type::I64], Type::I64);
        let x = fb.param(0);
        let p = fb.cast(lp_ir::CastKind::IntToPtr, x);
        let v = fb.load(Type::I64, p);
        fb.ret(Some(v));
        m.add_function(fb.finish().unwrap());
        let run = |arg: i64| err_both(&m, &MachineConfig::default(), &[Value::I(arg)]);
        assert_eq!(run(0), InterpError::NullDeref(0));
        assert_eq!(run(0x1000_0004), InterpError::Unaligned(0x1000_0004));
    }

    use lp_ir::{BlockId, IcmpPred};

    /// sum_module's loop shape, hand-built: header L1, body/latch L2,
    /// phi 0 = i (affine, step 1), phi 1 = s (integer add reduction).
    fn sum_shape(m: &Module) -> crate::replay::LoopShape {
        use crate::replay::{LoopShape, PhiKind, StepExpr};
        let func = m.function_by_name("main").unwrap();
        let f = m.function(func);
        let header = BlockId(1);
        let phis: Vec<ValueId> = f
            .block(header)
            .insts
            .iter()
            .map(|&iid| f.inst(iid))
            .take_while(|d| d.inst.is_phi())
            .map(|d| d.result)
            .collect();
        // First phi is the induction variable (step 1); a second, if
        // present, is an integer add reduction.
        let mut kinds = vec![(
            phis[0],
            PhiKind::Affine {
                step: StepExpr::constant(1),
            },
        )];
        if let Some(&s) = phis.get(1) {
            kinds.push((s, PhiKind::Reduction { op: BinOp::Add }));
        }
        LoopShape {
            func,
            header,
            latch: BlockId(2),
            blocks: vec![BlockId(1), BlockId(2)],
            phis: kinds,
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_trio_still_works() {
        // Back-compat: the old entry points must stay observationally
        // identical to the `Exec` builder they now wrap.
        let m = sum_module();
        let expect = run_main(&m, &[Value::I(10)]);
        let mut sink = NullSink;
        let r = Machine::new(&m, &mut sink).run(&[Value::I(10)]).unwrap();
        assert_eq!(r, expect);
        let mut sink = NullSink;
        let (r, _mem) = Machine::new(&m, &mut sink)
            .run_keep_memory(&[Value::I(10)])
            .unwrap();
        assert_eq!(r, expect);
        let mut sink = NullSink;
        let r = Machine::new(&m, &mut sink)
            .run_function("main", &[Value::I(10)])
            .unwrap();
        assert_eq!(r, expect);
    }

    #[test]
    fn replayed_sum_matches_serial_result_and_cost() {
        use crate::replay::{ReplayPlan, SerialExec};
        let m = sum_module();
        for n in [0i64, 1, 2, 3, 10, 97] {
            let serial = run_main(&m, &[Value::I(n)]);
            for engine in [Engine::Tree, Engine::Bc] {
                let unit = ExecUnit::with_engine(&m, engine);
                for jobs in [1usize, 2, 3, 8] {
                    let plan = ReplayPlan::new(vec![sum_shape(&m)], jobs);
                    let r = Exec::new(&unit)
                        .replay(&plan, &SerialExec)
                        .run(&[Value::I(n)])
                        .unwrap()
                        .result;
                    assert_eq!(r.ret, serial.ret, "{engine:?} n={n} jobs={jobs}");
                    assert_eq!(
                        r.cost, serial.cost,
                        "replay cost invariant {engine:?} n={n} jobs={jobs}"
                    );
                }
            }
        }
    }

    #[test]
    fn replayed_memory_image_is_byte_identical() {
        use crate::replay::{ReplayPlan, SerialExec};
        // a[i] = i * 3 over a 64-word global; the final images of the
        // serial and replayed runs must not differ in a single word.
        let mut m = Module::new("fill");
        let g = m.add_global(Global::zeroed("a", 64));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let base = fb.global_addr(g);
        let n = fb.const_i64(64);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let three = fb.const_i64(3);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let v = fb.mul(i, three);
        let p = fb.gep(base, i, 8, 0);
        fb.store(v, p);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(zero));
        m.add_function(fb.finish().unwrap());

        let serial_unit = ExecUnit::new(&m);
        let mut serial_mem = Exec::new(&serial_unit)
            .keep_memory(true)
            .run(&[])
            .unwrap()
            .memory
            .unwrap();
        for engine in [Engine::Tree, Engine::Bc] {
            let unit = ExecUnit::with_engine(&m, engine);
            let plan = ReplayPlan::new(vec![sum_shape(&m)], 4);
            let mut replay_mem = Exec::new(&unit)
                .replay(&plan, &SerialExec)
                .keep_memory(true)
                .run(&[])
                .unwrap()
                .memory
                .unwrap();
            assert_eq!(
                serial_mem.first_difference(&mut replay_mem),
                None,
                "{engine:?}"
            );
            assert_eq!(
                replay_mem
                    .read(crate::memory::GLOBAL_BASE + 8 * 63)
                    .unwrap(),
                189
            );
        }
    }
}
