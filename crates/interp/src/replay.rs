//! Parallel DOALL replay: loop shapes, chunk specifications, and the
//! executor hook.
//!
//! The limit study predicts speedups; replay *executes* them. A loop
//! that the static classifier calls DOALL, whose profile shows no
//! cross-iteration memory flow, and whose independence witness checked
//! out (see `lp-runtime`) gets a [`LoopShape`] here. When the machine
//! reaches that loop's header from outside the loop, it
//!
//! 1. derives the trip count `N` by evaluating the header's pure
//!    instructions against closed-form induction values (no memory, no
//!    cost charged),
//! 2. splits `0..N` into balanced chunks via
//!    [`lp_ir::split_iterations`],
//! 3. seeds one register file per chunk — affine phis jump to
//!    `entry + lo·step`, reduction phis start from the entry value
//!    (first chunk) or the operator's identity (the rest),
//! 4. hands the chunks to a [`ParallelExec`] implementation, which runs
//!    each on a fresh machine over a clone of the parent memory with a
//!    write log armed, and
//! 5. merges the logs back in chunk order, folds reduction partials in
//!    chunk order, and sets the exit phi values — then lets the header
//!    run once more so the loop exits through its ordinary compare.
//!
//! The split keeps `lp-interp` free of threading policy: the *mechanism*
//! (shapes, chunk execution, deterministic merge) lives here, next to
//! the interpreter internals it needs, while the *policy* (worker
//! fan-out over `parallel_map`, witness gating, timing, export) lives in
//! `lp-runtime`. [`SerialExec`] is the degenerate in-process executor
//! used as the jobs=1 baseline and by unit tests.
//!
//! Cost accounting is exact: workers charge each iteration's header and
//! body once, the parent charges the final (exiting) header evaluation,
//! and the probe charges nothing — so a replayed run's dynamic IR cost
//! equals the serial run's, keeping the paper's cost model intact.

use crate::machine::MachineConfig;
use crate::memory::Memory;
use crate::value::Value;
use crate::Result;
use lp_ir::{BinOp, BlockId, FuncId, Module, ValueId};

pub use crate::machine::run_chunk;

/// A loop-invariant affine step expression: `konst + Σ coeff · reg`.
///
/// Certification derives one per affine header phi from the latch
/// update's affine decomposition; the machine evaluates it once against
/// the frame registers at loop entry (every referenced register is
/// loop-invariant by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepExpr {
    /// Constant term.
    pub konst: i64,
    /// `(register, coefficient)` terms, all loop-invariant integers.
    pub terms: Vec<(ValueId, i64)>,
}

impl StepExpr {
    /// A constant step (the common `i += C` case).
    #[must_use]
    pub fn constant(konst: i64) -> StepExpr {
        StepExpr {
            konst,
            terms: Vec::new(),
        }
    }

    /// Evaluates the step against a frame register file (wrapping
    /// arithmetic, matching the interpreter's integer semantics).
    ///
    /// # Errors
    /// Fails with a type confusion if a referenced register does not
    /// hold an integer.
    pub fn eval(&self, regs: &[Value]) -> Result<i64> {
        let mut acc = self.konst;
        for &(v, c) in &self.terms {
            acc = acc.wrapping_add(regs[v.index()].as_i64()?.wrapping_mul(c));
        }
        Ok(acc)
    }
}

/// How one certified header phi evolves across iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhiKind {
    /// `phi(k) = phi(0) + k · step` with a loop-invariant step — the
    /// machine can seed any iteration's value in closed form.
    Affine {
        /// The per-iteration increment.
        step: StepExpr,
    },
    /// An integer reduction: chunk partials are folded with `op` in
    /// chunk order. Float reductions are deliberately excluded — chunk
    /// reassociation changes `f64` results bit-for-bit, and replay's
    /// contract is byte-identity with the serial run.
    Reduction {
        /// The (exactly associative) combining operator.
        op: BinOp,
    },
}

/// Identity element of an exactly-associative integer reduction
/// operator, or `None` when `op` cannot seed non-first replay chunks
/// (floats and non-reduction operators).
#[must_use]
pub fn reduction_identity(op: BinOp) -> Option<i64> {
    Some(match op {
        BinOp::Add => 0,
        BinOp::Mul => 1,
        BinOp::And => -1,
        BinOp::Or | BinOp::Xor => 0,
        BinOp::SMin => i64::MAX,
        BinOp::SMax => i64::MIN,
        _ => return None,
    })
}

/// The static shape of one certified loop — everything the machine
/// needs to probe, split, and replay it without re-running analysis.
#[derive(Debug, Clone)]
pub struct LoopShape {
    /// Function containing the loop.
    pub func: FuncId,
    /// Loop header (the only block that may exit the loop).
    pub header: BlockId,
    /// The single latch branching back to the header.
    pub latch: BlockId,
    /// Every block of the loop, sorted by id.
    pub blocks: Vec<BlockId>,
    /// Header phis in a fixed order; chunk seeding, partial collection,
    /// and exit-value reconstruction all iterate this order.
    pub phis: Vec<(ValueId, PhiKind)>,
}

impl LoopShape {
    /// Whether `block` belongs to the loop.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.binary_search(&block).is_ok()
    }
}

/// A set of certified loop shapes plus the worker count — the machine
/// consults this at every header entry.
#[derive(Debug, Clone)]
pub struct ReplayPlan {
    shapes: Vec<LoopShape>,
    jobs: usize,
}

impl ReplayPlan {
    /// Builds a plan over `shapes` with `jobs` workers (0 is treated
    /// as 1).
    #[must_use]
    pub fn new(shapes: Vec<LoopShape>, jobs: usize) -> ReplayPlan {
        ReplayPlan {
            shapes,
            jobs: jobs.max(1),
        }
    }

    /// The shape planned for `(func, header)`, if any.
    #[must_use]
    pub fn shape_at(&self, func: FuncId, header: BlockId) -> Option<&LoopShape> {
        self.shapes
            .iter()
            .find(|s| s.func == func && s.header == header)
    }

    /// Requested worker count (≥ 1; the per-loop chunk count is further
    /// clamped to the trip count).
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// All planned shapes.
    #[must_use]
    pub fn shapes(&self) -> &[LoopShape] {
        &self.shapes
    }
}

/// One worker's slice of a replayed loop.
#[derive(Debug, Clone)]
pub struct ChunkSpec {
    /// Chunk position in iteration order (merge order).
    pub index: usize,
    /// Number of iterations this chunk executes.
    pub iters: u64,
    /// Frame register file, pre-seeded: affine phis at the chunk's
    /// first iteration, reduction phis at the entry value (chunk 0) or
    /// the operator identity (later chunks); everything else is the
    /// parent frame's value at loop entry.
    pub regs: Vec<Value>,
}

/// What one chunk produced.
#[derive(Debug, Clone)]
pub struct ChunkOut {
    /// The chunk's [`ChunkSpec::index`].
    pub index: usize,
    /// Dynamic IR cost the chunk charged.
    pub cost: u64,
    /// `(addr, word)` writes in program order — the chunk's memory
    /// delta against the loop-entry image.
    pub log: Vec<(u64, u64)>,
    /// Final value of each header phi, in [`LoopShape::phis`] order.
    pub phi_out: Vec<Value>,
}

/// Everything an executor needs to run one loop's chunks. The borrows
/// are all shared, so implementations may fan chunks out across scoped
/// threads.
#[derive(Debug)]
pub struct ChunkRequest<'m> {
    /// The program.
    pub module: &'m Module,
    /// The loop being replayed.
    pub shape: &'m LoopShape,
    /// Parent memory image at loop entry; every worker clones it.
    pub memory: &'m Memory,
    /// Worker machine configuration (remaining fuel and call depth).
    pub config: &'m MachineConfig,
    /// The chunks, in iteration order.
    pub chunks: Vec<ChunkSpec>,
}

/// Executor hook: `lp-runtime` implements this over `parallel_map`;
/// [`SerialExec`] runs chunks inline.
pub trait ParallelExec {
    /// Runs every chunk and returns their outputs in chunk order.
    ///
    /// # Errors
    /// Propagates the first chunk failure (trap, fuel exhaustion, or a
    /// chunk escaping its certified loop).
    fn run_chunks(&self, req: ChunkRequest<'_>) -> Result<Vec<ChunkOut>>;
}

/// In-process executor: runs chunks one at a time on the calling
/// thread. The jobs=1 baseline, and what unit tests use.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialExec;

impl ParallelExec for SerialExec {
    fn run_chunks(&self, req: ChunkRequest<'_>) -> Result<Vec<ChunkOut>> {
        req.chunks.iter().map(|c| run_chunk(&req, c)).collect()
    }
}

/// Replay control a machine carries: the plan plus the executor. Held
/// by reference so the (shared) plan outlives any number of machines.
pub struct ReplayCtl<'a> {
    /// Certified loop shapes and the worker count.
    pub plan: &'a ReplayPlan,
    /// Chunk executor.
    pub exec: &'a dyn ParallelExec,
}

impl Clone for ReplayCtl<'_> {
    fn clone(&self) -> Self {
        *self
    }
}

impl Copy for ReplayCtl<'_> {}

impl std::fmt::Debug for ReplayCtl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayCtl")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_expr_evaluates_terms() {
        let step = StepExpr {
            konst: 3,
            terms: vec![(ValueId(0), 2), (ValueId(1), -1)],
        };
        let regs = [Value::I(10), Value::I(4)];
        assert_eq!(step.eval(&regs).unwrap(), 3 + 20 - 4);
        assert_eq!(StepExpr::constant(7).eval(&[]).unwrap(), 7);
        let bad = StepExpr {
            konst: 0,
            terms: vec![(ValueId(0), 1)],
        };
        assert!(bad.eval(&[Value::F(1.0)]).is_err());
    }

    #[test]
    fn reduction_identities() {
        assert_eq!(reduction_identity(BinOp::Add), Some(0));
        assert_eq!(reduction_identity(BinOp::Mul), Some(1));
        assert_eq!(reduction_identity(BinOp::And), Some(-1));
        assert_eq!(reduction_identity(BinOp::SMin), Some(i64::MAX));
        assert_eq!(reduction_identity(BinOp::SMax), Some(i64::MIN));
        assert_eq!(reduction_identity(BinOp::FAdd), None, "floats reassociate");
        assert_eq!(reduction_identity(BinOp::Sub), None);
    }

    #[test]
    fn plan_lookup_and_jobs_clamp() {
        let shape = LoopShape {
            func: FuncId(0),
            header: BlockId(1),
            latch: BlockId(2),
            blocks: vec![BlockId(1), BlockId(2)],
            phis: Vec::new(),
        };
        let plan = ReplayPlan::new(vec![shape], 0);
        assert_eq!(plan.jobs(), 1);
        assert!(plan.shape_at(FuncId(0), BlockId(1)).is_some());
        assert!(plan.shape_at(FuncId(0), BlockId(2)).is_none());
        assert!(plan.shape_at(FuncId(1), BlockId(1)).is_none());
        let s = plan.shape_at(FuncId(0), BlockId(1)).unwrap();
        assert!(s.contains(BlockId(2)));
        assert!(!s.contains(BlockId(0)));
    }
}
