//! Runtime values.

use crate::InterpError;
use lp_ir::Type;
use std::fmt;

/// A runtime value: the dynamic counterpart of [`lp_ir::Type`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// `i64`.
    I(i64),
    /// `f64`.
    F(f64),
    /// `ptr` (a flat 64-bit address).
    P(u64),
    /// `i1`.
    B(bool),
    /// `void` (result of value-less instructions).
    Unit,
}

impl Value {
    /// Zero/default value of a type (registers before definition; never
    /// observable in verified SSA).
    #[must_use]
    pub fn zero_of(ty: Type) -> Value {
        match ty {
            Type::I64 => Value::I(0),
            Type::F64 => Value::F(0.0),
            Type::Ptr => Value::P(0),
            Type::I1 => Value::B(false),
            Type::Void => Value::Unit,
        }
    }

    /// The dynamic type of this value.
    #[must_use]
    pub fn type_of(&self) -> Type {
        match self {
            Value::I(_) => Type::I64,
            Value::F(_) => Type::F64,
            Value::P(_) => Type::Ptr,
            Value::B(_) => Type::I1,
            Value::Unit => Type::Void,
        }
    }

    /// Extracts an `i64`.
    ///
    /// # Errors
    /// [`InterpError::TypeConfusion`] if the value is not an integer.
    pub fn as_i64(&self) -> Result<i64, InterpError> {
        match self {
            Value::I(v) => Ok(*v),
            _ => Err(InterpError::TypeConfusion("as_i64")),
        }
    }

    /// Extracts an `f64`.
    ///
    /// # Errors
    /// [`InterpError::TypeConfusion`] if the value is not a float.
    pub fn as_f64(&self) -> Result<f64, InterpError> {
        match self {
            Value::F(v) => Ok(*v),
            _ => Err(InterpError::TypeConfusion("as_f64")),
        }
    }

    /// Extracts a pointer.
    ///
    /// # Errors
    /// [`InterpError::TypeConfusion`] if the value is not a pointer.
    pub fn as_ptr(&self) -> Result<u64, InterpError> {
        match self {
            Value::P(v) => Ok(*v),
            _ => Err(InterpError::TypeConfusion("as_ptr")),
        }
    }

    /// Extracts a boolean.
    ///
    /// # Errors
    /// [`InterpError::TypeConfusion`] if the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool, InterpError> {
        match self {
            Value::B(v) => Ok(*v),
            _ => Err(InterpError::TypeConfusion("as_bool")),
        }
    }

    /// Raw 64-bit memory representation (floats as IEEE bits).
    ///
    /// # Errors
    /// [`InterpError::TypeConfusion`] for non-memory values.
    pub fn to_bits(&self) -> Result<u64, InterpError> {
        match self {
            Value::I(v) => Ok(*v as u64),
            Value::F(v) => Ok(v.to_bits()),
            Value::P(v) => Ok(*v),
            _ => Err(InterpError::TypeConfusion("to_bits")),
        }
    }

    /// Reinterprets raw memory bits as a value of `ty`.
    ///
    /// # Panics
    /// Panics for non-memory types (loads of `i1`/`void` are rejected by
    /// the verifier).
    #[must_use]
    pub fn from_bits(ty: Type, bits: u64) -> Value {
        match ty {
            Type::I64 => Value::I(bits as i64),
            Type::F64 => Value::F(f64::from_bits(bits)),
            Type::Ptr => Value::P(bits),
            _ => panic!("from_bits of non-memory type {ty}"),
        }
    }

    /// A stable 64-bit fingerprint for value-prediction traces. Integer and
    /// pointer values map to themselves; floats to their bit pattern.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        match self {
            Value::I(v) => *v as u64,
            Value::F(v) => v.to_bits(),
            Value::P(v) => *v,
            Value::B(v) => u64::from(*v),
            Value::Unit => 0,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I(v) => write!(f, "{v}"),
            Value::F(v) => write!(f, "{v:?}"),
            Value::P(v) => write!(f, "{v:#x}"),
            Value::B(v) => write!(f, "{v}"),
            Value::Unit => write!(f, "()"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::B(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for v in [Value::I(-5), Value::F(2.5), Value::P(0x1000)] {
            let bits = v.to_bits().unwrap();
            assert_eq!(Value::from_bits(v.type_of(), bits), v);
        }
    }

    #[test]
    fn extraction_type_checks() {
        assert_eq!(Value::I(3).as_i64().unwrap(), 3);
        assert!(Value::I(3).as_f64().is_err());
        assert!(Value::F(1.0).as_ptr().is_err());
        assert!(Value::B(true).as_bool().unwrap());
        assert!(Value::Unit.to_bits().is_err());
    }

    #[test]
    fn zero_of_matches_type() {
        for ty in [Type::I64, Type::F64, Type::Ptr, Type::I1, Type::Void] {
            assert_eq!(Value::zero_of(ty).type_of(), ty);
        }
    }

    #[test]
    fn fingerprint_distinguishes_floats_by_bits() {
        assert_ne!(Value::F(1.0).fingerprint(), Value::F(2.0).fingerprint());
        assert_eq!(Value::I(7).fingerprint(), 7);
    }
}
