//! Bounded execution tracing.
//!
//! [`TraceSink`] records the instrumentation event stream into a bounded
//! ring buffer and pretty-prints it — the debugging view of what the
//! run-time component consumes. Because the buffer is bounded, it is safe
//! to attach to arbitrarily long runs (you keep the tail).

use crate::events::EventSink;
use crate::value::Value;
use lp_ir::{BlockId, Builtin, FuncId, ValueId};
use std::collections::VecDeque;
use std::fmt;

/// One recorded instrumentation event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Block entry (function, block, static cost, cost counter).
    Block(FuncId, BlockId, u64, u64),
    /// Phi resolution.
    Phi(FuncId, ValueId, Value, u64),
    /// Memory load.
    Load(u64, u64),
    /// Memory store.
    Store(u64, u64),
    /// Function entry (callee, frame base, cost counter).
    Enter(FuncId, u64, u64),
    /// Function exit.
    Exit(FuncId, u64),
    /// Builtin invocation.
    BuiltinCall(FuncId, Builtin, u64),
    /// Watched value definition.
    Def(FuncId, ValueId, Value, u64),
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Block(func, block, cost, now) => {
                write!(f, "[{now:>8}] block  {func} {block} (cost {cost})")
            }
            TraceEvent::Phi(func, phi, v, now) => {
                write!(f, "[{now:>8}] phi    {func} {phi} = {v}")
            }
            TraceEvent::Load(addr, now) => write!(f, "[{now:>8}] load   {addr:#x}"),
            TraceEvent::Store(addr, now) => write!(f, "[{now:>8}] store  {addr:#x}"),
            TraceEvent::Enter(func, base, now) => {
                write!(f, "[{now:>8}] enter  {func} (frame {base:#x})")
            }
            TraceEvent::Exit(func, now) => write!(f, "[{now:>8}] exit   {func}"),
            TraceEvent::BuiltinCall(func, b, now) => {
                write!(f, "[{now:>8}] call   {func} @!{b}")
            }
            TraceEvent::Def(func, v, val, now) => {
                write!(f, "[{now:>8}] def    {func} {v} = {val}")
            }
        }
    }
}

/// An [`EventSink`] that keeps the last `capacity` events.
#[derive(Debug, Clone)]
pub struct TraceSink {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    /// Total events seen (including evicted ones).
    pub total: u64,
}

impl TraceSink {
    /// A trace buffer holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> TraceSink {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceSink {
            events: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    fn push(&mut self, e: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(e);
        self.total += 1;
    }

    /// The retained (most recent) events, oldest first.
    #[must_use]
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Renders the retained events, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.total as usize > self.events.len() {
            out.push_str(&format!(
                "... {} earlier event(s) evicted ...\n",
                self.total as usize - self.events.len()
            ));
        }
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

impl EventSink for TraceSink {
    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        self.push(TraceEvent::Block(func, block, cost, now));
    }

    fn phi_resolved(
        &mut self,
        func: FuncId,
        _block: BlockId,
        phi: ValueId,
        value: Value,
        now: u64,
    ) {
        self.push(TraceEvent::Phi(func, phi, value, now));
    }

    fn load(&mut self, addr: u64, now: u64) {
        self.push(TraceEvent::Load(addr, now));
    }

    fn store(&mut self, addr: u64, now: u64) {
        self.push(TraceEvent::Store(addr, now));
    }

    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        self.push(TraceEvent::Enter(func, frame_base, now));
    }

    fn func_exited(&mut self, func: FuncId, now: u64) {
        self.push(TraceEvent::Exit(func, now));
    }

    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        self.push(TraceEvent::BuiltinCall(caller, builtin, now));
    }

    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        self.push(TraceEvent::Def(func, value, val, now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Engine;
    use crate::{Exec, ExecUnit};
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Global, Module, Type};

    fn trace(m: &Module, engine: Engine, capacity: usize) -> TraceSink {
        let unit = ExecUnit::with_engine(m, engine);
        let mut sink = TraceSink::new(capacity);
        Exec::new(&unit).sink(&mut sink).run(&[]).unwrap();
        sink
    }

    fn traced_module() -> Module {
        let mut m = Module::new("t");
        let g = m.add_global(Global::zeroed("g", 2));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let p = fb.global_addr(g);
        let x = fb.const_i64(5);
        fb.store(x, p);
        let y = fb.load(Type::I64, p);
        let yf = fb.sitofp(y);
        let s = fb.call_builtin(lp_ir::Builtin::Sqrt, &[yf]);
        let si = fb.fptosi(s);
        fb.ret(Some(si));
        m.add_function(fb.finish().unwrap());
        m
    }

    #[test]
    fn records_and_renders_events_in_order() {
        let m = traced_module();
        let sink = trace(&m, Engine::Tree, 64);
        let kinds: Vec<&str> = sink
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Block(..) => "block",
                TraceEvent::Enter(..) => "enter",
                TraceEvent::Exit(..) => "exit",
                TraceEvent::Load(..) => "load",
                TraceEvent::Store(..) => "store",
                TraceEvent::BuiltinCall(..) => "builtin",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["enter", "block", "store", "load", "builtin", "exit"]
        );
        let text = sink.render();
        assert!(text.contains("store"));
        assert!(text.contains("@!sqrt"));
        // Timestamps are non-decreasing in the rendered order.
        let nows: Vec<u64> = sink
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Block(.., n)
                | TraceEvent::Phi(.., n)
                | TraceEvent::Load(_, n)
                | TraceEvent::Store(_, n)
                | TraceEvent::Enter(.., n)
                | TraceEvent::Exit(_, n)
                | TraceEvent::BuiltinCall(.., n)
                | TraceEvent::Def(.., n) => *n,
            })
            .collect();
        assert!(nows.windows(2).all(|w| w[0] <= w[1]), "{nows:?}");
        // A per-instruction sink sees the identical stream from the
        // bytecode engine (delivered direct, without batching).
        let bc = trace(&m, Engine::Bc, 64);
        assert_eq!(bc.render(), text);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let m = traced_module();
        let sink = trace(&m, Engine::Tree, 2);
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.total, 6);
        assert!(sink.render().starts_with("... 4 earlier event(s) evicted"));
        // The retained tail is the exit pair.
        assert!(matches!(sink.events()[1], TraceEvent::Exit(..)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TraceSink::new(0);
    }
}
