//! SPEC CFP2000 stand-ins (numeric).
//!
//! Regular loop structure, compile-time-predictable memory access, heavy
//! reductions — the suite where DOALL already pays and the `reduc1` flag
//! matters most (the paper: "SpecFP2000 benefits greatly from both
//! `reduc1` and `dep2`"). `179.art` is built PDOALL-leaning per Fig. 4.

use crate::patterns::*;
use crate::{build_program_glued, Benchmark, Glue, Scale, SuiteId};
use lp_ir::Module;

fn bench(name: &'static str, build: fn(Scale) -> Module) -> Benchmark {
    Benchmark {
        name,
        suite: SuiteId::Cfp2000,
        build,
    }
}

/// Per-suite glue weights (see `lp_suite::Glue` and DESIGN.md §4):
/// calibrates the frequent-memory-LCD fraction of every benchmark.
fn glue(n: i64) -> Option<Glue> {
    Some(Glue {
        serial_n: n / 24,
        accum_n: n / 24,
        lcg_n: n / 3,
        work: 10,
    })
}

/// The CFP2000 roster.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        bench("168.wupwise", wupwise),
        bench("171.swim", swim),
        bench("172.mgrid", mgrid),
        bench("173.applu", applu),
        bench("177.mesa", mesa),
        bench("178.galgel", galgel),
        bench("179.art", art),
        bench("183.equake", equake),
        bench("187.facerec", facerec),
        bench("188.ammp", ammp),
        bench("189.lucas", lucas),
        bench("191.fma3d", fma3d),
        bench("200.sixtrack", sixtrack),
        bench("301.apsi", apsi),
    ]
}

/// Lattice QCD (wupwise): mat-vec products and SAXPY sweeps.
fn wupwise(scale: Scale) -> Module {
    let n = scale.n(192);
    build_program_glued(
        "168.wupwise",
        glue(n),
        &[
            ("mat", 32 * 32),
            ("v", 40),
            ("out", 40),
            ("x", n as u64 + 2),
            ("y", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            let dim = fb.const_i64(32);
            let d2 = fb.const_i64(1024);
            fill_affine_f64(fb, g[0], d2, 0.003);
            fill_affine_f64(fb, g[1], dim, 0.25);
            matvec(fb, g[0], g[1], g[2], dim, dim, 32);
            fill_affine_f64(fb, g[3], nn, 0.5);
            fill_affine_f64(fb, g[4], nn, 0.25);
            saxpy(fb, g[3], g[4], nn, 1.75, 6);
            let s = vector_sum_f64(fb, g[4], nn, 2);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// Shallow-water model (swim): the textbook stencil benchmark — three
/// large DOALL sweeps per timestep. The suite's top speedup.
fn swim(scale: Scale) -> Module {
    let n = scale.n(320);
    build_program_glued(
        "171.swim",
        glue(n),
        &[
            ("u", n as u64 + 4),
            ("v", n as u64 + 4),
            ("p", n as u64 + 4),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.125);
            fill_affine_f64(fb, g[1], nn, 0.0625);
            for _step in 0..2 {
                stencil3(fb, g[0], g[1], nn, 8);
                stencil3(fb, g[1], g[2], nn, 8);
                stencil3(fb, g[2], g[0], nn, 8);
            }
            let s = vector_sum_f64(fb, g[2], nn, 2);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// Multigrid solver: nested stencils at multiple resolutions.
fn mgrid(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "172.mgrid",
        glue(n),
        &[("fine", n as u64 + 4), ("coarse", n as u64 + 4)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            let half = fb.const_i64(n / 2);
            fill_affine_f64(fb, g[0], nn, 0.1);
            stencil3(fb, g[0], g[1], nn, 10); // relax fine
            stencil3(fb, g[1], g[0], half, 10); // relax coarse
            stencil3(fb, g[0], g[1], nn, 10); // relax fine again
            let s = vector_sum_f64(fb, g[1], nn, 2);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// SSOR CFD solver (applu): stencils plus serial line sweeps (the
/// wavefront part resists parallelization).
fn applu(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "173.applu",
        glue(n),
        &[
            ("rsd", n as u64 + 4),
            ("u", n as u64 + 4),
            ("line", n as u64 + 4),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.2);
            stencil3(fb, g[0], g[1], nn, 9);
            dp_chain(fb, g[2], nn, 7); // lower-triangular sweep
            stencil3(fb, g[1], g[0], nn, 9);
            let s = vector_sum_f64(fb, g[0], nn, 2);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// OpenGL software renderer (mesa): per-vertex pure-math transforms.
fn mesa(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "177.mesa",
        glue(n),
        &[
            ("verts", n as u64 + 2),
            ("xformed", n as u64 + 2),
            ("frame", n as u64 + 2),
        ],
        |m, fb, g| {
            let xf = make_pure_math_fn(m, "transform_vertex");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 9, 2);
            map_call(fb, xf, g[0], g[1], nn); // vertex pipeline (pure)
            fill_affine_f64(fb, g[2], nn, 0.01);
            saxpy(fb, g[2], g[2], nn, 0.5, 5); // rasterize-ish blend
            let s = vector_sum_i64(fb, g[1], nn, 2);
            fb.ret(Some(s));
        },
    )
}

/// Galerkin FEM (galgel): dense linear algebra with big reductions —
/// `reduc1`'s best customer.
fn galgel(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "178.galgel",
        glue(n),
        &[
            ("mat", 64 * 64),
            ("v", 72),
            ("out", 72),
            ("field", n as u64 + 2),
        ],
        |_m, fb, g| {
            let dim = fb.const_i64(64);
            let d2 = fb.const_i64(64 * 64);
            fill_affine_f64(fb, g[0], d2, 0.001);
            fill_affine_f64(fb, g[1], dim, 0.1);
            matvec(fb, g[0], g[1], g[2], dim, dim, 64);
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[3], nn, 0.05);
            let s1 = vector_sum_f64(fb, g[3], nn, 6); // Galerkin inner products
            let s2 = vector_sum_f64(fb, g[2], dim, 6);
            let t = fb.fadd(s1, s2);
            let r = fb.fptosi(t);
            fb.ret(Some(r));
        },
    )
}

/// Adaptive-resonance neural net (art): dot-product reductions with
/// *predictable* late-produced walkers — the Fig. 4 PDOALL winner.
fn art(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "179.art",
        glue(n),
        &[
            ("f1", n as u64 + 2),
            ("weights", n as u64 + 2),
            ("strides", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.02);
            fill_affine_f64(fb, g[1], nn, 0.03);
            let s1 = vector_sum_f64(fb, g[0], nn, 8); // match scores
            let s2 = vector_sum_f64(fb, g[1], nn, 8);
            fill_mostly_const(fb, g[2], nn, 2, 14, 96);
            let w1 = predictable_late(fb, g[2], nn, 18); // resonance search
            let w2 = predictable_late(fb, g[2], nn, 18);
            let t = fb.fadd(s1, s2);
            let ti = fb.fptosi(t);
            let x = fb.xor(w1, w2);
            let chk = fb.xor(ti, x);
            fb.ret(Some(chk));
        },
    )
}

/// Earthquake simulation (equake): sparse mat-vec — mostly DOALL with
/// scatter updates that occasionally alias.
fn equake(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "183.equake",
        glue(n),
        &[("k", n as u64 + 2), ("disp", n as u64 + 2), ("accum", 2048)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.01);
            fill_affine_f64(fb, g[1], nn, 0.02);
            saxpy(fb, g[0], g[1], nn, 0.9, 7);
            histogram(fb, g[2], nn, 2047, 5); // scatter to shared nodes
            let s = vector_sum_f64(fb, g[1], nn, 3);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// Face recognition (facerec): image correlations = mat-vec plus max
/// reductions.
fn facerec(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "187.facerec",
        glue(n),
        &[
            ("img", n as u64 + 4),
            ("gallery", n as u64 + 4),
            ("scores", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.015);
            stencil3(fb, g[0], g[1], nn, 8); // gabor-ish filtering
            fill_affine(fb, g[2], nn, 77, 31);
            let best = max_i64(fb, g[2], nn); // best match
            let s = vector_sum_f64(fb, g[1], nn, 4);
            let si = fb.fptosi(s);
            let chk = fb.xor(best, si);
            fb.ret(Some(chk));
        },
    )
}

/// Molecular dynamics (ammp): pairwise forces accumulated into shared
/// per-atom cells — numeric but synchronization-bound.
fn ammp(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "188.ammp",
        glue(n),
        &[
            ("pos", n as u64 + 2),
            ("force_cell", 2),
            ("scratch", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.02);
            accum_cell(fb, g[1], g[2], nn, 20); // force accumulation
            saxpy(fb, g[0], g[0], nn, 1.002, 8); // integration
            let s = vector_sum_f64(fb, g[0], nn, 3);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// Lucas–Lehmer primality (lucas): FFT-style butterfly sweeps — DOALL.
fn lucas(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "189.lucas",
        glue(n),
        &[("re", n as u64 + 4), ("im", n as u64 + 4)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.04);
            fill_affine_f64(fb, g[1], nn, 0.03);
            for _pass in 0..3 {
                saxpy(fb, g[0], g[1], nn, -0.5, 7); // butterflies
                saxpy(fb, g[1], g[0], nn, 0.5, 7);
            }
            let s = vector_sum_f64(fb, g[0], nn, 2);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// Crash simulation (fma3d): element loops with helper calls and
/// stencils.
fn fma3d(scale: Scale) -> Module {
    let n = scale.n(208);
    build_program_glued(
        "191.fma3d",
        glue(n),
        &[
            ("elems", n as u64 + 2),
            ("forces", n as u64 + 4),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let elem = make_scratch_fn(m, "element_force");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 23, 11);
            map_call(fb, elem, g[0], g[2], nn); // per-element force calc
            fill_affine_f64(fb, g[1], nn, 0.05);
            stencil3(fb, g[1], g[1], nn, 7);
            let s = vector_sum_i64(fb, g[2], nn, 3);
            fb.ret(Some(s));
        },
    )
}

/// Particle tracking (sixtrack): independent particles through a lattice
/// — DOALL across particles, pure-math per step.
fn sixtrack(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "200.sixtrack",
        glue(n),
        &[("particles", n as u64 + 2), ("out", n as u64 + 2)],
        |m, fb, g| {
            let kick = make_pure_math_fn(m, "lattice_kick");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 12345, 6);
            map_call(fb, kick, g[0], g[1], nn);
            map_call(fb, kick, g[1], g[0], nn);
            let s = vector_sum_i64(fb, g[0], nn, 4);
            fb.ret(Some(s));
        },
    )
}

/// Pollutant transport (apsi): stencils with serial vertical sweeps.
fn apsi(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "301.apsi",
        glue(n),
        &[
            ("conc", n as u64 + 4),
            ("wind", n as u64 + 4),
            ("col", n as u64 + 4),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.02);
            fill_affine_f64(fb, g[1], nn, 0.01);
            stencil3(fb, g[0], g[1], nn, 8); // horizontal advection
            dp_chain(fb, g[2], nn, 6); // vertical implicit solve
            stencil3(fb, g[1], g[0], nn, 8);
            let s = vector_sum_f64(fb, g[0], nn, 2);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

// ---- local pattern variants ---------------------------------------------

use crate::kernels::{counted_loop, int_filler, load_elem};
use lp_ir::builder::FunctionBuilder;
use lp_ir::{Type, ValueId};

/// Predictable stride walker whose producer is late in the iteration
/// (shared with `429.mcf`'s recipe rationale): great for `dep2` PDOALL,
/// expensive for `dep1` HELIX.
fn predictable_late(fb: &mut FunctionBuilder, data: ValueId, n: ValueId, work: u32) -> ValueId {
    let zero = fb.const_i64(0);
    let phis = counted_loop(
        fb,
        n,
        &[(Type::I64, zero), (Type::I64, zero)],
        |fb, i, phis| {
            let d = load_elem(fb, Type::I64, data, i);
            let w = int_filler(fb, phis[0], work);
            let acc = fb.add(phis[1], w);
            let t = fb.add(phis[0], d);
            let mixed = fb.xor(t, w);
            let x2 = fb.xor(mixed, w); // == t, defined after the filler
            vec![x2, acc]
        },
    );
    phis[1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_runtime::{evaluate, profile_module, ExecModel};

    fn speedup(m: &Module, model: ExecModel, config: &str) -> f64 {
        let analysis = analyze_module(m);
        let (p, _) = profile_module(m, &analysis, &[], MachineConfig::default()).unwrap();
        evaluate(&p, model, config.parse().unwrap()).speedup
    }

    #[test]
    fn swim_is_the_doall_star() {
        // swim's stencils make pure math calls, so fn1 is the first
        // configuration that exposes their independence.
        let m = swim(Scale::Test);
        let s = speedup(&m, ExecModel::PartialDoall, "reduc0-dep0-fn1");
        assert!(s > 5.0, "swim should fly once pure calls pass: {s}");
        let fn0 = speedup(&m, ExecModel::Doall, "reduc0-dep0-fn0");
        assert!(s > fn0, "fn1 must beat fn0: {fn0} -> {s}");
    }

    #[test]
    fn galgel_needs_reduc1() {
        let m = galgel(Scale::Test);
        let r0 = speedup(&m, ExecModel::PartialDoall, "reduc0-dep0-fn0");
        let r1 = speedup(&m, ExecModel::PartialDoall, "reduc1-dep0-fn0");
        assert!(r1 > r0 * 1.3, "reductions gate galgel: {r0} -> {r1}");
    }

    #[test]
    fn art_prefers_pdoall() {
        let m = art(Scale::Test);
        let pd = speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn2");
        let hx = speedup(&m, ExecModel::Helix, "reduc1-dep1-fn2");
        assert!(pd > hx, "179.art: PDOALL ({pd}) must beat HELIX ({hx})");
    }
}
