//! Mid-level loop patterns with known dependence character.
//!
//! Every synthetic benchmark is composed from these patterns. Each doc
//! comment states the pattern's classification in the paper's taxonomy
//! (Table I) so the per-benchmark recipes read as dependence profiles:
//!
//! | pattern | character |
//! |---|---|
//! | `fill_affine*` / `stencil3` / `saxpy` | DOALL (computable IVs, disjoint memory) |
//! | `vector_sum_*` / `max_i64` | reduction accumulator |
//! | `pointer_chase` | frequent, unpredictable, non-computable register LCD |
//! | `predictable_walk` | frequent but *predictable* non-computable register LCD |
//! | `accum_cell` | frequent memory LCD, producer early (HELIX-friendly) |
//! | `dp_chain` | frequent memory LCD, producer late (HELIX-hostile) |
//! | `histogram` | infrequent memory LCDs (PDOALL-friendly) |
//! | `map_call` | structural: calls inside loops (`fn` lattice) |
//! | `print_every` | non-thread-safe I/O call in a loop |

use crate::kernels::{
    counted_loop, float_filler, if_else, int_filler, lcg_index, lcg_step, load_elem, store_elem,
};
use lp_ir::builder::FunctionBuilder;
use lp_ir::{Builtin, FcmpPred, FuncId, IcmpPred, Module, Type, ValueId};

/// DOALL integer fill: `a[i] = i*mul + add`.
pub fn fill_affine(fb: &mut FunctionBuilder, base: ValueId, n: ValueId, mul: i64, add: i64) {
    let mulc = fb.const_i64(mul);
    let addc = fb.const_i64(add);
    counted_loop(fb, n, &[], |fb, i, _| {
        let t = fb.mul(i, mulc);
        let v = fb.add(t, addc);
        store_elem(fb, base, i, v);
        vec![]
    });
}

/// DOALL float fill: `a[i] = sin-free polynomial of i` (cheap, regular).
pub fn fill_affine_f64(fb: &mut FunctionBuilder, base: ValueId, n: ValueId, scale: f64) {
    let sc = fb.const_f64(scale);
    let one = fb.const_f64(1.0);
    counted_loop(fb, n, &[], |fb, i, _| {
        let fi = fb.sitofp(i);
        let t = fb.fmul(fi, sc);
        let v = fb.fadd(t, one);
        store_elem(fb, base, i, v);
        vec![]
    });
}

/// Serial fill through a carried LCG — an unpredictable non-computable
/// register LCD whose producer sits *early* in each iteration; the store
/// targets disjoint slots. Returns the final LCG state.
pub fn fill_lcg(
    fb: &mut FunctionBuilder,
    base: ValueId,
    n: ValueId,
    seed: i64,
    mask: i64,
) -> ValueId {
    let s = fb.const_i64(seed);
    let phis = counted_loop(fb, n, &[(Type::I64, s)], |fb, i, phis| {
        let x2 = lcg_step(fb, phis[0]);
        let idx = lcg_index(fb, x2, mask);
        store_elem(fb, base, i, idx);
        vec![x2]
    });
    phis[0]
}

/// Fills `next[i] = (i + stride) mod n` — a *stride-predictable* chase
/// table (DOALL fill).
pub fn fill_stride_chain(fb: &mut FunctionBuilder, base: ValueId, n: ValueId, stride: i64) {
    let st = fb.const_i64(stride);
    counted_loop(fb, n, &[], |fb, i, _| {
        let t = fb.add(i, st);
        let v = fb.srem(t, n);
        store_elem(fb, base, i, v);
        vec![]
    });
}

/// Fills `next[i] = (a*i + c) mod n` — with `gcd(a, n) = 1` this is a
/// scrambled permutation, giving an *unpredictable* chase (DOALL fill).
pub fn fill_affine_perm(fb: &mut FunctionBuilder, base: ValueId, n: ValueId, a: i64, c: i64) {
    let ac = fb.const_i64(a);
    let cc = fb.const_i64(c);
    counted_loop(fb, n, &[], |fb, i, _| {
        let t = fb.mul(i, ac);
        let t2 = fb.add(t, cc);
        let v = fb.srem(t2, n);
        store_elem(fb, base, i, v);
        vec![]
    });
}

/// Pointer chasing: `j = table[j]` for `steps` iterations, with `work`
/// units of filler *after* the producing load. The chase phi is a
/// frequent non-computable register LCD; whether it is predictable
/// depends on how the table was filled. Returns the folded result.
pub fn pointer_chase(
    fb: &mut FunctionBuilder,
    table: ValueId,
    steps: ValueId,
    work: u32,
) -> ValueId {
    let zero = fb.const_i64(0);
    let phis = counted_loop(
        fb,
        steps,
        &[(Type::I64, zero), (Type::I64, zero)],
        |fb, _i, phis| {
            let j2 = load_elem(fb, Type::I64, table, phis[0]);
            let w = int_filler(fb, j2, work);
            let acc = fb.add(phis[1], w);
            vec![j2, acc]
        },
    );
    phis[1]
}

/// Float sum reduction `s += a[i]` with filler. A reduction accumulator
/// (non-computable by SCEV since the addends are loaded).
pub fn vector_sum_f64(fb: &mut FunctionBuilder, base: ValueId, n: ValueId, work: u32) -> ValueId {
    let z = fb.const_f64(0.0);
    let phis = counted_loop(fb, n, &[(Type::F64, z)], |fb, i, phis| {
        let v = load_elem(fb, Type::F64, base, i);
        let w = float_filler(fb, v, work);
        vec![fb.fadd(phis[0], w)]
    });
    phis[0]
}

/// Integer sum reduction with filler.
pub fn vector_sum_i64(fb: &mut FunctionBuilder, base: ValueId, n: ValueId, work: u32) -> ValueId {
    let z = fb.const_i64(0);
    let phis = counted_loop(fb, n, &[(Type::I64, z)], |fb, i, phis| {
        let v = load_elem(fb, Type::I64, base, i);
        let w = int_filler(fb, v, work);
        vec![fb.add(phis[0], w)]
    });
    phis[0]
}

/// Max reduction over an integer array.
pub fn max_i64(fb: &mut FunctionBuilder, base: ValueId, n: ValueId) -> ValueId {
    let min = fb.const_i64(i64::MIN);
    let phis = counted_loop(fb, n, &[(Type::I64, min)], |fb, i, phis| {
        let v = load_elem(fb, Type::I64, base, i);
        vec![fb.bin(lp_ir::BinOp::SMax, phis[0], v)]
    });
    phis[0]
}

/// 3-point float stencil: `dst[i] = |src[i-1] + src[i] + src[i+1]| / 3`
/// for `i in 1..n-1`, plus filler. Iterations are independent, but — as
/// in real FP codes that call libm from inner loops — each iteration
/// makes a *pure math call* (`fabs`), so `fn0` keeps the loop
/// sequential and `fn1`/`fn2` unlock it.
pub fn stencil3(fb: &mut FunctionBuilder, src: ValueId, dst: ValueId, n: ValueId, work: u32) {
    let two = fb.const_i64(2);
    let third = fb.const_f64(1.0 / 3.0);
    let inner = fb.sub(n, two);
    counted_loop(fb, inner, &[], |fb, i, _| {
        let left = fb.gep(src, i, 8, 0);
        let mid = fb.gep(src, i, 8, 8);
        let right = fb.gep(src, i, 8, 16);
        let a = fb.load(Type::F64, left);
        let b = fb.load(Type::F64, mid);
        let c = fb.load(Type::F64, right);
        let s1 = fb.fadd(a, b);
        let s2 = fb.fadd(s1, c);
        let raw = fb.fmul(s2, third);
        let avg = fb.call_builtin(Builtin::FAbs, &[raw]); // libm-style pure call
        let w = float_filler(fb, avg, work);
        let out = fb.gep(dst, i, 8, 8);
        fb.store(w, out);
        vec![]
    });
}

/// DOALL `y[i] += a * x[i]` with filler.
pub fn saxpy(fb: &mut FunctionBuilder, x: ValueId, y: ValueId, n: ValueId, a: f64, work: u32) {
    let ac = fb.const_f64(a);
    counted_loop(fb, n, &[], |fb, i, _| {
        let xv = load_elem(fb, Type::F64, x, i);
        let yv = load_elem(fb, Type::F64, y, i);
        let t = fb.fmul(xv, ac);
        let t2 = fb.fadd(yv, t);
        let w = float_filler(fb, t2, work);
        store_elem(fb, y, i, w);
        vec![]
    });
}

/// Frequent memory LCD with an *early* producer: each iteration loads a
/// shared cell, bumps it, stores it back immediately, then does `work`
/// units of independent filler stored to a disjoint slot. HELIX overlaps
/// the filler; DOALL/PDOALL serialize.
pub fn accum_cell(
    fb: &mut FunctionBuilder,
    cell: ValueId,
    scratch: ValueId,
    n: ValueId,
    work: u32,
) {
    let one = fb.const_i64(1);
    counted_loop(fb, n, &[], |fb, i, _| {
        let v = fb.load(Type::I64, cell);
        let v2 = fb.add(v, one);
        fb.store(v2, cell); // producer: early in the iteration
        let w = int_filler(fb, v2, work);
        store_elem(fb, scratch, i, w);
        vec![]
    });
}

/// Frequent memory LCD with a *late* producer: `work` units of filler
/// feed the value that is stored to `a[i]` and read back from `a[i-1]`
/// at the start of the next iteration. HELIX gains almost nothing.
pub fn dp_chain(fb: &mut FunctionBuilder, base: ValueId, n: ValueId, work: u32) {
    let one = fb.const_i64(1);
    counted_loop(fb, n, &[], |fb, i, _| {
        let prev_i = fb.sub(i, one);
        // dp[-1] aliases slot n (the array is sized n+2 by callers); keep
        // indices non-negative by offsetting all accesses by one slot.
        let _ = prev_i;
        let prev = fb.gep(base, i, 8, 0); // a[i]   (previous iteration's store)
        let v = fb.load(Type::I64, prev);
        let w = int_filler(fb, v, work); // long chain BEFORE the store
        let cur = fb.gep(base, i, 8, 8); // a[i+1]
        fb.store(w, cur);
        vec![]
    });
}

/// Histogram updates with hashed indices: `h[hash(i) & mask] += 1`.
/// Conflicts appear only when two iterations hit the same bin — tune
/// `mask` (bins−1) against `n` for infrequent aliasing (PDOALL's sweet
/// spot).
pub fn histogram(fb: &mut FunctionBuilder, hist: ValueId, n: ValueId, mask: i64, work: u32) {
    let one = fb.const_i64(1);
    counted_loop(fb, n, &[], |fb, i, _| {
        let h = int_filler(fb, i, work.max(2));
        let idx = {
            let m = fb.const_i64(mask);
            let sh = fb.const_i64(7);
            let t = fb.ashr(h, sh);
            fb.and(t, m)
        };
        let addr = fb.gep(hist, idx, 8, 0);
        let v = fb.load(Type::I64, addr);
        let v2 = fb.add(v, one);
        fb.store(v2, addr);
        vec![]
    });
}

/// Frequent but highly *predictable* non-computable register LCD: `x +=
/// a[i]` where the table holds a constant stride except every `period`-th
/// entry. Stride/2-delta predictors hit ≳90 %. Returns the walker.
pub fn predictable_walk(fb: &mut FunctionBuilder, data: ValueId, n: ValueId, work: u32) -> ValueId {
    let zero = fb.const_i64(0);
    let phis = counted_loop(
        fb,
        n,
        &[(Type::I64, zero), (Type::I64, zero)],
        |fb, i, phis| {
            let d = load_elem(fb, Type::I64, data, i);
            let x2 = fb.add(phis[0], d); // producer early
            let w = int_filler(fb, x2, work);
            let acc = fb.add(phis[1], w);
            vec![x2, acc]
        },
    );
    phis[1]
}

/// Fills a table with `common` except every `period`-th slot gets `rare`
/// (DOALL fill). Feed to [`predictable_walk`].
pub fn fill_mostly_const(
    fb: &mut FunctionBuilder,
    base: ValueId,
    n: ValueId,
    common: i64,
    rare: i64,
    period: i64,
) {
    let cc = fb.const_i64(common);
    let rc = fb.const_i64(rare);
    let pc = fb.const_i64(period);
    let zero = fb.const_i64(0);
    counted_loop(fb, n, &[], |fb, i, _| {
        let r = fb.srem(i, pc);
        let is_rare = fb.icmp(IcmpPred::Eq, r, zero);
        let v = fb.select(is_rare, rc, cc);
        store_elem(fb, base, i, v);
        vec![]
    });
}

/// Two shared-cell read-modify-writes per iteration, one *early* and one
/// *late* (after the filler). Each LCD individually has a tiny
/// producer-consumer skew, so HELIX's per-LCD sync points keep the loop
/// parallel — but a classic DOACROSS single sync point must span from the
/// late producer to the early consumer, serializing it (paper §II-C).
pub fn accum_cell_pair(
    fb: &mut FunctionBuilder,
    cell_a: ValueId,
    cell_b: ValueId,
    scratch: ValueId,
    n: ValueId,
    work: u32,
) {
    let one = fb.const_i64(1);
    counted_loop(fb, n, &[], |fb, i, _| {
        let a = fb.load(Type::I64, cell_a);
        let a2 = fb.add(a, one);
        fb.store(a2, cell_a); // early LCD
        let w = int_filler(fb, a2, work);
        store_elem(fb, scratch, i, w);
        let b = fb.load(Type::I64, cell_b);
        let b2 = fb.add(b, one);
        fb.store(b2, cell_b); // late LCD
        vec![]
    });
}

/// Memory-carried pointer chase: the position lives in a memory cell
/// (`pos = *cell; next = table[pos]; *cell = next` — producer early),
/// followed by `work` filler stored to disjoint slots. A frequent
/// *memory* LCD: value prediction (`dep2`/`dep3`) cannot remove it, but
/// HELIX synchronization overlaps the tail — the INT-suite anchor that
/// keeps even `dep3-fn3` PDOALL modest (paper §IV).
pub fn chase_mem(
    fb: &mut FunctionBuilder,
    table: ValueId,
    cell: ValueId,
    scratch: ValueId,
    steps: ValueId,
    work: u32,
) {
    counted_loop(fb, steps, &[], |fb, i, _| {
        let pos = fb.load(Type::I64, cell);
        let addr = fb.gep(table, pos, 8, 0);
        let next = fb.load(Type::I64, addr);
        fb.store(next, cell); // producer: early in the iteration
        let w = int_filler(fb, next, work);
        store_elem(fb, scratch, i, w);
        vec![]
    });
}

/// Maps `dst[i] = callee(src[i])` — calls inside a loop (the structural
/// constraint). The callee decides the `fn` class.
pub fn map_call(fb: &mut FunctionBuilder, callee: FuncId, src: ValueId, dst: ValueId, n: ValueId) {
    counted_loop(fb, n, &[], |fb, i, _| {
        let v = load_elem(fb, Type::I64, src, i);
        let r = fb.call(callee, Type::I64, &[v]);
        store_elem(fb, dst, i, r);
        vec![]
    });
}

/// A loop that prints its accumulator every `period` iterations — a
/// non-thread-safe I/O call on a rarely taken path (only `fn3`
/// parallelizes it). Returns the accumulator.
pub fn print_every(fb: &mut FunctionBuilder, base: ValueId, n: ValueId, period: i64) -> ValueId {
    let zero = fb.const_i64(0);
    let pc = fb.const_i64(period);
    let phis = counted_loop(fb, n, &[(Type::I64, zero)], |fb, i, phis| {
        let v = load_elem(fb, Type::I64, base, i);
        let acc = fb.add(phis[0], v);
        let r = fb.srem(i, pc);
        let hit = fb.icmp(IcmpPred::Eq, r, zero);
        let merged = if_else(
            fb,
            hit,
            Type::I64,
            |fb| {
                fb.call_builtin(Builtin::PrintI64, &[acc]);
                acc
            },
            |_| acc,
        );
        vec![merged]
    });
    phis[0]
}

/// Dense matrix–vector product: `out[r] = Σ_c m[r][c] * v[c]` — outer
/// loop DOALL (disjoint `out` rows), inner loop a float reduction.
pub fn matvec(
    fb: &mut FunctionBuilder,
    mat: ValueId,
    vec_in: ValueId,
    out: ValueId,
    rows: ValueId,
    cols: ValueId,
    cols_stride: i64,
) {
    counted_loop(fb, rows, &[], |fb, r, _| {
        let row_base = {
            let stride = fb.const_i64(cols_stride * 8);
            let off = fb.mul(r, stride);
            let cast = fb.cast(lp_ir::CastKind::PtrToInt, mat);
            let sum = fb.add(cast, off);
            fb.cast(lp_ir::CastKind::IntToPtr, sum)
        };
        let z = fb.const_f64(0.0);
        let acc = counted_loop(fb, cols, &[(Type::F64, z)], |fb, c, phis| {
            let a = load_elem(fb, Type::F64, row_base, c);
            let x = load_elem(fb, Type::F64, vec_in, c);
            let p = fb.fmul(a, x);
            vec![fb.fadd(phis[0], p)]
        });
        store_elem(fb, out, r, acc[0]);
        vec![]
    });
}

/// Threshold count: counts `a[i] > limit` with a branchy body (irregular
/// iteration lengths). DOALL apart from the reduction.
pub fn threshold_count(
    fb: &mut FunctionBuilder,
    base: ValueId,
    n: ValueId,
    limit: f64,
    work: u32,
) -> ValueId {
    let zero = fb.const_i64(0);
    let lim = fb.const_f64(limit);
    let one = fb.const_i64(1);
    let phis = counted_loop(fb, n, &[(Type::I64, zero)], |fb, i, phis| {
        let v = load_elem(fb, Type::F64, base, i);
        let hot = fb.fcmp(FcmpPred::Ogt, v, lim);
        let inc = if_else(
            fb,
            hot,
            Type::I64,
            |fb| {
                let w = float_filler(fb, v, work);
                let wi = fb.fptosi(w);
                let nz = fb.icmp(IcmpPred::Ne, wi, zero);
                fb.cast(lp_ir::CastKind::BoolToInt, nz)
            },
            |_| one,
        );
        vec![fb.add(phis[0], inc)]
    });
    phis[0]
}

// ---- module-level callee builders --------------------------------------

/// Builds a pure arithmetic function `fn(x) -> x`-ish (no memory).
pub fn make_pure_fn(module: &mut Module, name: &str) -> FuncId {
    let mut fb = FunctionBuilder::new(name, &[Type::I64], Type::I64);
    let x = fb.param(0);
    let r = int_filler(&mut fb, x, 6);
    fb.ret(Some(r));
    module.add_function(fb.finish().expect("valid pure fn"))
}

/// Builds a pure function using a pure math builtin (`sqrt`).
pub fn make_pure_math_fn(module: &mut Module, name: &str) -> FuncId {
    let mut fb = FunctionBuilder::new(name, &[Type::I64], Type::I64);
    let x = fb.param(0);
    let mask = fb.const_i64(0xFFFF);
    let pos = fb.and(x, mask);
    let xf = fb.sitofp(pos);
    let s = fb.call_builtin(Builtin::Sqrt, &[xf]);
    let r = fb.fptosi(s);
    fb.ret(Some(r));
    module.add_function(fb.finish().expect("valid math fn"))
}

/// Builds an impure-but-thread-safe helper: uses a private stack buffer
/// (cactus-stack local), so concurrent calls never conflict.
pub fn make_scratch_fn(module: &mut Module, name: &str) -> FuncId {
    let mut fb = FunctionBuilder::new(name, &[Type::I64], Type::I64);
    let x = fb.param(0);
    let buf = fb.alloca(4);
    let two = fb.const_i64(2);
    fb.store(x, buf);
    let addr1 = fb.gep(buf, two, 8, -8);
    let t = fb.mul(x, two);
    fb.store(t, addr1);
    let a = fb.load(Type::I64, buf);
    let b = fb.load(Type::I64, addr1);
    let r0 = fb.add(a, b);
    let r = int_filler(&mut fb, r0, 4);
    fb.ret(Some(r));
    module.add_function(fb.finish().expect("valid scratch fn"))
}

/// Builds a logging helper that prints its argument (non-thread-safe).
pub fn make_logging_fn(module: &mut Module, name: &str) -> FuncId {
    let mut fb = FunctionBuilder::new(name, &[Type::I64], Type::I64);
    let x = fb.param(0);
    fb.call_builtin(Builtin::PrintI64, &[x]);
    fb.ret(Some(x));
    module.add_function(fb.finish().expect("valid logging fn"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_ir::{Global, Module};
    use lp_runtime::{evaluate, profile_module, ExecModel};

    fn speedup(m: &Module, model: ExecModel, config: &str) -> f64 {
        let analysis = analyze_module(m);
        let (p, _) = profile_module(m, &analysis, &[], MachineConfig::default()).unwrap();
        evaluate(&p, model, config.parse().unwrap()).speedup
    }

    fn module_with_main(
        globals: &[(&str, u64)],
        build: impl FnOnce(&mut Module, &mut FunctionBuilder, &[ValueId]),
    ) -> Module {
        let mut m = Module::new("pattern_test");
        let gids: Vec<_> = globals
            .iter()
            .map(|(name, words)| m.add_global(Global::zeroed(*name, *words)))
            .collect();
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let bases: Vec<ValueId> = gids.iter().map(|g| fb.global_addr(*g)).collect();
        build(&mut m, &mut fb, &bases);
        m.add_function(fb.finish().unwrap());
        lp_ir::verify_module(&m).unwrap();
        m
    }

    #[test]
    fn stencil_is_doall() {
        let m = module_with_main(&[("src", 130), ("dst", 130)], |_m, fb, bases| {
            let n = fb.const_i64(128);
            fill_affine_f64(fb, bases[0], n, 0.5);
            stencil3(fb, bases[0], bases[1], n, 4);
            let zero = fb.const_i64(0);
            fb.ret(Some(zero));
        });
        // The stencil's iterations are independent, but each makes a pure
        // math call (like real FP code): fn0 serializes it, fn1 unlocks.
        let fn0 = speedup(&m, ExecModel::Doall, "reduc0-dep0-fn0");
        let fn1 = speedup(&m, ExecModel::PartialDoall, "reduc0-dep0-fn1");
        assert!(
            fn1 > 20.0,
            "stencil should be DOALL once pure calls pass: {fn1}"
        );
        assert!(fn1 > fn0 * 2.0, "fn0 must gate the stencil: {fn0} -> {fn1}");
    }

    #[test]
    fn chase_needs_helix_dep1_or_prediction() {
        let m = module_with_main(&[("next", 256), ("_s", 1)], |_m, fb, bases| {
            let n = fb.const_i64(256);
            fill_affine_perm(fb, bases[0], n, 37, 11);
            let steps = fb.const_i64(256);
            let r = pointer_chase(fb, bases[0], steps, 8);
            fb.ret(Some(r));
        });
        let doall = speedup(&m, ExecModel::Doall, "reduc0-dep0-fn0");
        let helix = speedup(&m, ExecModel::Helix, "reduc1-dep1-fn2");
        assert!(
            doall < 2.6,
            "fills are DOALL but the chase dominates: {doall}"
        );
        assert!(
            helix > doall,
            "HELIX dep1 should beat DOALL: {helix} vs {doall}"
        );
    }

    #[test]
    fn predictable_walk_rewards_dep2() {
        let m = module_with_main(&[("tab", 2048), ("_s", 1)], |_m, fb, bases| {
            let n = fb.const_i64(2048);
            fill_mostly_const(fb, bases[0], n, 3, 17, 64);
            let r = predictable_walk(fb, bases[0], n, 6);
            fb.ret(Some(r));
        });
        let dep0 = speedup(&m, ExecModel::PartialDoall, "reduc1-dep0-fn2");
        let dep2 = speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn2");
        assert!(
            dep2 > dep0 * 2.0,
            "value prediction should unlock the walk: dep0 {dep0}, dep2 {dep2}"
        );
    }

    #[test]
    fn accum_cell_is_helix_friendly_dp_chain_is_not() {
        let build = |late: bool| {
            module_with_main(&[("a", 1100), ("b", 1100)], move |_m, fb, bases| {
                let n = fb.const_i64(1000);
                if late {
                    dp_chain(fb, bases[0], n, 24);
                } else {
                    accum_cell(fb, bases[0], bases[1], n, 24);
                }
                let zero = fb.const_i64(0);
                fb.ret(Some(zero));
            })
        };
        let early = speedup(&build(false), ExecModel::Helix, "reduc0-dep0-fn2");
        let late = speedup(&build(true), ExecModel::Helix, "reduc0-dep0-fn2");
        assert!(
            early > 3.0 && early > late * 2.0,
            "early producer {early} should dwarf late producer {late}"
        );
        assert!(late < 1.5, "late-producer chain gains little: {late}");
    }

    #[test]
    fn histogram_is_pdoall_friendly() {
        let m = module_with_main(&[("hist", 4096)], |_m, fb, bases| {
            let n = fb.const_i64(512);
            histogram(fb, bases[0], n, 4095, 4);
            let zero = fb.const_i64(0);
            fb.ret(Some(zero));
        });
        let doall = speedup(&m, ExecModel::Doall, "reduc0-dep0-fn0");
        let pdoall = speedup(&m, ExecModel::PartialDoall, "reduc0-dep0-fn0");
        assert!(
            pdoall > doall.max(2.0),
            "rare collisions: PDOALL {pdoall} must beat DOALL {doall}"
        );
    }

    #[test]
    fn call_classes_gate_fn_lattice() {
        let m = module_with_main(&[("src", 300), ("dst", 300)], |m, fb, bases| {
            let pure = make_pure_fn(m, "work");
            let n = fb.const_i64(256);
            fill_affine(fb, bases[0], n, 3, 1);
            map_call(fb, pure, bases[0], bases[1], n);
            let zero = fb.const_i64(0);
            fb.ret(Some(zero));
        });
        let fn0 = speedup(&m, ExecModel::PartialDoall, "reduc0-dep0-fn0");
        let fn1 = speedup(&m, ExecModel::PartialDoall, "reduc0-dep0-fn1");
        assert!(fn1 > fn0 * 3.0, "pure calls unlock at fn1: {fn0} -> {fn1}");
    }

    #[test]
    fn print_every_needs_fn3() {
        let m = module_with_main(&[("src", 300)], |_m, fb, bases| {
            let n = fb.const_i64(256);
            fill_affine(fb, bases[0], n, 1, 0);
            let r = print_every(fb, bases[0], n, 64);
            fb.ret(Some(r));
        });
        // The accumulator flows through the if/else join phi, so it is a
        // non-computable LCD: remove it with dep3 to isolate the fn gate.
        let fn2 = speedup(&m, ExecModel::PartialDoall, "reduc1-dep3-fn2");
        let fn3 = speedup(&m, ExecModel::PartialDoall, "reduc1-dep3-fn3");
        assert!(fn3 > fn2, "I/O loop unlocks only at fn3: {fn2} vs {fn3}");
    }

    #[test]
    fn matvec_runs_and_parallelizes() {
        let m = module_with_main(&[("mat", 1024), ("v", 32), ("out", 32)], |_m, fb, bases| {
            let n = fb.const_i64(1024);
            fill_affine_f64(fb, bases[0], n, 0.01);
            let cols = fb.const_i64(32);
            fill_affine_f64(fb, bases[1], cols, 0.1);
            matvec(fb, bases[0], bases[1], bases[2], cols, cols, 32);
            let zero = fb.const_i64(0);
            fb.ret(Some(zero));
        });
        // Inner reduction blocks reduc0 DOALL of the inner loop, but the
        // outer loop is DOALL under reduc1 via nested propagation.
        let s = speedup(&m, ExecModel::PartialDoall, "reduc1-dep0-fn0");
        assert!(s > 5.0, "matvec outer loop should parallelize: {s}");
    }

    #[test]
    fn scratch_fn_is_thread_safe_via_cactus_stack() {
        let m = module_with_main(&[("src", 300), ("dst", 300)], |m, fb, bases| {
            let scratch = make_scratch_fn(m, "scratch");
            let n = fb.const_i64(256);
            fill_affine(fb, bases[0], n, 5, 2);
            map_call(fb, scratch, bases[0], bases[1], n);
            let zero = fb.const_i64(0);
            fb.ret(Some(zero));
        });
        // The callee stores to its own frame; with the cactus-stack filter
        // those stores are iteration-local, so fn2 parallelizes the loop.
        let fn2 = speedup(&m, ExecModel::PartialDoall, "reduc0-dep0-fn2");
        assert!(fn2 > 5.0, "scratch calls must not serialize fn2: {fn2}");
        let fn1 = speedup(&m, ExecModel::PartialDoall, "reduc0-dep0-fn1");
        assert!(fn2 > fn1, "impure callee blocks fn1: {fn1} vs {fn2}");
    }
}
