//! SPEC CFP2006 stand-ins (numeric, the C/C++ subset the paper can
//! compile through LLVM).
//!
//! `450.soplex` and `482.sphinx3` are built PDOALL-leaning per Fig. 4.

use crate::patterns::*;
use crate::{build_program_glued, Benchmark, Glue, Scale, SuiteId};
use lp_ir::Module;

fn bench(name: &'static str, build: fn(Scale) -> Module) -> Benchmark {
    Benchmark {
        name,
        suite: SuiteId::Cfp2006,
        build,
    }
}

/// Per-suite glue weights (see `lp_suite::Glue` and DESIGN.md §4):
/// calibrates the frequent-memory-LCD fraction of every benchmark.
fn glue(n: i64) -> Option<Glue> {
    Some(Glue {
        serial_n: n / 24,
        accum_n: n / 24,
        lcg_n: n / 3,
        work: 10,
    })
}

/// The CFP2006 roster.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        bench("433.milc", milc),
        bench("444.namd", namd),
        bench("447.dealII", dealii),
        bench("450.soplex", soplex),
        bench("453.povray", povray),
        bench("470.lbm", lbm),
        bench("482.sphinx3", sphinx3),
    ]
}

/// Lattice QCD (milc): su3 mat-vec sweeps — regular and parallel.
fn milc(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "433.milc",
        glue(n),
        &[
            ("links", 48 * 48),
            ("site", 56),
            ("out", 56),
            ("field", n as u64 + 2),
        ],
        |_m, fb, g| {
            let dim = fb.const_i64(48);
            let d2 = fb.const_i64(48 * 48);
            fill_affine_f64(fb, g[0], d2, 0.002);
            fill_affine_f64(fb, g[1], dim, 0.1);
            matvec(fb, g[0], g[1], g[2], dim, dim, 48);
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[3], nn, 0.03);
            saxpy(fb, g[3], g[3], nn, 0.98, 8);
            let s = vector_sum_f64(fb, g[3], nn, 3);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// Molecular dynamics (namd): pairwise force kernels — SAXPY-heavy with
/// a shared energy accumulator.
fn namd(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "444.namd",
        glue(n),
        &[
            ("pos", n as u64 + 2),
            ("vel", n as u64 + 2),
            ("energy", 2),
            ("scratch", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.01);
            fill_affine_f64(fb, g[1], nn, 0.005);
            saxpy(fb, g[0], g[1], nn, 0.5, 10); // force kernel
            accum_cell(fb, g[2], g[3], nn, 8); // energy sum cell
            saxpy(fb, g[1], g[0], nn, 1.0, 10); // integrate
            let s = vector_sum_f64(fb, g[0], nn, 3);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// Finite elements (dealII): assembly loops with helper calls plus
/// mat-vec solves.
fn dealii(scale: Scale) -> Module {
    let n = scale.n(208);
    build_program_glued(
        "447.dealII",
        glue(n),
        &[
            ("cells", n as u64 + 2),
            ("matrix", 40 * 40),
            ("rhs", 48),
            ("sol", 48),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let assemble = make_scratch_fn(m, "assemble_cell");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 41, 3);
            map_call(fb, assemble, g[0], g[4], nn);
            let dim = fb.const_i64(40);
            let d2 = fb.const_i64(40 * 40);
            fill_affine_f64(fb, g[1], d2, 0.004);
            fill_affine_f64(fb, g[2], dim, 0.2);
            matvec(fb, g[1], g[2], g[3], dim, dim, 40);
            let s = vector_sum_i64(fb, g[4], nn, 3);
            fb.ret(Some(s));
        },
    )
}

/// LP simplex (soplex): pricing scans are *predictable* late-produced
/// walks over packed columns — the Fig. 4 PDOALL winner.
fn soplex(scale: Scale) -> Module {
    let n = scale.n(240);
    build_program_glued(
        "450.soplex",
        glue(n),
        &[("colptr", n as u64 + 2), ("vals", n as u64 + 2)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_mostly_const(fb, g[0], nn, 4, 28, 80);
            let w1 = predictable_late_walk(fb, g[0], nn, 20); // pricing pass
            let w2 = predictable_late_walk(fb, g[0], nn, 20); // ratio test
            fill_affine_f64(fb, g[1], nn, 0.02);
            let s = vector_sum_f64(fb, g[1], nn, 6);
            let si = fb.fptosi(s);
            let t = fb.xor(w1, w2);
            let chk = fb.xor(t, si);
            fb.ret(Some(chk));
        },
    )
}

/// Ray tracer (povray): per-pixel pure-math shading — parallel once
/// calls are (fn1/fn2).
fn povray(scale: Scale) -> Module {
    let n = scale.n(240);
    build_program_glued(
        "453.povray",
        glue(n),
        &[
            ("rays", n as u64 + 2),
            ("img", n as u64 + 2),
            ("img2", n as u64 + 2),
        ],
        |m, fb, g| {
            let shade = make_pure_math_fn(m, "trace_ray");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 7919, 23);
            map_call(fb, shade, g[0], g[1], nn);
            map_call(fb, shade, g[1], g[2], nn); // secondary rays
            let s = vector_sum_i64(fb, g[2], nn, 4);
            fb.ret(Some(s));
        },
    )
}

/// Lattice Boltzmann (lbm): one big streaming stencil — near-perfect
/// DOALL, the CFP2006 outlier.
fn lbm(scale: Scale) -> Module {
    let n = scale.n(320);
    build_program_glued(
        "470.lbm",
        glue(n),
        &[("src", n as u64 + 4), ("dst", n as u64 + 4)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.01);
            stencil3(fb, g[0], g[1], nn, 12); // collide + stream
            stencil3(fb, g[1], g[0], nn, 12);
            stencil3(fb, g[0], g[1], nn, 12);
            let s = vector_sum_f64(fb, g[1], nn, 2);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// Speech recognition (sphinx3): GMM scoring = dot-product reductions,
/// plus predictable senone-list walks — PDOALL-leaning per Fig. 4.
fn sphinx3(scale: Scale) -> Module {
    let n = scale.n(240);
    build_program_glued(
        "482.sphinx3",
        glue(n),
        &[
            ("feat", n as u64 + 2),
            ("gauss", n as u64 + 2),
            ("senones", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_f64(fb, g[0], nn, 0.02);
            fill_affine_f64(fb, g[1], nn, 0.03);
            let s1 = vector_sum_f64(fb, g[0], nn, 10); // GMM scores
            let s2 = vector_sum_f64(fb, g[1], nn, 10);
            fill_mostly_const(fb, g[2], nn, 2, 18, 112);
            let w = predictable_late_walk(fb, g[2], nn, 16); // active list walk
            let t = fb.fadd(s1, s2);
            let ti = fb.fptosi(t);
            let chk = fb.xor(ti, w);
            fb.ret(Some(chk));
        },
    )
}

// ---- local pattern variants ---------------------------------------------

use crate::kernels::{counted_loop, int_filler, load_elem};
use lp_ir::builder::FunctionBuilder;
use lp_ir::{Type, ValueId};

/// Predictable walker with a late producer (see `cfp2000::predictable_late`).
fn predictable_late_walk(
    fb: &mut FunctionBuilder,
    data: ValueId,
    n: ValueId,
    work: u32,
) -> ValueId {
    let zero = fb.const_i64(0);
    let phis = counted_loop(
        fb,
        n,
        &[(Type::I64, zero), (Type::I64, zero)],
        |fb, i, phis| {
            let d = load_elem(fb, Type::I64, data, i);
            let w = int_filler(fb, phis[0], work);
            let acc = fb.add(phis[1], w);
            let t = fb.add(phis[0], d);
            let mixed = fb.xor(t, w);
            let x2 = fb.xor(mixed, w);
            vec![x2, acc]
        },
    );
    phis[1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_runtime::{evaluate, profile_module, ExecModel};

    fn speedup(m: &Module, model: ExecModel, config: &str) -> f64 {
        let analysis = analyze_module(m);
        let (p, _) = profile_module(m, &analysis, &[], MachineConfig::default()).unwrap();
        evaluate(&p, model, config.parse().unwrap()).speedup
    }

    #[test]
    fn lbm_is_massively_parallel() {
        let m = lbm(Scale::Test);
        let s = speedup(&m, ExecModel::PartialDoall, "reduc0-dep0-fn1");
        assert!(
            s > 5.0,
            "lbm should be near-perfect once pure calls pass: {s}"
        );
    }

    #[test]
    fn soplex_and_sphinx_prefer_pdoall() {
        for build in [soplex as fn(Scale) -> Module, sphinx3] {
            let m = build(Scale::Test);
            let pd = speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn2");
            let hx = speedup(&m, ExecModel::Helix, "reduc1-dep1-fn2");
            assert!(
                pd > hx,
                "{}: best PDOALL ({pd}) must beat best HELIX ({hx})",
                m.name
            );
        }
    }

    #[test]
    fn povray_needs_call_parallelism() {
        let m = povray(Scale::Test);
        let fn0 = speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn0");
        let fn2 = speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn2");
        assert!(fn2 > fn0 * 2.0, "povray unlocks with fn2: {fn0} -> {fn2}");
    }
}
