//! EEMBC stand-ins (embedded, numeric-leaning).
//!
//! Small regular kernels whose hot loops call helper routines — the
//! paper's EEMBC observation is that `fn2` (parallelizing instrumented
//! and thread-safe calls) matters *more* than `reduc1`/`dep2` here
//! ("EEMBC performs even better with `reduc0-dep0-fn2` PDOALL than
//! `reduc1-dep2-fn0` PDOALL"), so most recipes put their main compute
//! behind thread-safe helper calls.

use crate::patterns::*;
use crate::{build_program_glued, Benchmark, Glue, Scale, SuiteId};
use lp_ir::Module;

fn bench(name: &'static str, build: fn(Scale) -> Module) -> Benchmark {
    Benchmark {
        name,
        suite: SuiteId::Eembc,
        build,
    }
}

/// Per-suite glue weights (see `lp_suite::Glue` and DESIGN.md §4):
/// calibrates the frequent-memory-LCD fraction of every benchmark.
fn glue(n: i64) -> Option<Glue> {
    Some(Glue {
        serial_n: n / 24,
        accum_n: n / 24,
        lcg_n: n / 4,
        work: 8,
    })
}

/// The EEMBC roster (automotive + telecom kernels).
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        bench("eembc.aifftr01", aifftr),
        bench("eembc.aiifft01", aiifft),
        bench("eembc.basefp01", basefp),
        bench("eembc.bitmnp01", bitmnp),
        bench("eembc.idctrn01", idctrn),
        bench("eembc.matrix01", matrix),
        bench("eembc.puwmod01", puwmod),
        bench("eembc.rspeed01", rspeed),
        bench("eembc.tblook01", tblook),
        bench("eembc.ttsprk01", ttsprk),
    ]
}

/// FFT: butterfly sweeps behind a helper call per point.
fn aifftr(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "eembc.aifftr01",
        glue(n),
        &[
            ("re", n as u64 + 2),
            ("im", n as u64 + 2),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let bf = make_scratch_fn(m, "butterfly");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 5, 1);
            map_call(fb, bf, g[0], g[1], nn);
            map_call(fb, bf, g[1], g[2], nn);
            let s = vector_sum_i64(fb, g[2], nn, 2);
            fb.ret(Some(s));
        },
    )
}

/// Inverse FFT: as `aifftr` plus a scaling SAXPY.
fn aiifft(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "eembc.aiifft01",
        glue(n),
        &[
            ("re", n as u64 + 2),
            ("f", n as u64 + 2),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let bf = make_scratch_fn(m, "ibutterfly");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 7, 2);
            map_call(fb, bf, g[0], g[2], nn);
            fill_affine_f64(fb, g[1], nn, 0.01);
            saxpy(fb, g[1], g[1], nn, 1.0 / 64.0, 4);
            let s = vector_sum_i64(fb, g[2], nn, 2);
            fb.ret(Some(s));
        },
    )
}

/// Basic float arithmetic: pure-math helper per element.
fn basefp(scale: Scale) -> Module {
    let n = scale.n(240);
    build_program_glued(
        "eembc.basefp01",
        glue(n),
        &[("in", n as u64 + 2), ("out", n as u64 + 2)],
        |m, fb, g| {
            let op = make_pure_math_fn(m, "fp_op");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 3, 1);
            map_call(fb, op, g[0], g[1], nn);
            let s = vector_sum_i64(fb, g[1], nn, 3);
            fb.ret(Some(s));
        },
    )
}

/// Bit manipulation: shift/rotate kernels behind a helper.
fn bitmnp(scale: Scale) -> Module {
    let n = scale.n(240);
    build_program_glued(
        "eembc.bitmnp01",
        glue(n),
        &[("words", n as u64 + 2), ("out", n as u64 + 2)],
        |m, fb, g| {
            let twiddle = make_scratch_fn(m, "bit_twiddle");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 0x1234567, 3);
            map_call(fb, twiddle, g[0], g[1], nn);
            let best = max_i64(fb, g[1], nn);
            fb.ret(Some(best));
        },
    )
}

/// IDCT: 8x8 transforms = small mat-vec per block behind a helper call.
fn idctrn(scale: Scale) -> Module {
    let n = scale.n(208);
    build_program_glued(
        "eembc.idctrn01",
        glue(n),
        &[
            ("blocks", n as u64 + 2),
            ("coef", 64 + 8),
            ("v", 16),
            ("tmp", 16),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let idct = make_scratch_fn(m, "idct_block");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 63, 8);
            map_call(fb, idct, g[0], g[4], nn);
            let dim = fb.const_i64(8);
            let d2 = fb.const_i64(64);
            fill_affine_f64(fb, g[1], d2, 0.05);
            fill_affine_f64(fb, g[2], dim, 0.2);
            matvec(fb, g[1], g[2], g[3], dim, dim, 8);
            let s = vector_sum_i64(fb, g[4], nn, 2);
            fb.ret(Some(s));
        },
    )
}

/// Matrix math: dense mat-vec and reductions.
fn matrix(scale: Scale) -> Module {
    let n = scale.n(48);
    build_program_glued(
        "eembc.matrix01",
        glue(n),
        &[
            ("mat", (n as u64 + 1) * (n as u64 + 1)),
            ("v", n as u64 + 2),
            ("out", n as u64 + 2),
        ],
        |_m, fb, g| {
            let dim = fb.const_i64(n);
            let d2 = fb.const_i64(n * n);
            fill_affine_f64(fb, g[0], d2, 0.001);
            fill_affine_f64(fb, g[1], dim, 0.1);
            matvec(fb, g[0], g[1], g[2], dim, dim, n);
            let s = vector_sum_f64(fb, g[2], dim, 4);
            let r = fb.fptosi(s);
            fb.ret(Some(r));
        },
    )
}

/// Pulse-width modulation: tight control loop with a shared state cell
/// and helper calls.
fn puwmod(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "eembc.puwmod01",
        glue(n),
        &[
            ("duty", n as u64 + 2),
            ("state", 2),
            ("scratch", n as u64 + 2),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let mod_fn = make_scratch_fn(m, "modulate");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 11, 1);
            map_call(fb, mod_fn, g[0], g[3], nn);
            accum_cell(fb, g[1], g[2], nn, 8); // phase accumulator
            let s = vector_sum_i64(fb, g[3], nn, 2);
            fb.ret(Some(s));
        },
    )
}

/// Road-speed calculation: predictable sensor-delta walk plus a helper.
fn rspeed(scale: Scale) -> Module {
    let n = scale.n(240);
    build_program_glued(
        "eembc.rspeed01",
        glue(n),
        &[("ticks", n as u64 + 2), ("out", n as u64 + 2)],
        |m, fb, g| {
            let calc = make_scratch_fn(m, "speed_calc");
            let nn = fb.const_i64(n);
            fill_mostly_const(fb, g[0], nn, 5, 9, 40);
            let w = predictable_walk(fb, g[0], nn, 6);
            map_call(fb, calc, g[0], g[1], nn);
            let s = vector_sum_i64(fb, g[1], nn, 2);
            let chk = fb.xor(w, s);
            fb.ret(Some(chk));
        },
    )
}

/// Table lookup with interpolation: gather loads plus a pure helper.
fn tblook(scale: Scale) -> Module {
    let n = scale.n(240);
    build_program_glued(
        "eembc.tblook01",
        glue(n),
        &[
            ("keys", n as u64 + 2),
            ("table", 1024),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let interp = make_pure_fn(m, "interp");
            let nn = fb.const_i64(n);
            let tab_n = fb.const_i64(1024);
            fill_affine(fb, g[1], tab_n, 3, 100);
            fill_affine(fb, g[0], nn, 37, 5);
            map_call(fb, interp, g[0], g[2], nn);
            let s = vector_sum_i64(fb, g[2], nn, 3);
            fb.ret(Some(s));
        },
    )
}

/// Spark-timing control: branchy table logic with helper calls and an
/// ignition-state cell.
fn ttsprk(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "eembc.ttsprk01",
        glue(n),
        &[
            ("sensors", n as u64 + 2),
            ("state", 2),
            ("scratch", n as u64 + 2),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let advance = make_scratch_fn(m, "spark_advance");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 13, 7);
            map_call(fb, advance, g[0], g[3], nn);
            accum_cell(fb, g[1], g[2], nn, 6);
            let best = max_i64(fb, g[3], nn);
            fb.ret(Some(best));
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_runtime::{evaluate, profile_module, ExecModel};

    fn speedup(m: &Module, model: ExecModel, config: &str) -> f64 {
        let analysis = analyze_module(m);
        let (p, _) = profile_module(m, &analysis, &[], MachineConfig::default()).unwrap();
        evaluate(&p, model, config.parse().unwrap()).speedup
    }

    #[test]
    fn eembc_gains_more_from_fn2_than_from_reduc_dep() {
        // The paper's EEMBC observation: reduc0-dep0-fn2 beats
        // reduc1-dep2-fn0 (geomean over the suite).
        let mut fn2_gm = 0.0f64;
        let mut dep2_gm = 0.0f64;
        let list = benchmarks();
        for b in &list {
            let m = b.build(Scale::Test);
            fn2_gm += speedup(&m, ExecModel::PartialDoall, "reduc0-dep0-fn2").ln();
            dep2_gm += speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn0").ln();
        }
        let fn2_gm = (fn2_gm / list.len() as f64).exp();
        let dep2_gm = (dep2_gm / list.len() as f64).exp();
        assert!(
            fn2_gm > dep2_gm,
            "EEMBC: fn2 ({fn2_gm:.2}) should beat reduc1-dep2 ({dep2_gm:.2})"
        );
    }
}
