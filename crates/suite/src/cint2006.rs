//! SPEC CINT2006 stand-ins (non-numeric).
//!
//! Slightly richer loop structure than CINT2000 (matching the paper's
//! higher 2006 HELIX headline): `hmmer`'s DP inner loops have early
//! producers, `libquantum` is almost embarrassingly parallel, `h264ref`
//! has reduction-heavy motion estimation — while `mcf`, `astar` and
//! `omnetpp` stay chase-bound.

use crate::patterns::*;
use crate::{build_program_glued, Benchmark, Glue, Scale, SuiteId};
use lp_ir::{Module, Type};

fn bench(name: &'static str, build: fn(Scale) -> Module) -> Benchmark {
    Benchmark {
        name,
        suite: SuiteId::Cint2006,
        build,
    }
}

/// Per-suite glue weights (see `lp_suite::Glue` and DESIGN.md §4):
/// calibrates the frequent-memory-LCD fraction of every benchmark.
fn glue(n: i64) -> Option<Glue> {
    Some(Glue {
        serial_n: n / 4,
        accum_n: n * 7 / 10,
        lcg_n: 0,
        work: 14,
    })
}

/// The CINT2006 roster.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        bench("400.perlbench", perlbench),
        bench("401.bzip2", bzip2),
        bench("403.gcc", gcc),
        bench("429.mcf", mcf),
        bench("445.gobmk", gobmk),
        bench("456.hmmer", hmmer),
        bench("458.sjeng", sjeng),
        bench("462.libquantum", libquantum),
        bench("464.h264ref", h264ref),
        bench("471.omnetpp", omnetpp),
        bench("473.astar", astar),
        bench("483.xalancbmk", xalancbmk),
    ]
}

/// Perl interpreter, 2006 edition: the same dispatch chain plus regex
/// scans that are mildly parallel.
fn perlbench(scale: Scale) -> Module {
    let n = scale.n(192);
    build_program_glued(
        "400.perlbench",
        glue(n),
        &[
            ("ops", n as u64 + 4),
            ("pad", n as u64 + 4),
            ("text", n as u64 + 4),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_lcg(fb, g[0], nn, 0x4001, 511);
            dp_chain(fb, g[1], nn, 9); // interpreter state
            fill_affine(fb, g[2], nn, 17, 3);
            let scan = vector_sum_i64(fb, g[2], nn, 4); // regex scan
            let io = print_every(fb, g[0], nn, 96);
            let chk = fb.xor(scan, io);
            fb.ret(Some(chk));
        },
    )
}

/// bzip2 with larger blocks: counting sorts are predictable walks and the
/// Huffman stage is an accumulation cell with fat filler (HELIX likes it).
fn bzip2(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "401.bzip2",
        glue(n),
        &[
            ("block", n as u64 + 4),
            ("counts", n as u64 + 4),
            ("cell", 2),
            ("scratch", n as u64 + 4),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_mostly_const(fb, g[1], nn, 1, 7, 48);
            let ptr = predictable_walk(fb, g[1], nn, 8);
            accum_cell(fb, g[2], g[3], nn, 16); // bit-stream position
            fill_lcg(fb, g[0], nn, 0xbeef, 255);
            let s = vector_sum_i64(fb, g[0], nn, 2);
            let chk = fb.xor(ptr, s);
            fb.ret(Some(chk));
        },
    )
}

/// GCC 4-era: as 176.gcc but with more helper-call loops.
fn gcc(scale: Scale) -> Module {
    let n = scale.n(176);
    build_program_glued(
        "403.gcc",
        glue(n),
        &[
            ("ir", n as u64 + 4),
            ("table", 4096),
            ("out", n as u64 + 4),
            ("out2", n as u64 + 4),
        ],
        |m, fb, g| {
            let fold = make_scratch_fn(m, "fold_insn");
            let dce = make_scratch_fn(m, "dce_insn");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 131, 29);
            map_call(fb, fold, g[0], g[2], nn);
            map_call(fb, dce, g[2], g[3], nn);
            dp_chain(fb, g[0], nn, 4);
            histogram(fb, g[1], nn, 4095, 3);
            let chk = max_i64(fb, g[3], nn);
            fb.ret(Some(chk));
        },
    )
}

/// 2006 mcf: still simplex chasing, but the paper's Fig. 4 shows best
/// PDOALL *beating* best HELIX here — the dominant walk is *predictable*
/// (cost arrays touched with near-constant strides) while its producer
/// sits late, making HELIX synchronization expensive.
fn mcf(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "429.mcf",
        glue(n),
        &[("strides", n as u64 + 2), ("arcs", n as u64 + 2)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_mostly_const(fb, g[0], nn, 3, 11, 128); // near-constant strides
            let w1 = predictable_walk_late(fb, g[0], nn, 16);
            let w2 = predictable_walk_late(fb, g[0], nn, 16);
            let flows = vector_sum_i64(fb, g[1], nn, 2);
            let t = fb.xor(w1, w2);
            let chk = fb.xor(t, flows);
            fb.ret(Some(chk));
        },
    )
}

/// Go engine: branchy board scans with hash probes and a shared
/// node-count cell; little to exploit.
fn gobmk(scale: Scale) -> Module {
    let n = scale.n(176);
    build_program_glued(
        "445.gobmk",
        glue(n),
        &[
            ("board", n as u64 + 2),
            ("hash", 8192),
            ("nodes", 2),
            ("scratch", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_lcg(fb, g[0], nn, 0x60b0, 511); // candidate moves
            histogram(fb, g[1], nn, 8191, 7);
            accum_cell(fb, g[2], g[3], nn, 10);
            let best = max_i64(fb, g[0], nn);
            fb.ret(Some(best));
        },
    )
}

/// Profile HMM search: the Viterbi inner loop carries register LCDs whose
/// producers come early, with plenty of independent scoring work after —
/// HELIX's best friend in the suite.
fn hmmer(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "456.hmmer",
        glue(n),
        &[("seq", n as u64 + 2), ("scores", n as u64 + 2)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 19, 5);
            // Viterbi recurrences: carried max-chains, early producer,
            // long scoring tail.
            let v1 = viterbi_row(fb, g[0], g[1], nn, 20);
            let v2 = viterbi_row(fb, g[0], g[1], nn, 20);
            let chk = fb.xor(v1, v2);
            fb.ret(Some(chk));
        },
    )
}

/// Chess (sjeng): like crafty with deeper branching.
fn sjeng(scale: Scale) -> Module {
    let n = scale.n(176);
    build_program_glued(
        "458.sjeng",
        glue(n),
        &[
            ("tt", 8192),
            ("board", n as u64 + 2),
            ("nodes", 2),
            ("scratch", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine(fb, g[1], nn, 2654435761, 17);
            histogram(fb, g[0], nn, 8191, 9);
            accum_cell(fb, g[2], g[3], nn, 11);
            let walk = pointer_chase_setup(fb, g[1], nn, 8);
            fb.ret(Some(walk));
        },
    )
}

/// Quantum simulator: gate application is elementwise over the state
/// vector — huge DOALL loops; the one known outlier that parallelizes
/// under everything.
fn libquantum(scale: Scale) -> Module {
    let n = scale.n(384);
    // libquantum is the suite's outlier: almost no driver glue, nearly
    // pure gate sweeps (its real hot loops are elementwise over the
    // quantum state vector).
    build_program_glued(
        "462.libquantum",
        Some(Glue {
            serial_n: n / 12,
            accum_n: n / 6,
            lcg_n: 0,
            work: 10,
        }),
        &[("state", n as u64 + 2), ("state2", n as u64 + 2)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 5, 1);
            // Three gate sweeps: toffoli-ish bit twiddles, independent.
            for round in 0..3 {
                gate_sweep(fb, g[0], g[1], nn, round);
            }
            let s = vector_sum_i64(fb, g[1], nn, 2);
            fb.ret(Some(s));
        },
    )
}

/// H.264 encoder: SAD motion-estimation reductions inside DOALL block
/// loops — big wins once reductions are decoupled (`reduc1`).
fn h264ref(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "464.h264ref",
        glue(n),
        &[
            ("frame", n as u64 + 18),
            ("ref", n as u64 + 18),
            ("sad", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 11, 7);
            fill_affine(fb, g[1], nn, 13, 3);
            sad_blocks(fb, g[0], g[1], g[2], nn);
            let best = max_i64(fb, g[2], nn);
            fb.ret(Some(best));
        },
    )
}

/// Discrete-event simulator: the event queue is a serial chase with heap
/// updates through shared memory.
fn omnetpp(scale: Scale) -> Module {
    let n = scale.n(192);
    build_program_glued(
        "471.omnetpp",
        glue(n),
        &[("queue", n as u64 + 2), ("heap", n as u64 + 4)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_perm(fb, g[0], nn, 43, 7);
            let ev = pointer_chase(fb, g[0], nn, 10); // event ordering
            dp_chain(fb, g[1], nn, 8); // heap property chain
            fb.ret(Some(ev));
        },
    )
}

/// A* pathfinding: open-list chasing plus neighbor relaxation with
/// aliasing stores.
fn astar(scale: Scale) -> Module {
    let n = scale.n(192);
    build_program_glued(
        "473.astar",
        glue(n),
        &[("open", n as u64 + 2), ("gscore", 2048)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_perm(fb, g[0], nn, 29, 3);
            let walk = pointer_chase(fb, g[0], nn, 9);
            histogram(fb, g[1], nn, 511, 6); // relaxations collide often
            fb.ret(Some(walk));
        },
    )
}

/// XSLT processor: tree-walk helper calls and string-table histograms.
fn xalancbmk(scale: Scale) -> Module {
    let n = scale.n(192);
    build_program_glued(
        "483.xalancbmk",
        glue(n),
        &[
            ("nodes", n as u64 + 2),
            ("strings", 4096),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let visit = make_scratch_fn(m, "visit_node");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 53, 9);
            map_call(fb, visit, g[0], g[2], nn);
            histogram(fb, g[1], nn, 4095, 4);
            let s = vector_sum_i64(fb, g[2], nn, 3);
            fb.ret(Some(s));
        },
    )
}

// ---- local pattern variants ---------------------------------------------

use crate::kernels::{counted_loop, int_filler, load_elem, store_elem};
use lp_ir::builder::FunctionBuilder;
use lp_ir::ValueId;

/// Like `predictable_walk`, but the carried value is produced at the
/// *end* of the iteration (after the filler) — predictable for `dep2`,
/// expensive to synchronize for `dep1`.
fn predictable_walk_late(
    fb: &mut FunctionBuilder,
    data: ValueId,
    n: ValueId,
    work: u32,
) -> ValueId {
    let zero = fb.const_i64(0);
    let phis = counted_loop(
        fb,
        n,
        &[(Type::I64, zero), (Type::I64, zero)],
        |fb, i, phis| {
            let d = load_elem(fb, Type::I64, data, i);
            let w = int_filler(fb, phis[0], work); // long chain first
            let acc = fb.add(phis[1], w);
            let step = fb.and(d, d);
            let x2 = {
                let t = fb.add(phis[0], step);
                let mixed = fb.xor(t, w);
                let unmix = fb.xor(mixed, w); // == t, but defined late
                unmix
            };
            vec![x2, acc]
        },
    );
    phis[1]
}

/// A Viterbi-like row: carried best-score (max chain) produced right at
/// the top of the iteration, followed by a long independent scoring tail
/// stored to disjoint slots.
fn viterbi_row(
    fb: &mut FunctionBuilder,
    seq: ValueId,
    out: ValueId,
    n: ValueId,
    tail: u32,
) -> ValueId {
    let zero = fb.const_i64(0);
    let phis = counted_loop(fb, n, &[(Type::I64, zero)], |fb, i, phis| {
        let e = load_elem(fb, Type::I64, seq, i);
        let cand = fb.add(phis[0], e);
        let best = fb.bin(lp_ir::BinOp::SMax, phis[0], cand); // early producer
        let w = int_filler(fb, best, tail); // independent scoring
        store_elem(fb, out, i, w);
        vec![best]
    });
    phis[0]
}

/// One libquantum-style gate sweep: `s2[i] = f(s[i])` bit manipulation.
fn gate_sweep(fb: &mut FunctionBuilder, src: ValueId, dst: ValueId, n: ValueId, round: u32) {
    let k = fb.const_i64(0x5555_5555 << (round + 1));
    counted_loop(fb, n, &[], |fb, i, _| {
        let v = load_elem(fb, Type::I64, src, i);
        let x = fb.xor(v, k);
        let w = int_filler(fb, x, 6);
        store_elem(fb, dst, i, w);
        vec![]
    });
}

/// Scrambles a board array then chases it (sjeng helper).
fn pointer_chase_setup(fb: &mut FunctionBuilder, board: ValueId, n: ValueId, work: u32) -> ValueId {
    // Reduce board values into valid indices, then chase.
    counted_loop(fb, n, &[], |fb, i, _| {
        let v = load_elem(fb, Type::I64, board, i);
        let idx = fb.srem(v, n);
        let pos = {
            let abs_in = fb.add(idx, n);
            fb.srem(abs_in, n)
        };
        store_elem(fb, board, i, pos);
        vec![]
    });
    pointer_chase(fb, board, n, work)
}

/// Block SAD: outer DOALL over blocks, inner 16-wide absolute-difference
/// reduction.
fn sad_blocks(fb: &mut FunctionBuilder, frame: ValueId, reff: ValueId, sad: ValueId, n: ValueId) {
    let sixteen = fb.const_i64(16);
    counted_loop(fb, n, &[], |fb, b, _| {
        let zero = fb.const_i64(0);
        let acc = counted_loop(fb, sixteen, &[(Type::I64, zero)], |fb, k, phis| {
            let idx = fb.add(b, k);
            let a = load_elem(fb, Type::I64, frame, idx);
            let r = load_elem(fb, Type::I64, reff, idx);
            let d = fb.sub(a, r);
            let neg = fb.sub(zero, d);
            let abs = fb.bin(lp_ir::BinOp::SMax, d, neg);
            vec![fb.add(phis[0], abs)]
        });
        store_elem(fb, sad, b, acc[0]);
        vec![]
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_runtime::{evaluate, profile_module, ExecModel};

    fn speedup(m: &Module, model: ExecModel, config: &str) -> f64 {
        let analysis = analyze_module(m);
        let (p, _) = profile_module(m, &analysis, &[], MachineConfig::default()).unwrap();
        evaluate(&p, model, config.parse().unwrap()).speedup
    }

    #[test]
    fn libquantum_parallelizes_everywhere() {
        let m = libquantum(Scale::Test);
        let s = speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn2");
        assert!(s > 6.0, "libquantum is the parallel outlier: {s}");
    }

    #[test]
    fn mcf_2006_prefers_pdoall_over_helix() {
        let m = mcf(Scale::Test);
        let pd = speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn2");
        let hx = speedup(&m, ExecModel::Helix, "reduc1-dep1-fn2");
        assert!(
            pd > hx,
            "429.mcf: best PDOALL ({pd}) must beat best HELIX ({hx}) as in Fig. 4"
        );
    }

    #[test]
    fn hmmer_loves_helix() {
        let m = hmmer(Scale::Test);
        let hx = speedup(&m, ExecModel::Helix, "reduc1-dep1-fn2");
        let pd = speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn2");
        assert!(hx > 3.0, "hmmer HELIX should be strong: {hx}");
        assert!(hx > pd, "hmmer prefers HELIX: {hx} vs {pd}");
    }
}
