//! SPEC CINT2000 stand-ins (non-numeric).
//!
//! Dependence recipes follow each benchmark's published character: LZ
//! window chains for `gzip`/`bzip2`, network-simplex pointer chasing for
//! `mcf`, interpreter dispatch chains for `perlbmk`, branchy search with
//! hash tables for `crafty`/`twolf`, etc. Frequent register and memory
//! LCDs plus calls-in-loops dominate — the suite the paper finds hardest.

use crate::kernels::int_filler;
use crate::patterns::*;
use crate::{build_program_glued, Benchmark, Glue, Scale, SuiteId};
use lp_ir::Module;

fn bench(name: &'static str, build: fn(Scale) -> Module) -> Benchmark {
    Benchmark {
        name,
        suite: SuiteId::Cint2000,
        build,
    }
}

/// Per-suite glue weights (see `lp_suite::Glue` and DESIGN.md §4):
/// calibrates the frequent-memory-LCD fraction of every benchmark.
fn glue(n: i64) -> Option<Glue> {
    Some(Glue {
        serial_n: n * 2 / 5,
        accum_n: n * 7 / 10,
        lcg_n: 0,
        work: 14,
    })
}

/// The CINT2000 roster.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        bench("164.gzip", gzip),
        bench("175.vpr", vpr),
        bench("176.gcc", gcc),
        bench("181.mcf", mcf),
        bench("186.crafty", crafty),
        bench("197.parser", parser),
        bench("252.eon", eon),
        bench("253.perlbmk", perlbmk),
        bench("254.gap", gap),
        bench("255.vortex", vortex),
        bench("256.bzip2", bzip2),
        bench("300.twolf", twolf),
    ]
}

/// LZ compression: a window-update chain (frequent memory LCD, early
/// producer), Huffman symbol counting (infrequent histogram conflicts),
/// and a CRC-like reduction.
fn gzip(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "164.gzip",
        glue(n),
        &[
            ("window", n as u64 + 4),
            ("hist", 1024),
            ("input", n as u64 + 4),
            ("cell", 2),
            ("scratch", n as u64 + 4),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_lcg(fb, g[2], nn, 0x6210, 255); // input bytes (serial init)
            accum_cell(fb, g[3], g[4], nn, 10); // window head pointer updates
            dp_chain(fb, g[0], nn, 6); // match-length chain
            histogram(fb, g[1], nn, 1023, 3); // symbol counts
            let crc = vector_sum_i64(fb, g[2], nn, 2);
            fb.ret(Some(crc));
        },
    )
}

/// FPGA place & route: simulated-annealing swaps driven by a carried RNG
/// (unpredictable register LCD) plus cost re-evaluation (reduction).
fn vpr(scale: Scale) -> Module {
    let n = scale.n(192);
    build_program_glued(
        "175.vpr",
        glue(n),
        &[
            ("grid", 2048),
            ("cost", n as u64 + 2),
            ("scratch", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            let rng = fill_lcg(fb, g[1], nn, 0x7717, 2047); // proposal stream
            accum_cell(fb, g[0], g[2], nn, 14); // accepted-swap bookkeeping
            let cost = vector_sum_i64(fb, g[1], nn, 4); // wiring cost
            let chk = fb.xor(rng, cost);
            fb.ret(Some(chk));
        },
    )
}

/// Compiler: many short, branchy loops over IR with helper calls and a
/// DP chain (dataflow fixpoint). Poor everywhere; HELIX helps a bit.
fn gcc(scale: Scale) -> Module {
    let n = scale.n(160);
    build_program_glued(
        "176.gcc",
        glue(n),
        &[("ir", n as u64 + 4), ("table", 2048), ("out", n as u64 + 4)],
        |m, fb, g| {
            let scratch = make_scratch_fn(m, "fold_insn");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 97, 13);
            map_call(fb, scratch, g[0], g[2], nn); // per-insn folding
            dp_chain(fb, g[0], nn, 4); // dataflow fixpoint sweep
            histogram(fb, g[1], nn, 2047, 3); // symbol table touches
            let chk = max_i64(fb, g[2], nn);
            fb.ret(Some(chk));
        },
    )
}

/// Network simplex: dominated by pointer chasing over arcs (frequent,
/// unpredictable register LCD with an early producer — HELIX territory).
fn mcf(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "181.mcf",
        glue(n),
        &[("arcs", n as u64 + 2), ("flow", n as u64 + 2)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine_perm(fb, g[0], nn, 61, 17); // scrambled arc list
            let walk = pointer_chase(fb, g[0], nn, 12); // simplex pivots
            let chase2 = pointer_chase(fb, g[0], nn, 12);
            let flows = vector_sum_i64(fb, g[1], nn, 2);
            let t = fb.xor(walk, chase2);
            let chk = fb.xor(t, flows);
            fb.ret(Some(chk));
        },
    )
}

/// Chess search: branchy evaluation with hash-table probes (infrequent
/// conflicts) and a shared node counter.
fn crafty(scale: Scale) -> Module {
    let n = scale.n(192);
    build_program_glued(
        "186.crafty",
        glue(n),
        &[
            ("tt", 8192),
            ("nodes", 2),
            ("board", n as u64 + 2),
            ("scratch", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_affine(fb, g[2], nn, 2654435761, 99);
            histogram(fb, g[0], nn, 8191, 8); // transposition-table hits
            accum_cell(fb, g[1], g[3], nn, 12); // node counter
            let best = max_i64(fb, g[2], nn);
            fb.ret(Some(best));
        },
    )
}

/// Link-grammar parser: linked-list chasing plus per-word helper calls.
fn parser(scale: Scale) -> Module {
    let n = scale.n(192);
    build_program_glued(
        "197.parser",
        glue(n),
        &[
            ("links", n as u64 + 2),
            ("words", n as u64 + 2),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let helper = make_scratch_fn(m, "match_word");
            let nn = fb.const_i64(n);
            fill_affine_perm(fb, g[0], nn, 37, 5);
            let walk = pointer_chase(fb, g[0], nn, 8); // dictionary chase
            fill_affine(fb, g[1], nn, 31, 7);
            map_call(fb, helper, g[1], g[2], nn); // per-word matching
            let s = vector_sum_i64(fb, g[2], nn, 2);
            let chk = fb.xor(walk, s);
            fb.ret(Some(chk));
        },
    )
}

/// Probabilistic ray tracer (C++): the most numeric of the INT suite —
/// pure-math per-ray work, mostly independent iterations.
fn eon(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "252.eon",
        glue(n),
        &[("rays", n as u64 + 2), ("img", n as u64 + 2)],
        |m, fb, g| {
            let shade = make_pure_math_fn(m, "shade");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 1299709, 3);
            map_call(fb, shade, g[0], g[1], nn); // per-ray shading (pure)
            let s = vector_sum_i64(fb, g[1], nn, 6);
            fb.ret(Some(s));
        },
    )
}

/// Perl interpreter: opcode dispatch is a serial DP chain through memory,
/// with occasional I/O — the classic worst case.
fn perlbmk(scale: Scale) -> Module {
    let n = scale.n(192);
    build_program_glued(
        "253.perlbmk",
        glue(n),
        &[("ops", n as u64 + 4), ("pad", n as u64 + 4)],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_lcg(fb, g[0], nn, 0x9e11, 511); // bytecode stream
            dp_chain(fb, g[1], nn, 10); // interpreter state threading
            let io = print_every(fb, g[0], nn, 64); // occasional output
            fb.ret(Some(io));
        },
    )
}

/// Group theory (GAP): big-integer accumulation into shared cells plus
/// table scans.
fn gap(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "254.gap",
        glue(n),
        &[
            ("limbs", 2),
            ("tab", n as u64 + 2),
            ("scratch", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            accum_cell(fb, g[0], g[2], nn, 16); // carry propagation cell
            fill_affine(fb, g[1], nn, 7919, 1);
            let s = vector_sum_i64(fb, g[1], nn, 4);
            let mx = max_i64(fb, g[1], nn);
            let chk = fb.xor(s, mx);
            fb.ret(Some(chk));
        },
    )
}

/// OO database: object-method calls in loops (thread-safe helpers) plus
/// index-structure histogram updates.
fn vortex(scale: Scale) -> Module {
    let n = scale.n(192);
    build_program_glued(
        "255.vortex",
        glue(n),
        &[
            ("objs", n as u64 + 2),
            ("index", 4096),
            ("out", n as u64 + 2),
        ],
        |m, fb, g| {
            let method = make_scratch_fn(m, "obj_update");
            let nn = fb.const_i64(n);
            fill_affine(fb, g[0], nn, 104729, 11);
            map_call(fb, method, g[0], g[2], nn);
            histogram(fb, g[1], nn, 4095, 6);
            let s = vector_sum_i64(fb, g[2], nn, 2);
            fb.ret(Some(s));
        },
    )
}

/// Block-sorting compression: counting sort passes (predictable walks)
/// and a work-function chain.
fn bzip2(scale: Scale) -> Module {
    let n = scale.n(256);
    build_program_glued(
        "256.bzip2",
        glue(n),
        &[
            ("block", n as u64 + 4),
            ("counts", n as u64 + 4),
            ("bwt", n as u64 + 4),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            fill_mostly_const(fb, g[1], nn, 1, 9, 32); // run lengths
            let ptr = predictable_walk(fb, g[1], nn, 8); // cumulative counts
            fill_lcg(fb, g[0], nn, 0xb212, 255); // block bytes
            dp_chain(fb, g[2], nn, 5); // BWT rotation chain
            let s = vector_sum_i64(fb, g[0], nn, 2);
            let chk = fb.xor(ptr, s);
            fb.ret(Some(chk));
        },
    )
}

/// Standard-cell placement: annealing moves (carried RNG) with a shared
/// cost cell — frequent LCDs with early producers.
fn twolf(scale: Scale) -> Module {
    let n = scale.n(224);
    build_program_glued(
        "300.twolf",
        glue(n),
        &[
            ("cells", n as u64 + 2),
            ("cost", 2),
            ("scratch", n as u64 + 2),
        ],
        |_m, fb, g| {
            let nn = fb.const_i64(n);
            let rng = fill_lcg(fb, g[0], nn, 0x2f01, 1023); // move proposals
            accum_cell(fb, g[1], g[2], nn, 18); // global cost update
            let s = vector_sum_i64(fb, g[0], nn, 3);
            let mixed = int_filler(fb, s, 4);
            let chk = fb.xor(rng, mixed);
            fb.ret(Some(chk));
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_runtime::{evaluate, profile_module, ExecModel};

    fn speedup(m: &Module, model: ExecModel, config: &str) -> f64 {
        let analysis = analyze_module(m);
        let (p, _) = profile_module(m, &analysis, &[], MachineConfig::default()).unwrap();
        evaluate(&p, model, config.parse().unwrap()).speedup
    }

    #[test]
    fn mcf_is_helix_dominated() {
        let m = mcf(Scale::Test);
        let doall = speedup(&m, ExecModel::Doall, "reduc0-dep0-fn0");
        let helix = speedup(&m, ExecModel::Helix, "reduc1-dep1-fn2");
        assert!(doall < 1.6, "mcf DOALL should be near serial: {doall}");
        assert!(helix > 2.0, "mcf best HELIX should gain: {helix}");
    }

    #[test]
    fn perlbmk_resists_everything() {
        let m = perlbmk(Scale::Test);
        let helix = speedup(&m, ExecModel::Helix, "reduc1-dep1-fn2");
        assert!(helix < 4.0, "perl-like chains stay hard: {helix}");
    }

    #[test]
    fn eon_unlocks_with_pure_calls() {
        let m = eon(Scale::Test);
        let fn0 = speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn0");
        let fn2 = speedup(&m, ExecModel::PartialDoall, "reduc1-dep2-fn2");
        assert!(
            fn2 > fn0 * 1.15,
            "eon gains from call parallelization: {fn0} -> {fn2}"
        );
    }
}
