//! # lp-suite — synthetic SPEC CPU2000/2006 and EEMBC stand-ins
//!
//! SPEC and EEMBC are proprietary, so this crate supplies one synthetic
//! kernel per benchmark the paper evaluates, hand-built in `lp-ir` to
//! mimic that benchmark's published loop and dependence character (see
//! DESIGN.md §2 for the substitution argument). The limit study's *shape*
//! — which configuration wins, where INT and FP diverge, which benchmarks
//! prefer PDOALL over HELIX — is driven by the mix of LCD categories,
//! trip counts, and call structure, which the recipes here reproduce:
//!
//! - non-numeric (CINT) programs lean on pointer chasing, DP chains,
//!   shared-cell accumulation and calls inside loops — frequent register
//!   and memory LCDs plus structural hazards;
//! - numeric (CFP, EEMBC) programs lean on stencils, SAXPY, mat-vec and
//!   reductions — computable IVs, disjoint memory, reduction LCDs;
//! - a few benchmarks (`429.mcf`, `179.art`, `450.soplex`,
//!   `482.sphinx3`) carry highly *predictable* non-computable LCDs with
//!   late producers, so best-PDOALL (`reduc1-dep2-fn2`) beats best-HELIX
//!   (`reduc1-dep1-fn2`) on them, as in the paper's Fig. 4.
//!
//! Use [`registry`] to enumerate everything, [`Benchmark::build`] to get
//! a verified [`Module`].

pub mod cfp2000;
pub mod cfp2006;
pub mod cint2000;
pub mod cint2006;
pub mod eembc;
pub mod kernels;
pub mod patterns;

use lp_ir::builder::FunctionBuilder;
use lp_ir::{Global, Module, Type, ValueId};

/// Benchmark suite grouping (paper: numeric vs non-numeric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteId {
    /// SPEC CINT2000 (non-numeric).
    Cint2000,
    /// SPEC CFP2000 (numeric).
    Cfp2000,
    /// SPEC CINT2006 (non-numeric).
    Cint2006,
    /// SPEC CFP2006 (numeric).
    Cfp2006,
    /// EEMBC (numeric/embedded).
    Eembc,
}

impl SuiteId {
    /// All five suites.
    #[must_use]
    pub fn all() -> [SuiteId; 5] {
        [
            SuiteId::Cint2000,
            SuiteId::Cfp2000,
            SuiteId::Cint2006,
            SuiteId::Cfp2006,
            SuiteId::Eembc,
        ]
    }

    /// `true` for the non-numeric (integer) suites.
    #[must_use]
    pub fn is_numeric(self) -> bool {
        !matches!(self, SuiteId::Cint2000 | SuiteId::Cint2006)
    }

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SuiteId::Cint2000 => "cint2000",
            SuiteId::Cfp2000 => "cfp2000",
            SuiteId::Cint2006 => "cint2006",
            SuiteId::Cfp2006 => "cfp2006",
            SuiteId::Eembc => "eembc",
        }
    }
}

impl std::fmt::Display for SuiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Input-size scaling for a benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Tiny inputs for unit tests (seconds for the whole suite).
    Test,
    /// Small inputs for quick sweeps.
    Small,
    /// The reference size used by the experiment harness.
    #[default]
    Default,
}

impl Scale {
    /// Multiplier applied to base trip counts.
    #[must_use]
    pub fn factor(self) -> i64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 2,
            Scale::Default => 6,
        }
    }

    /// Scales a base trip count.
    #[must_use]
    pub fn n(self, base: i64) -> i64 {
        base * self.factor()
    }
}

/// A registered benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Canonical name (e.g. `429.mcf`).
    pub name: &'static str,
    /// Owning suite.
    pub suite: SuiteId,
    /// Module constructor.
    pub build: fn(Scale) -> Module,
}

impl Benchmark {
    /// Builds the benchmark at the given scale.
    #[must_use]
    pub fn build(&self, scale: Scale) -> Module {
        (self.build)(scale)
    }
}

/// Every benchmark in every suite.
#[must_use]
pub fn registry() -> Vec<Benchmark> {
    let mut out = Vec::new();
    out.extend(cint2000::benchmarks());
    out.extend(cfp2000::benchmarks());
    out.extend(cint2006::benchmarks());
    out.extend(cfp2006::benchmarks());
    out.extend(eembc::benchmarks());
    out
}

/// Benchmarks of one suite.
#[must_use]
pub fn suite(id: SuiteId) -> Vec<Benchmark> {
    registry().into_iter().filter(|b| b.suite == id).collect()
}

/// Finds a benchmark by name.
#[must_use]
pub fn find(name: &str) -> Option<Benchmark> {
    registry().into_iter().find(|b| b.name == name)
}

/// Suite-level "glue" code injected into every benchmark before its
/// recipe: a serial DP chain (frequent memory LCD with a *late*
/// producer — resists every model) and a shared-cell accumulation
/// (frequent memory LCD with an *early* producer — HELIX-friendly,
/// PDOALL-resistant). Real programs carry exactly this kind of
/// driver/bookkeeping code; its weight per suite calibrates the
/// dependence mix (see DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Glue {
    /// Trip count of the serial DP chain (0 disables it).
    pub serial_n: i64,
    /// Trip count of the shared-cell accumulation (0 disables it).
    pub accum_n: i64,
    /// Trip count of a carried-LCG fill — an *unpredictable*
    /// non-computable register LCD with an early producer: `dep2` cannot
    /// remove it, `dep3` and HELIX `dep1` can (0 disables it).
    pub lcg_n: i64,
    /// Filler work per glue iteration.
    pub work: u32,
}

/// Shared program-construction harness for the recipe files: creates the
/// module and zeroed globals, optionally emits the suite [`Glue`], hands
/// `main`'s builder plus the global base pointers to the recipe,
/// finalizes and verifies.
///
/// The recipe must terminate `main` (usually `fb.ret(Some(checksum))`).
///
/// # Panics
/// Panics if the recipe produces invalid IR — recipes are static program
/// text, so this is a programmer error, caught by the suite's tests.
pub(crate) fn build_program_glued(
    name: &str,
    glue: Option<Glue>,
    globals: &[(&str, u64)],
    recipe: impl FnOnce(&mut Module, &mut FunctionBuilder, &[ValueId]),
) -> Module {
    let mut module = Module::new(name);
    let glue_globals = glue.map(|g| {
        (
            module.add_global(Global::zeroed("_glue_dp", g.serial_n.max(12) as u64 + 4)),
            module.add_global(Global::zeroed("_glue_cell", 4)),
            module.add_global(Global::zeroed(
                "_glue_scr",
                g.accum_n.max(g.lcg_n).max(12) as u64 + 4,
            )),
        )
    });
    let gids: Vec<_> = globals
        .iter()
        .map(|(gname, words)| module.add_global(Global::zeroed(*gname, *words)))
        .collect();
    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    if let (Some(g), Some((dp, cell, scr))) = (glue, glue_globals) {
        let dp = fb.global_addr(dp);
        let cell = fb.global_addr(cell);
        let scr = fb.global_addr(scr);
        if g.serial_n > 0 {
            // Floor at 12 iterations so tiny benchmarks still exhibit a
            // *frequent* (>50% of iterations) memory LCD.
            let n = fb.const_i64(g.serial_n.max(12));
            patterns::dp_chain(&mut fb, dp, n, g.work);
        }
        if g.accum_n > 0 {
            let n = fb.const_i64(g.accum_n.max(12));
            let one = fb.const_i64(1);
            let cell_b = fb.gep(cell, one, 8, 0);
            patterns::accum_cell_pair(&mut fb, cell, cell_b, scr, n, g.work);
        }
        if g.lcg_n > 0 {
            let n = fb.const_i64(g.lcg_n);
            glue_lcg(&mut fb, scr, n, g.work);
        }
    }
    let bases: Vec<ValueId> = gids.iter().map(|g| fb.global_addr(*g)).collect();
    recipe(&mut module, &mut fb, &bases);
    module.add_function(fb.finish().expect("benchmark main must be complete"));
    lp_ir::verify_module(&module).expect("benchmark module must verify");
    module
}

/// A carried-LCG loop with `work` filler after the early producer; the
/// glue's unpredictable-register-LCD component.
fn glue_lcg(fb: &mut FunctionBuilder, scr: ValueId, n: ValueId, work: u32) {
    let seed = fb.const_i64(0x00C0_FFEE);
    kernels::counted_loop(fb, n, &[(Type::I64, seed)], |fb, i, phis| {
        let x2 = kernels::lcg_step(fb, phis[0]); // early producer
        let w = kernels::int_filler(fb, x2, work);
        kernels::store_elem(fb, scr, i, w);
        vec![x2]
    });
}

/// [`build_program_glued`] without glue (tests and bare kernels).
#[allow(dead_code)]
pub(crate) fn build_program(
    name: &str,
    globals: &[(&str, u64)],
    recipe: impl FnOnce(&mut Module, &mut FunctionBuilder, &[ValueId]),
) -> Module {
    build_program_glued(name, None, globals, recipe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_interp::{Engine, Exec, ExecUnit};

    #[test]
    fn registry_is_complete_and_unique() {
        let all = registry();
        assert!(
            all.len() >= 55,
            "expected >= 55 benchmarks, got {}",
            all.len()
        );
        let mut names = std::collections::HashSet::new();
        for b in &all {
            assert!(names.insert(b.name), "duplicate benchmark {}", b.name);
        }
        assert_eq!(suite(SuiteId::Cint2000).len(), 12);
        assert_eq!(suite(SuiteId::Cint2006).len(), 12);
        assert_eq!(suite(SuiteId::Cfp2000).len(), 14);
        assert_eq!(suite(SuiteId::Cfp2006).len(), 7);
        assert_eq!(suite(SuiteId::Eembc).len(), 10);
    }

    #[test]
    fn find_works() {
        assert!(find("429.mcf").is_some());
        assert!(find("no.such").is_none());
    }

    #[test]
    fn every_benchmark_builds_verifies_and_runs_at_test_scale() {
        for b in registry() {
            let m = b.build(Scale::Test);
            lp_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("{} fails verification: {e}", b.name));
            lp_analysis::verify_ssa(&m)
                .unwrap_or_else(|e| panic!("{} fails SSA check: {e}", b.name));
            // Both engines must agree on every suite program (the tree
            // walk is spelled out — `ExecUnit::new` defaults to bc).
            let tree = ExecUnit::with_engine(&m, Engine::Tree);
            let r = Exec::new(&tree)
                .run(&[])
                .unwrap_or_else(|e| panic!("{} traps: {e}", b.name))
                .result;
            assert!(r.cost > 1000, "{} does almost nothing: {}", b.name, r.cost);
            let bc = ExecUnit::with_engine(&m, Engine::Bc);
            let rb = Exec::new(&bc)
                .run(&[])
                .unwrap_or_else(|e| panic!("{} traps under bc: {e}", b.name))
                .result;
            assert_eq!(r, rb, "{} diverges between engines", b.name);
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        for b in [find("164.gzip").unwrap(), find("470.lbm").unwrap()] {
            let m = b.build(Scale::Test);
            let unit = ExecUnit::new(&m);
            let run = || Exec::new(&unit).run(&[]).unwrap().result;
            let r1 = run();
            let r2 = run();
            assert_eq!(r1.ret, r2.ret);
            assert_eq!(r1.cost, r2.cost);
        }
    }

    #[test]
    fn scales_are_monotonic() {
        let b = find("171.swim").unwrap();
        let cost = |s: Scale| {
            let m = b.build(s);
            let unit = ExecUnit::new(&m);
            Exec::new(&unit).run(&[]).unwrap().result.cost
        };
        let t = cost(Scale::Test);
        let d = cost(Scale::Default);
        assert!(d > t, "Default ({d}) must exceed Test ({t})");
    }

    #[test]
    fn suite_labels() {
        assert_eq!(SuiteId::Cint2000.label(), "cint2000");
        assert!(!SuiteId::Cint2006.is_numeric());
        assert!(SuiteId::Eembc.is_numeric());
        assert_eq!(SuiteId::all().len(), 5);
    }
}
