//! Low-level loop-construction helpers used by every synthetic benchmark.

use lp_ir::builder::FunctionBuilder;
use lp_ir::{BlockId, IcmpPred, Type, ValueId};

/// Builds a canonical counted loop `for i in 0..n` with extra
/// loop-carried values.
///
/// `carried` lists `(type, initial value)` pairs; `body` receives the
/// builder, the induction variable, and the carried phis, and must return
/// one update value per carried phi. The body may create additional
/// blocks as long as control returns to the block it leaves current (that
/// block becomes the latch). After the call the builder sits in the exit
/// block; the returned values are the carried phis (their values upon
/// loop exit).
///
/// # Panics
/// Panics if `body` returns the wrong number of updates.
pub fn counted_loop<F>(
    fb: &mut FunctionBuilder,
    n: ValueId,
    carried: &[(Type, ValueId)],
    body: F,
) -> Vec<ValueId>
where
    F: FnOnce(&mut FunctionBuilder, ValueId, &[ValueId]) -> Vec<ValueId>,
{
    let zero = fb.const_i64(0);
    let one = fb.const_i64(1);
    let pre = fb.current_block();
    let header = fb.fresh_block("header");
    let body_blk = fb.fresh_block("body");
    let exit = fb.fresh_block("exit");
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Type::I64);
    let phis: Vec<ValueId> = carried.iter().map(|&(ty, _)| fb.phi(ty)).collect();
    let cond = fb.icmp(IcmpPred::Slt, i, n);
    fb.cond_br(cond, body_blk, exit);
    fb.switch_to(body_blk);
    let updates = body(fb, i, &phis);
    assert_eq!(
        updates.len(),
        carried.len(),
        "body must return one update per carried value"
    );
    let i2 = fb.add(i, one);
    let latch = fb.current_block();
    fb.add_phi_incoming(i, pre, zero);
    fb.add_phi_incoming(i, latch, i2);
    for ((phi, &(_, init)), update) in phis.iter().zip(carried).zip(&updates) {
        fb.add_phi_incoming(*phi, pre, init);
        fb.add_phi_incoming(*phi, latch, *update);
    }
    fb.br(header);
    fb.switch_to(exit);
    phis
}

/// Builds a `while cond` loop over carried values. `cond` runs in the
/// header (after the phis) and must produce an `i1`; `body` returns the
/// updates. Returns the carried phis with the builder in the exit block.
///
/// # Panics
/// Panics if `body` returns the wrong number of updates.
pub fn while_loop<C, F>(
    fb: &mut FunctionBuilder,
    carried: &[(Type, ValueId)],
    cond: C,
    body: F,
) -> Vec<ValueId>
where
    C: FnOnce(&mut FunctionBuilder, &[ValueId]) -> ValueId,
    F: FnOnce(&mut FunctionBuilder, &[ValueId]) -> Vec<ValueId>,
{
    let pre = fb.current_block();
    let header = fb.fresh_block("while_header");
    let body_blk = fb.fresh_block("while_body");
    let exit = fb.fresh_block("while_exit");
    fb.br(header);
    fb.switch_to(header);
    let phis: Vec<ValueId> = carried.iter().map(|&(ty, _)| fb.phi(ty)).collect();
    let c = cond(fb, &phis);
    fb.cond_br(c, body_blk, exit);
    fb.switch_to(body_blk);
    let updates = body(fb, &phis);
    assert_eq!(
        updates.len(),
        carried.len(),
        "body must return one update per carried value"
    );
    let latch = fb.current_block();
    for ((phi, &(_, init)), update) in phis.iter().zip(carried).zip(&updates) {
        fb.add_phi_incoming(*phi, pre, init);
        fb.add_phi_incoming(*phi, latch, *update);
    }
    fb.br(header);
    fb.switch_to(exit);
    phis
}

/// Emits an `if cond { then } else { else_ }` diamond that merges one
/// value. Returns the merged value; the builder ends in the join block.
pub fn if_else<T, E>(
    fb: &mut FunctionBuilder,
    cond: ValueId,
    ty: Type,
    then_arm: T,
    else_arm: E,
) -> ValueId
where
    T: FnOnce(&mut FunctionBuilder) -> ValueId,
    E: FnOnce(&mut FunctionBuilder) -> ValueId,
{
    let then_blk = fb.fresh_block("then");
    let else_blk = fb.fresh_block("else");
    let join = fb.fresh_block("join");
    fb.cond_br(cond, then_blk, else_blk);
    fb.switch_to(then_blk);
    let tv = then_arm(fb);
    let t_end = fb.current_block();
    fb.br(join);
    fb.switch_to(else_blk);
    let ev = else_arm(fb);
    let e_end = fb.current_block();
    fb.br(join);
    fb.switch_to(join);
    let phi = fb.phi(ty);
    fb.add_phi_incoming(phi, t_end, tv);
    fb.add_phi_incoming(phi, e_end, ev);
    phi
}

/// One step of a 64-bit LCG: `x' = x * 6364136223846793005 +
/// 1442695040888963407`. Cheap pseudo-randomness inside generated code.
pub fn lcg_step(fb: &mut FunctionBuilder, x: ValueId) -> ValueId {
    let a = fb.const_i64(6364136223846793005u64 as i64);
    let c = fb.const_i64(1442695040888963407u64 as i64);
    let t = fb.mul(x, a);
    fb.add(t, c)
}

/// Derives a table index in `0..(mask+1)` from an LCG state: `(x >> 17) &
/// mask`. `mask + 1` must be a power of two.
pub fn lcg_index(fb: &mut FunctionBuilder, x: ValueId, mask: i64) -> ValueId {
    let seventeen = fb.const_i64(17);
    let m = fb.const_i64(mask);
    let sh = fb.ashr(x, seventeen);
    fb.and(sh, m)
}

/// Loads `a[i]` from a word array at `base`.
pub fn load_elem(fb: &mut FunctionBuilder, ty: Type, base: ValueId, i: ValueId) -> ValueId {
    let addr = fb.gep(base, i, 8, 0);
    fb.load(ty, addr)
}

/// Stores `v` to `a[i]` of a word array at `base`.
pub fn store_elem(fb: &mut FunctionBuilder, base: ValueId, i: ValueId, v: ValueId) {
    let addr = fb.gep(base, i, 8, 0);
    fb.store(v, addr);
}

/// Emits `amount` units of integer register-only filler work derived from
/// `seed`, returning the folded result. Keeps iteration bodies fat enough
/// that model differences (sync deltas, restarts) are visible.
pub fn int_filler(fb: &mut FunctionBuilder, seed: ValueId, amount: u32) -> ValueId {
    let mut acc = seed;
    let k1 = fb.const_i64(0x9E37_79B9_7F4A_7C15u64 as i64);
    let k2 = fb.const_i64(0xBF58_476D_1CE4_E5B9u64 as i64);
    for round in 0..amount {
        if round % 2 == 0 {
            acc = fb.mul(acc, k1);
            acc = fb.xor(acc, k2);
        } else {
            acc = fb.add(acc, k2);
            let sh = fb.const_i64(13);
            acc = fb.ashr(acc, sh);
            acc = fb.xor(acc, k1);
        }
    }
    acc
}

/// Emits `amount` units of floating-point filler work.
pub fn float_filler(fb: &mut FunctionBuilder, seed: ValueId, amount: u32) -> ValueId {
    let mut acc = seed;
    let k1 = fb.const_f64(1.000_000_11);
    let k2 = fb.const_f64(0.999_999_43);
    for round in 0..amount {
        if round % 2 == 0 {
            acc = fb.fmul(acc, k1);
        } else {
            acc = fb.fmul(acc, k2);
            acc = fb.fadd(acc, k1);
        }
    }
    acc
}

/// Returns the entry-block id (just a readable alias at call sites).
#[must_use]
pub fn entry() -> BlockId {
    BlockId::ENTRY
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_interp::{Exec, ExecUnit, Value};
    use lp_ir::{IcmpPred, Module};

    fn run(m: &Module) -> Value {
        let unit = ExecUnit::new(m);
        Exec::new(&unit).run(&[]).unwrap().result.ret
    }

    #[test]
    fn counted_loop_sums() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(10);
        let zero = fb.const_i64(0);
        let phis = counted_loop(&mut fb, n, &[(Type::I64, zero)], |fb, i, phis| {
            vec![fb.add(phis[0], i)]
        });
        fb.ret(Some(phis[0]));
        m.add_function(fb.finish().unwrap());
        lp_ir::verify_module(&m).unwrap();
        assert_eq!(run(&m), Value::I(45));
    }

    #[test]
    fn counted_loop_zero_trip() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(0);
        let seven = fb.const_i64(7);
        let phis = counted_loop(&mut fb, n, &[(Type::I64, seven)], |fb, i, phis| {
            vec![fb.add(phis[0], i)]
        });
        fb.ret(Some(phis[0]));
        m.add_function(fb.finish().unwrap());
        assert_eq!(run(&m), Value::I(7), "zero-trip loop keeps the init");
    }

    #[test]
    fn nested_counted_loops() {
        // sum_{i<4} sum_{j<3} 1 = 12
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(4);
        let inner_n = fb.const_i64(3);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let outer = counted_loop(&mut fb, n, &[(Type::I64, zero)], |fb, _i, phis| {
            let inner = counted_loop(fb, inner_n, &[(Type::I64, phis[0])], |fb, _j, ph| {
                vec![fb.add(ph[0], one)]
            });
            vec![inner[0]]
        });
        fb.ret(Some(outer[0]));
        m.add_function(fb.finish().unwrap());
        lp_ir::verify_module(&m).unwrap();
        assert_eq!(run(&m), Value::I(12));
    }

    #[test]
    fn while_loop_counts_down() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let start = fb.const_i64(5);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let phis = while_loop(
            &mut fb,
            &[(Type::I64, start), (Type::I64, zero)],
            |fb, phis| fb.icmp(IcmpPred::Sgt, phis[0], zero),
            |fb, phis| {
                let next = fb.sub(phis[0], one);
                let count = fb.add(phis[1], one);
                vec![next, count]
            },
        );
        fb.ret(Some(phis[1]));
        m.add_function(fb.finish().unwrap());
        assert_eq!(run(&m), Value::I(5));
    }

    #[test]
    fn if_else_merges() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[Type::I64], Type::I64);
        let x = fb.param(0);
        let ten = fb.const_i64(10);
        let c = fb.icmp(IcmpPred::Slt, x, ten);
        let one = fb.const_i64(1);
        let two = fb.const_i64(2);
        let v = if_else(&mut fb, c, Type::I64, |_| one, |_| two);
        fb.ret(Some(v));
        m.add_function(fb.finish().unwrap());
        let unit = ExecUnit::new(&m);
        let r = Exec::new(&unit).run(&[Value::I(3)]).unwrap().result;
        assert_eq!(r.ret, Value::I(1));
        let r = Exec::new(&unit).run(&[Value::I(30)]).unwrap().result;
        assert_eq!(r.ret, Value::I(2));
    }

    #[test]
    fn lcg_is_well_distributed_enough() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(64);
        let seed = fb.const_i64(12345);
        let zero = fb.const_i64(0);
        // Count how many of 64 draws land in the upper half of a 256-entry
        // table: should be near 32.
        let phis = counted_loop(
            &mut fb,
            n,
            &[(Type::I64, seed), (Type::I64, zero)],
            |fb, _i, phis| {
                let x2 = lcg_step(fb, phis[0]);
                let idx = lcg_index(fb, x2, 255);
                let mid = fb.const_i64(128);
                let hi = fb.icmp(IcmpPred::Sge, idx, mid);
                let hi_i = fb.cast(lp_ir::CastKind::BoolToInt, hi);
                let cnt = fb.add(phis[1], hi_i);
                vec![x2, cnt]
            },
        );
        fb.ret(Some(phis[1]));
        m.add_function(fb.finish().unwrap());
        let Value::I(count) = run(&m) else { panic!() };
        assert!(
            (16..=48).contains(&count),
            "suspicious LCG distribution: {count}"
        );
    }

    #[test]
    fn fillers_produce_work() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let s = fb.const_i64(3);
        let v = int_filler(&mut fb, s, 8);
        let fs = fb.const_f64(1.5);
        let fv = float_filler(&mut fb, fs, 8);
        let fvi = fb.fptosi(fv);
        let r = fb.xor(v, fvi);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        lp_ir::verify_module(&m).unwrap();
        let _ = run(&m);
    }
}
