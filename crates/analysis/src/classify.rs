//! Register-LCD categorization (paper Table I, "True Register RAW").
//!
//! Combines scalar evolution and reduction detection into the three-way
//! classification the run-time component consumes:
//!
//! - **Computable** (IVs / MIVs): generated thread-locally from the
//!   iteration index — never a parallelization constraint;
//! - **Reduction accumulators**: decoupled from the loop's critical path
//!   under `reduc1`, otherwise treated as non-computable;
//! - **Non-computable**: the remaining register LCDs, whose handling is
//!   decided at run time by the `dep0..dep3` flags (value prediction,
//!   lowering to memory, or serialization).

use crate::loops::LoopForest;
use crate::reduction::detect_reduction;
use crate::scev::{ScevClass, ScevInfo};
use lp_ir::{Function, Inst, ValueId, ValueKind};

/// The reduction opcode recognized for an accumulator LCD.
pub type ReductionKind = lp_ir::BinOp;

/// Classification of one register LCD (loop-header phi).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcdClass {
    /// Compile-time computable scalar evolution (IV / MIV).
    Computable(ScevClass),
    /// Reduction accumulator with the given opcode.
    Reduction(ReductionKind),
    /// Neither computable nor a recognizable reduction.
    NonComputable,
}

impl LcdClass {
    /// Returns `true` if this LCD never constrains parallelization,
    /// regardless of configuration flags.
    #[must_use]
    pub fn is_computable(self) -> bool {
        matches!(self, LcdClass::Computable(_))
    }

    /// Returns `true` for reduction accumulators.
    #[must_use]
    pub fn is_reduction(self) -> bool {
        matches!(self, LcdClass::Reduction(_))
    }
}

/// Register-LCD classification for one loop.
#[derive(Debug, Clone)]
pub struct LoopLcds {
    /// Header phis in block order with their classes.
    pub phis: Vec<(ValueId, LcdClass)>,
}

impl LoopLcds {
    /// Non-computable phis (the set the `dep` flags act upon).
    pub fn non_computable(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.phis
            .iter()
            .filter(|(_, c)| *c == LcdClass::NonComputable)
            .map(|(v, _)| *v)
    }

    /// Reduction phis (the set the `reduc` flags act upon).
    pub fn reductions(&self) -> impl Iterator<Item = (ValueId, ReductionKind)> + '_ {
        self.phis.iter().filter_map(|(v, c)| match c {
            LcdClass::Reduction(op) => Some((*v, *op)),
            _ => None,
        })
    }

    /// Class of a specific phi, if it is a header phi of this loop.
    #[must_use]
    pub fn class_of(&self, phi: ValueId) -> Option<LcdClass> {
        self.phis.iter().find(|(v, _)| *v == phi).map(|(_, c)| *c)
    }
}

/// Classifies the header phis of every loop in `func`.
#[must_use]
pub fn classify_loops(func: &Function, forest: &LoopForest, scev: &ScevInfo) -> Vec<LoopLcds> {
    forest
        .iter()
        .map(|(loop_id, lp)| {
            let phis = scev
                .header_phis(loop_id)
                .iter()
                .map(|&(phi, class)| {
                    if class.is_computable() {
                        return (phi, LcdClass::Computable(class));
                    }
                    // Try the reduction pattern on the latch update.
                    if lp.latches.len() == 1 {
                        let latch = lp.latches[0];
                        let update = match func.value(phi) {
                            ValueKind::Inst(iid) => match &func.inst(*iid).inst {
                                Inst::Phi { incomings, .. } => {
                                    incomings.iter().find(|(b, _)| *b == latch).map(|(_, v)| *v)
                                }
                                _ => None,
                            },
                            _ => None,
                        };
                        if let Some(update) = update {
                            if let Some(op) = detect_reduction(func, lp, phi, update) {
                                return (phi, LcdClass::Reduction(op));
                            }
                        }
                    }
                    (phi, LcdClass::NonComputable)
                })
                .collect();
            LoopLcds { phis }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_function;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{BlockId, IcmpPred, Type};

    /// One loop with: a counter (computable), a sum reduction, and a
    /// pointer-chase phi (non-computable).
    fn three_kinds() -> Function {
        let mut fb = FunctionBuilder::new("f", &[Type::I64, Type::Ptr], Type::I64);
        let n = fb.param(0);
        let base = fb.param(1);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let s = fb.phi(Type::I64);
        let p = fb.phi(Type::Ptr);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let x = fb.load(Type::I64, p);
        let s2 = fb.add(s, x);
        let p2 = fb.load(Type::Ptr, p);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(s, BlockId::ENTRY, zero);
        fb.add_phi_incoming(s, body, s2);
        fb.add_phi_incoming(p, BlockId::ENTRY, base);
        fb.add_phi_incoming(p, body, p2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(s));
        fb.finish().unwrap()
    }

    #[test]
    fn classifies_all_three_kinds() {
        let f = three_kinds();
        let a = analyze_function(&f);
        assert_eq!(a.loops.len(), 1);
        let lcds = &a.lcds[0];
        assert_eq!(lcds.phis.len(), 3);
        assert!(lcds.phis[0].1.is_computable());
        assert!(matches!(
            lcds.phis[1].1,
            LcdClass::Reduction(lp_ir::BinOp::Add)
        ));
        assert_eq!(lcds.phis[2].1, LcdClass::NonComputable);
        assert_eq!(lcds.non_computable().count(), 1);
        assert_eq!(lcds.reductions().count(), 1);
    }

    #[test]
    fn class_of_lookup() {
        let f = three_kinds();
        let a = analyze_function(&f);
        let lcds = &a.lcds[0];
        let (phi, _) = lcds.phis[1];
        assert_eq!(
            lcds.class_of(phi),
            Some(LcdClass::Reduction(lp_ir::BinOp::Add))
        );
        assert_eq!(lcds.class_of(lp_ir::ValueId(999)), None);
    }
}
