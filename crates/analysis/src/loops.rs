//! Natural-loop detection and the loop nesting forest.
//!
//! A natural loop exists for every back edge `latch -> header` where
//! `header` dominates `latch`; loops sharing a header are merged (as LLVM
//! does). The forest records nesting, and per-loop canonicalization facts
//! mirroring what LLVM's `loopsimplify` guarantees: a unique preheader, a
//! single latch, and dedicated exit blocks. The paper (§III-A) runs
//! `loopsimplify` precisely so loops "within arbitrarily complex loop
//! nests" are uniquely identifiable — our suite builds canonical loops by
//! construction, and [`Loop::is_canonical`] lets the profiler check.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use lp_ir::{BlockId, Function};
use std::collections::BTreeSet;

/// Dense index of a loop within a function's [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl LoopId {
    /// Returns the arena index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LoopId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// Latch blocks (sources of back edges).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop body, header included (sorted).
    pub blocks: Vec<BlockId>,
    /// Parent loop in the nesting forest.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
    /// The unique preheader, if the loop has exactly one entering edge
    /// from outside.
    pub preheader: Option<BlockId>,
    /// Blocks outside the loop targeted by exit edges (sorted, deduped).
    pub exit_blocks: Vec<BlockId>,
}

impl Loop {
    /// Returns `true` if `b` is inside the loop.
    #[must_use]
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }

    /// `loopsimplify`-style canonical form: unique preheader and a single
    /// latch.
    #[must_use]
    pub fn is_canonical(&self) -> bool {
        self.preheader.is_some() && self.latches.len() == 1
    }
}

/// The loop nesting forest of a function.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop containing each block, if any.
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Detects all natural loops in `func`.
    #[must_use]
    pub fn new(func: &Function, cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let n = func.blocks.len();
        // 1. Find back edges grouped by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => by_header.push((s, vec![b])),
                    }
                }
            }
        }
        // 2. Natural loop body: backward reachability from latches without
        //    crossing the header.
        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in by_header {
            let mut set: BTreeSet<BlockId> = BTreeSet::new();
            set.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if set.insert(l) {
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if cfg.is_reachable(p) && set.insert(p) {
                        stack.push(p);
                    }
                }
            }
            let blocks: Vec<BlockId> = set.into_iter().collect();
            loops.push(Loop {
                header,
                latches,
                blocks,
                parent: None,
                children: Vec::new(),
                depth: 1,
                preheader: None,
                exit_blocks: Vec::new(),
            });
        }
        // 3. Nesting: sort by body size ascending; the parent of a loop is
        //    the smallest strictly larger loop containing its header.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].blocks.len());
        let rank: Vec<usize> = {
            let mut r = vec![0; loops.len()];
            for (pos, &i) in order.iter().enumerate() {
                r[i] = pos;
            }
            r
        };
        for &i in &order {
            let header = loops[i].header;
            let mut best: Option<usize> = None;
            for &j in &order {
                if j == i || loops[j].blocks.len() < loops[i].blocks.len() {
                    continue;
                }
                if j != i && loops[j].contains(header) && rank[j] > rank[i] {
                    best = match best {
                        None => Some(j),
                        Some(b) if loops[j].blocks.len() < loops[b].blocks.len() => Some(j),
                        other => other,
                    };
                }
            }
            if let Some(p) = best {
                loops[i].parent = Some(LoopId(p as u32));
            }
        }
        for i in 0..loops.len() {
            if let Some(p) = loops[i].parent {
                loops[p.index()].children.push(LoopId(i as u32));
            }
        }
        // Depths via parent chains.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }
        // 4. Innermost-loop-of-block map.
        let mut innermost: Vec<Option<LoopId>> = vec![None; n];
        // Visit loops from outermost (largest) to innermost (smallest) so
        // smaller loops overwrite.
        for &i in order.iter().rev() {
            for &b in &loops[i].blocks {
                innermost[b.index()] = Some(LoopId(i as u32));
            }
        }
        // 5. Preheaders and exits.
        for lp in &mut loops {
            let mut outside_preds: Vec<BlockId> = cfg
                .preds(lp.header)
                .iter()
                .copied()
                .filter(|p| cfg.is_reachable(*p) && lp.blocks.binary_search(p).is_err())
                .collect();
            outside_preds.sort_unstable();
            outside_preds.dedup();
            if outside_preds.len() == 1 {
                // A true preheader must branch only to the header.
                let cand = outside_preds[0];
                if cfg.succs(cand).len() == 1 {
                    lp.preheader = Some(cand);
                }
            }
            let mut exits = BTreeSet::new();
            for &b in &lp.blocks {
                for &s in cfg.succs(b) {
                    if lp.blocks.binary_search(&s).is_err() {
                        exits.insert(s);
                    }
                }
            }
            lp.exit_blocks = exits.into_iter().collect();
        }
        LoopForest { loops, innermost }
    }

    /// All loops (arena order; not nesting order).
    #[must_use]
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Number of loops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Returns `true` if the function has no loops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Loop lookup.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[must_use]
    pub fn loop_(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// The innermost loop containing `b`, if any.
    #[must_use]
    pub fn innermost_at(&self, b: BlockId) -> Option<LoopId> {
        self.innermost.get(b.index()).copied().flatten()
    }

    /// The loop whose header is `b`, if any.
    #[must_use]
    pub fn loop_with_header(&self, b: BlockId) -> Option<LoopId> {
        self.loops
            .iter()
            .position(|l| l.header == b)
            .map(|i| LoopId(i as u32))
    }

    /// Iterator over `(LoopId, &Loop)`.
    pub fn iter(&self) -> impl Iterator<Item = (LoopId, &Loop)> {
        self.loops
            .iter()
            .enumerate()
            .map(|(i, l)| (LoopId(i as u32), l))
    }

    /// Top-level (depth-1) loops.
    pub fn top_level(&self) -> impl Iterator<Item = LoopId> + '_ {
        self.iter()
            .filter(|(_, l)| l.parent.is_none())
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{IcmpPred, Type};

    /// Builds a canonical 2-deep nest:
    /// entry -> oh; oh -> ob|exit; ob -> ih; ih -> ib|olatch; ib -> ih;
    /// olatch -> oh.
    fn nested() -> Function {
        let mut fb = FunctionBuilder::new("nest", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let oh = fb.create_block("outer_header");
        let ob = fb.create_block("outer_body");
        let ih = fb.create_block("inner_header");
        let ib = fb.create_block("inner_body");
        let ol = fb.create_block("outer_latch");
        let exit = fb.create_block("exit");
        fb.br(oh);
        fb.switch_to(oh);
        let i = fb.phi(Type::I64);
        let ci = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(ci, ob, exit);
        fb.switch_to(ob);
        fb.br(ih);
        fb.switch_to(ih);
        let j = fb.phi(Type::I64);
        let cj = fb.icmp(IcmpPred::Slt, j, n);
        fb.cond_br(cj, ib, ol);
        fb.switch_to(ib);
        let j2 = fb.add(j, one);
        fb.add_phi_incoming(j, ob, zero);
        fb.add_phi_incoming(j, ib, j2);
        fb.br(ih);
        fb.switch_to(ol);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, ol, i2);
        fb.br(oh);
        fb.switch_to(exit);
        fb.ret(Some(i));
        fb.finish().unwrap()
    }

    fn forest(f: &Function) -> LoopForest {
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        LoopForest::new(f, &cfg, &dom)
    }

    #[test]
    fn detects_nested_loops_with_depths() {
        let f = nested();
        let forest = forest(&f);
        assert_eq!(forest.len(), 2);
        let outer = forest.loop_with_header(BlockId(1)).unwrap();
        let inner = forest.loop_with_header(BlockId(3)).unwrap();
        assert_eq!(forest.loop_(outer).depth, 1);
        assert_eq!(forest.loop_(inner).depth, 2);
        assert_eq!(forest.loop_(inner).parent, Some(outer));
        assert_eq!(forest.loop_(outer).children, vec![inner]);
        assert!(forest.loop_(outer).contains(BlockId(3)));
        assert!(!forest.loop_(inner).contains(BlockId(1)));
    }

    #[test]
    fn innermost_maps_shared_blocks_to_inner_loop() {
        let f = nested();
        let forest = forest(&f);
        let inner = forest.loop_with_header(BlockId(3)).unwrap();
        let outer = forest.loop_with_header(BlockId(1)).unwrap();
        assert_eq!(forest.innermost_at(BlockId(4)), Some(inner)); // inner body
        assert_eq!(forest.innermost_at(BlockId(2)), Some(outer)); // outer body
        assert_eq!(forest.innermost_at(BlockId(6)), None); // exit
    }

    #[test]
    fn canonical_form_detected() {
        let f = nested();
        let forest = forest(&f);
        for (_, l) in forest.iter() {
            assert!(l.is_canonical(), "loop at {:?} not canonical", l.header);
            assert_eq!(l.latches.len(), 1);
        }
        let outer = forest.loop_with_header(BlockId(1)).unwrap();
        assert_eq!(forest.loop_(outer).preheader, Some(BlockId::ENTRY));
        assert_eq!(forest.loop_(outer).exit_blocks, vec![BlockId(6)]);
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut fb = FunctionBuilder::new("s", &[], Type::Void);
        fb.ret(None);
        let f = fb.finish().unwrap();
        assert!(forest(&f).is_empty());
    }

    #[test]
    fn self_loop_detected() {
        let mut fb = FunctionBuilder::new("s", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let l = fb.create_block("l");
        let exit = fb.create_block("exit");
        fb.br(l);
        fb.switch_to(l);
        let i = fb.phi(Type::I64);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, l, i2);
        let c = fb.icmp(IcmpPred::Slt, i2, n);
        fb.cond_br(c, l, exit);
        fb.switch_to(exit);
        fb.ret(Some(i2));
        let f = fb.finish().unwrap();
        let forest = forest(&f);
        assert_eq!(forest.len(), 1);
        let lp = &forest.loops()[0];
        assert_eq!(lp.header, l);
        assert_eq!(lp.latches, vec![l]);
        assert_eq!(lp.blocks, vec![l]);
        assert!(lp.is_canonical());
    }
}
