//! Call graph and purity inference.
//!
//! Purity drives the `fn1` configuration: "only user and library function
//! calls identified by the compiler as pure (read-only with no side
//! effects) are considered parallel" (paper Table II). A user function is
//! pure when it contains no stores, no allocas, and calls only pure
//! callees (builtin or user); loads are allowed (read-only).

use lp_ir::{Builtin, Callee, FuncId, Inst, Module};

/// Purity classification of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purity {
    /// Read-only, no side effects, calls only pure callees.
    Pure,
    /// May write memory or perform side effects.
    Impure,
}

/// Whole-module call graph with purity results.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Direct user-function callees per function.
    callees: Vec<Vec<FuncId>>,
    /// Builtins referenced per function.
    builtins: Vec<Vec<Builtin>>,
    purity: Vec<Purity>,
    /// Whether the function (transitively) calls a non-thread-safe
    /// builtin; drives `fn2`'s "thread-safe" requirement.
    calls_non_thread_safe: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph and runs the purity fixpoint.
    #[must_use]
    pub fn new(module: &Module) -> CallGraph {
        let n = module.functions.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut builtins: Vec<Vec<Builtin>> = vec![Vec::new(); n];
        let mut locally_impure = vec![false; n];
        let mut locally_non_ts = vec![false; n];
        for (fid, func) in module.iter_functions() {
            for data in &func.insts {
                match &data.inst {
                    Inst::Store { .. } | Inst::Alloca { .. } => {
                        locally_impure[fid.index()] = true;
                    }
                    Inst::Call { callee, .. } => match callee {
                        Callee::Func(target) => {
                            if !callees[fid.index()].contains(target) {
                                callees[fid.index()].push(*target);
                            }
                        }
                        Callee::Builtin(b) => {
                            if !builtins[fid.index()].contains(b) {
                                builtins[fid.index()].push(*b);
                            }
                            if !b.is_pure() {
                                locally_impure[fid.index()] = true;
                            }
                            if !b.is_thread_safe() {
                                locally_non_ts[fid.index()] = true;
                            }
                        }
                    },
                    _ => {}
                }
            }
        }
        // Fixpoint: impurity and non-thread-safety propagate up the call
        // graph (callers inherit them).
        let mut purity: Vec<bool> = locally_impure.clone(); // true = impure
        let mut non_ts = locally_non_ts;
        let mut changed = true;
        while changed {
            changed = false;
            for f in 0..n {
                for target in &callees[f] {
                    if purity[target.index()] && !purity[f] {
                        purity[f] = true;
                        changed = true;
                    }
                    if non_ts[target.index()] && !non_ts[f] {
                        non_ts[f] = true;
                        changed = true;
                    }
                }
            }
        }
        CallGraph {
            callees,
            builtins,
            purity: purity
                .into_iter()
                .map(|imp| if imp { Purity::Impure } else { Purity::Pure })
                .collect(),
            calls_non_thread_safe: non_ts,
        }
    }

    /// Purity of a function.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[must_use]
    pub fn purity(&self, f: FuncId) -> Purity {
        self.purity[f.index()]
    }

    /// Returns `true` if `f` transitively calls a non-thread-safe builtin
    /// (I/O, shared-state RNG). Such functions cannot run from concurrent
    /// iterations under `fn2`.
    #[must_use]
    pub fn calls_non_thread_safe(&self, f: FuncId) -> bool {
        self.calls_non_thread_safe[f.index()]
    }

    /// Direct user-function callees of `f`.
    #[must_use]
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// Builtins referenced directly by `f`.
    #[must_use]
    pub fn builtins(&self, f: FuncId) -> &[Builtin] {
        &self.builtins[f.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::Type;

    fn module() -> (Module, FuncId, FuncId, FuncId, FuncId) {
        let mut m = Module::new("m");
        // pure_leaf: returns its argument squared (reads nothing).
        let mut fb = FunctionBuilder::new("pure_leaf", &[Type::I64], Type::I64);
        let x = fb.param(0);
        let r = fb.mul(x, x);
        fb.ret(Some(r));
        let pure_leaf = m.add_function(fb.finish().unwrap());

        // reader: loads from a pointer (read-only => pure).
        let mut fb = FunctionBuilder::new("reader", &[Type::Ptr], Type::I64);
        let p = fb.param(0);
        let v = fb.load(Type::I64, p);
        let r = fb.call(pure_leaf, Type::I64, &[v]);
        fb.ret(Some(r));
        let reader = m.add_function(fb.finish().unwrap());

        // writer: stores (impure, but thread-safe: no bad builtins).
        let mut fb = FunctionBuilder::new("writer", &[Type::Ptr, Type::I64], Type::Void);
        let p = fb.param(0);
        let v = fb.param(1);
        fb.store(v, p);
        fb.ret(None);
        let writer = m.add_function(fb.finish().unwrap());

        // printer: calls print_i64 (impure AND non-thread-safe).
        let mut fb = FunctionBuilder::new("printer", &[Type::I64], Type::Void);
        let v = fb.param(0);
        fb.call_builtin(lp_ir::Builtin::PrintI64, &[v]);
        fb.ret(None);
        let printer = m.add_function(fb.finish().unwrap());

        (m, pure_leaf, reader, writer, printer)
    }

    #[test]
    fn purity_inference() {
        let (m, pure_leaf, reader, writer, printer) = module();
        let cg = CallGraph::new(&m);
        assert_eq!(cg.purity(pure_leaf), Purity::Pure);
        assert_eq!(cg.purity(reader), Purity::Pure);
        assert_eq!(cg.purity(writer), Purity::Impure);
        assert_eq!(cg.purity(printer), Purity::Impure);
    }

    #[test]
    fn thread_safety_propagates_up() {
        let (mut m, _, _, writer, printer) = module();
        // caller -> printer (inherits non-thread-safety); caller2 -> writer
        // (stays thread-safe).
        let mut fb = FunctionBuilder::new("caller", &[], Type::Void);
        let v = fb.const_i64(1);
        fb.call(printer, Type::Void, &[v]);
        fb.ret(None);
        let caller = m.add_function(fb.finish().unwrap());

        let mut fb = FunctionBuilder::new("caller2", &[], Type::Void);
        let p = fb.const_null();
        let v = fb.const_i64(1);
        fb.call(writer, Type::Void, &[p, v]);
        fb.ret(None);
        let caller2 = m.add_function(fb.finish().unwrap());

        let cg = CallGraph::new(&m);
        assert!(cg.calls_non_thread_safe(printer));
        assert!(cg.calls_non_thread_safe(caller));
        assert!(!cg.calls_non_thread_safe(caller2));
        assert_eq!(cg.callees(caller), &[printer]);
        assert_eq!(cg.builtins(printer), &[lp_ir::Builtin::PrintI64]);
    }

    #[test]
    fn recursive_functions_reach_fixpoint() {
        let mut m = Module::new("m");
        // Mutually recursive pure pair (physically impossible to run, but
        // the fixpoint must terminate). Declare a first, patch b later via
        // a second function referencing FuncId(0)/(1) by construction
        // order.
        let mut fb = FunctionBuilder::new("a", &[Type::I64], Type::I64);
        let x = fb.param(0);
        let r = fb.call(FuncId(1), Type::I64, &[x]);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        let mut fb = FunctionBuilder::new("b", &[Type::I64], Type::I64);
        let x = fb.param(0);
        let r = fb.call(FuncId(0), Type::I64, &[x]);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        let cg = CallGraph::new(&m);
        assert_eq!(cg.purity(FuncId(0)), Purity::Pure);
        assert_eq!(cg.purity(FuncId(1)), Purity::Pure);
    }
}
