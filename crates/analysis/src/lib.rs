//! # lp-analysis — compile-time component of Loopapalooza
//!
//! Reimplements the LLVM analyses the paper's compile-time component relies
//! on (§III-A):
//!
//! - [`mod@cfg`]: reverse-postorder traversal and successor/predecessor maps;
//! - [`dom`]: dominator trees (Cooper–Harvey–Kennedy);
//! - [`loops`]: the natural-loop forest with canonicalization checks
//!   (LLVM `loopsimplify`'s invariants: unique preheader, single latch,
//!   dedicated exits);
//! - [`scev`]: scalar evolution — classifies loop-header phis as
//!   *computable* add-recurrences (induction and mutual-induction
//!   variables) or non-computable (paper §II-A);
//! - [`reduction`]: recurrence-descriptor style reduction detection;
//! - [`classify`]: the register-LCD categorization of Table I built from
//!   the two analyses above;
//! - [`callgraph`]: call graph plus purity inference (drives `fn1`);
//! - [`ssa`]: the SSA dominance verifier that complements
//!   `lp_ir::verify_module`.
//!
//! The top-level [`analyze_function`] and [`analyze_module`] helpers bundle
//! everything the interpreter and the run-time component need.

pub mod callgraph;
pub mod certify;
pub mod cfg;
pub mod classify;
pub mod dom;
pub mod dump;
pub mod loops;
pub mod reduction;
pub mod scev;
pub mod ssa;

pub use callgraph::{CallGraph, Purity};
pub use certify::{certify_function, certify_module, CertPhi, CertifiedLoop};
pub use cfg::Cfg;
pub use classify::{LcdClass, LoopLcds, ReductionKind};
pub use dom::DomTree;
pub use dump::{dump_function, dump_module};
pub use loops::{Loop, LoopForest, LoopId};
pub use scev::{derive_step, ScevClass, ScevInfo, StepSpec};
pub use ssa::verify_ssa;

use lp_ir::{FuncId, Function, Module};

/// All per-function analysis results bundled together.
#[derive(Debug)]
pub struct FunctionAnalysis {
    /// Control-flow graph helpers.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Natural-loop forest.
    pub loops: LoopForest,
    /// Scalar-evolution classification of header phis, per loop.
    pub scev: ScevInfo,
    /// Register-LCD categorization (computable / reduction /
    /// non-computable), per loop.
    pub lcds: Vec<LoopLcds>,
}

/// Runs the full compile-time analysis pipeline on one function.
#[must_use]
pub fn analyze_function(func: &Function) -> FunctionAnalysis {
    let cfg = Cfg::new(func);
    let dom = DomTree::new(func, &cfg);
    let loops = LoopForest::new(func, &cfg, &dom);
    let scev = ScevInfo::new(func, &loops);
    let lcds = classify::classify_loops(func, &loops, &scev);
    FunctionAnalysis {
        cfg,
        dom,
        loops,
        scev,
        lcds,
    }
}

/// Whole-module analysis: per-function bundles plus the call graph.
#[derive(Debug)]
pub struct ModuleAnalysis {
    /// Per-function analyses, indexed by [`FuncId`].
    pub functions: Vec<FunctionAnalysis>,
    /// Call graph with purity classification.
    pub callgraph: CallGraph,
}

impl ModuleAnalysis {
    /// Analysis bundle for one function.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn function(&self, id: FuncId) -> &FunctionAnalysis {
        &self.functions[id.index()]
    }
}

/// Runs [`analyze_function`] on every function and builds the call graph.
///
/// ```
/// use lp_ir::builder::FunctionBuilder;
/// use lp_ir::{Module, Type};
///
/// let mut module = Module::new("demo");
/// let mut fb = FunctionBuilder::new("main", &[], Type::I64);
/// let x = fb.const_i64(1);
/// fb.ret(Some(x));
/// module.add_function(fb.finish().unwrap());
///
/// let analysis = lp_analysis::analyze_module(&module);
/// assert!(analysis.function(lp_ir::FuncId(0)).loops.is_empty());
/// ```
#[must_use]
pub fn analyze_module(module: &Module) -> ModuleAnalysis {
    let functions = module
        .functions
        .iter()
        .map(analyze_function)
        .collect::<Vec<_>>();
    let callgraph = CallGraph::new(module);
    ModuleAnalysis {
        functions,
        callgraph,
    }
}
