//! Static DOALL certification for parallel replay.
//!
//! The limit study's classifier asks "*could* this loop be DOALL under
//! some config"; replay asks the much stricter "may I actually run its
//! iterations on real threads and still produce a byte-identical
//! result?" A loop is **statically certifiable** when every part of the
//! replay recipe is guaranteed to work:
//!
//! 1. **Canonical form** — unique preheader, single latch
//!    ([`Loop::is_canonical`]), so "entered from outside" and "one
//!    iteration per latch→header arrival" are well defined.
//! 2. **Closed-form phis** — every header phi is either an affine
//!    induction (`phi(k) = phi(0) + k·step`, step loop-invariant;
//!    [`derive_step`]) or an *integer* reduction whose operator is
//!    exactly associative (`add/mul/and/or/xor/smin/smax`). Float
//!    reductions are rejected: chunked reassociation changes `f64` bits.
//! 3. **Pure header** — the header's non-phi instructions are
//!    register-only (`bin/icmp/fcmp/select/cast/gep`) and independent of
//!    the reduction phis, so the trip count can be derived by evaluating
//!    the header against closed-form induction values without memory,
//!    and workers holding partial reduction values never leak them into
//!    addresses or the exit test.
//! 4. **Header-only exits** — the header ends in a conditional branch
//!    with exactly one successor inside the loop; every other loop
//!    block branches only within the loop. Chunk workers can therefore
//!    never escape mid-iteration.
//! 5. **No frame growth, no unsafe builtins** — no `alloca` in loop
//!    blocks (iteration-local scratch must come from *called* functions,
//!    whose frames the replay merge discards), and the loop's transitive
//!    call closure is free of `malloc`/`free` (bump-allocator state),
//!    `rand` (shared LCG state), and `print_*` (output ordering).
//!
//! Static certification is necessary but not sufficient: the runtime
//! additionally requires an observed-dependence-free profile and a
//! per-iteration footprint-disjointness witness (`lp-runtime`) before a
//! loop is replayed.

use crate::callgraph::CallGraph;
use crate::loops::{Loop, LoopId};
use crate::reduction::detect_reduction;
use crate::scev::{derive_step, StepSpec};
use crate::ModuleAnalysis;
use lp_ir::{BinOp, BlockId, Builtin, Callee, FuncId, Inst, Module, Term, ValueId};

/// How a certified header phi evolves, with everything replay needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertPhi {
    /// Affine induction with a derivable loop-invariant step.
    Affine(StepSpec),
    /// Integer reduction with an exactly-associative operator.
    Reduction(BinOp),
}

/// One loop that passed every static certification check.
#[derive(Debug, Clone)]
pub struct CertifiedLoop {
    /// Containing function.
    pub func: FuncId,
    /// Loop id within the function's forest.
    pub loop_id: LoopId,
    /// Loop header.
    pub header: BlockId,
    /// The single latch.
    pub latch: BlockId,
    /// All loop blocks, sorted by id.
    pub blocks: Vec<BlockId>,
    /// Header phis in block order with their certified kinds.
    pub phis: Vec<(ValueId, CertPhi)>,
}

/// Reduction operators replay can fold chunk partials with: exactly
/// associative over `i64`. Floats never qualify (reassociation changes
/// results bit-for-bit); neither do non-associative ops like `sub`.
#[must_use]
pub fn is_replayable_reduction(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::SMin | BinOp::SMax
    )
}

/// Builtins whose presence anywhere in a loop's transitive call closure
/// disqualifies it from replay: they mutate machine state that the
/// per-worker memory clone does not capture (`malloc`/`free` move the
/// bump allocator, `rand` advances the shared LCG, `print_*` appends to
/// the ordered output stream).
fn is_replay_unsafe(b: Builtin) -> bool {
    matches!(
        b,
        Builtin::Malloc | Builtin::Free | Builtin::Rand | Builtin::PrintI64 | Builtin::PrintF64
    )
}

/// Statically certifies every loop in the module, in `(function, loop)`
/// order.
#[must_use]
pub fn certify_module(module: &Module, analysis: &ModuleAnalysis) -> Vec<CertifiedLoop> {
    (0..module.functions.len())
        .flat_map(|i| certify_function(module, analysis, FuncId(i as u32)))
        .collect()
}

/// Statically certifies every loop of one function.
#[must_use]
pub fn certify_function(
    module: &Module,
    analysis: &ModuleAnalysis,
    fid: FuncId,
) -> Vec<CertifiedLoop> {
    let fa = analysis.function(fid);
    fa.loops
        .iter()
        .filter_map(|(loop_id, lp)| certify_loop(module, &analysis.callgraph, fid, loop_id, lp))
        .collect()
}

fn certify_loop(
    module: &Module,
    cg: &CallGraph,
    fid: FuncId,
    loop_id: LoopId,
    lp: &Loop,
) -> Option<CertifiedLoop> {
    let func = module.function(fid);
    // 1. Canonical form.
    if !lp.is_canonical() {
        return None;
    }
    let latch = lp.latches[0];

    // 4. Header-only exits: the header ends in a conditional branch with
    // exactly one in-loop successor; everything else stays inside.
    let header_blk = func.block(lp.header);
    let Term::CondBr {
        cond,
        then_blk,
        else_blk,
    } = &header_blk.term
    else {
        return None;
    };
    if lp.contains(*then_blk) == lp.contains(*else_blk) {
        return None;
    }
    for &b in &lp.blocks {
        if b == lp.header {
            continue;
        }
        if func
            .block(b)
            .term
            .successors()
            .iter()
            .any(|s| !lp.contains(*s))
        {
            return None;
        }
    }

    // 2. Closed-form phis. Reduction recognition goes straight to
    // `detect_reduction` rather than through `LcdClass`: SCEV calls a
    // sum-of-induction phi (`s += i`) *computable*, but replay treats it
    // as a reduction — and `detect_reduction` additionally guarantees
    // partial sums never escape the chain, which chunking requires.
    let mut phis: Vec<(ValueId, CertPhi)> = Vec::new();
    let mut reduction_phis: Vec<ValueId> = Vec::new();
    for &iid in &header_blk.insts {
        let data = func.inst(iid);
        if !data.inst.is_phi() {
            break;
        }
        let phi = data.result;
        if let Some(step) = derive_step(func, lp, phi) {
            phis.push((phi, CertPhi::Affine(step)));
            continue;
        }
        let Inst::Phi { incomings, .. } = &data.inst else {
            unreachable!("is_phi guarantees a phi instruction");
        };
        let update = incomings
            .iter()
            .find(|(b, _)| *b == latch)
            .map(|(_, v)| *v)?;
        let op = detect_reduction(func, lp, phi, update)?;
        if !is_replayable_reduction(op) {
            return None;
        }
        reduction_phis.push(phi);
        phis.push((phi, CertPhi::Reduction(op)));
    }

    // 3. Pure header, independent of reduction partials. The branch
    // condition is a header-local value, so checking every non-phi
    // header instruction (plus the condition itself) covers the exit
    // test too.
    if reduction_phis.contains(cond) {
        return None;
    }
    for &iid in &header_blk.insts {
        let data = func.inst(iid);
        if data.inst.is_phi() {
            continue;
        }
        match data.inst {
            Inst::Bin { .. }
            | Inst::Icmp { .. }
            | Inst::Fcmp { .. }
            | Inst::Select { .. }
            | Inst::Cast { .. }
            | Inst::Gep { .. } => {}
            _ => return None,
        }
        // Header instructions can only reference header phis, earlier
        // header results, and loop invariants (by dominance), so direct
        // operand checks against the reduction phis suffice.
        if data.inst.operands().any(|v| reduction_phis.contains(&v)) {
            return None;
        }
    }

    // 5. No frame growth, no replay-unsafe builtins (transitively).
    let mut callees: Vec<FuncId> = Vec::new();
    for &b in &lp.blocks {
        for &iid in &func.block(b).insts {
            match &func.inst(iid).inst {
                Inst::Alloca { .. } => return None,
                Inst::Call { callee, .. } => match callee {
                    Callee::Builtin(bi) => {
                        if is_replay_unsafe(*bi) {
                            return None;
                        }
                    }
                    Callee::Func(f) => callees.push(*f),
                },
                _ => {}
            }
        }
    }
    if closure_has_unsafe_builtin(cg, &callees) {
        return None;
    }

    Some(CertifiedLoop {
        func: fid,
        loop_id,
        header: lp.header,
        latch,
        blocks: lp.blocks.clone(),
        phis,
    })
}

/// Walks the call closure of `roots`, returning `true` if any reachable
/// function uses a replay-unsafe builtin. `CallGraph::calls_non_thread_safe`
/// is not enough here: `malloc`/`free` are thread-safe for the limit
/// study's models but still disqualify replay (they move the shared bump
/// allocator).
fn closure_has_unsafe_builtin(cg: &CallGraph, roots: &[FuncId]) -> bool {
    let mut visited: Vec<FuncId> = Vec::new();
    let mut work: Vec<FuncId> = roots.to_vec();
    while let Some(f) = work.pop() {
        if visited.contains(&f) {
            continue;
        }
        visited.push(f);
        if cg.builtins(f).iter().any(|&b| is_replay_unsafe(b)) {
            return true;
        }
        work.extend_from_slice(cg.callees(f));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_module;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{BlockId, Global, IcmpPred, Type};

    /// `for i in 0..n { body }` with optional extra phis; returns the
    /// module (entry `main` taking `n`).
    fn loop_module(
        extra_phis: usize,
        body: impl FnOnce(&mut FunctionBuilder, ValueId, &[ValueId]) -> Vec<ValueId>,
    ) -> Module {
        let mut m = Module::new("t");
        m.add_global(Global::zeroed("a", 256));
        let mut fb = FunctionBuilder::new("main", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let bodyb = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let phis: Vec<ValueId> = (0..extra_phis).map(|_| fb.phi(Type::I64)).collect();
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, bodyb, exit);
        fb.switch_to(bodyb);
        let updates = body(&mut fb, i, &phis);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, bodyb, i2);
        for (&p, &u) in phis.iter().zip(&updates) {
            fb.add_phi_incoming(p, BlockId::ENTRY, zero);
            fb.add_phi_incoming(p, bodyb, u);
        }
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        m.add_function(fb.finish().unwrap());
        m
    }

    fn certify(m: &Module) -> Vec<CertifiedLoop> {
        certify_module(m, &analyze_module(m))
    }

    #[test]
    fn plain_store_loop_certifies() {
        let m = loop_module(0, |fb, i, _| {
            let g = fb.global_addr(lp_ir::GlobalId(0));
            let p = fb.gep(g, i, 8, 0);
            fb.store(i, p);
            vec![]
        });
        let certified = certify(&m);
        assert_eq!(certified.len(), 1);
        let c = &certified[0];
        assert_eq!(c.phis.len(), 1);
        let CertPhi::Affine(step) = &c.phis[0].1 else {
            panic!("counter must be affine");
        };
        assert_eq!(step.konst, 1);
        assert!(step.terms.is_empty());
    }

    #[test]
    fn integer_sum_reduction_certifies() {
        let m = loop_module(1, |fb, i, phis| {
            let s2 = fb.add(phis[0], i);
            vec![s2]
        });
        let certified = certify(&m);
        assert_eq!(certified.len(), 1);
        assert!(matches!(
            certified[0].phis[1].1,
            CertPhi::Reduction(BinOp::Add)
        ));
    }

    #[test]
    fn float_reduction_is_rejected() {
        // f64 accumulation reassociates; replay must refuse it.
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", &[Type::I64], Type::F64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let fzero = fb.const_f64(0.0);
        let fc = fb.const_f64(1.5);
        let header = fb.create_block("header");
        let bodyb = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let s = fb.phi(Type::F64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, bodyb, exit);
        fb.switch_to(bodyb);
        let s2 = fb.fadd(s, fc);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, bodyb, i2);
        fb.add_phi_incoming(s, BlockId::ENTRY, fzero);
        fb.add_phi_incoming(s, bodyb, s2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(s));
        m.add_function(fb.finish().unwrap());
        assert!(certify(&m).is_empty());
    }

    #[test]
    fn alloca_malloc_and_rand_disqualify() {
        let with_alloca = loop_module(0, |fb, i, _| {
            let slot = fb.alloca(1);
            fb.store(i, slot);
            vec![]
        });
        assert!(certify(&with_alloca).is_empty());

        let with_malloc = loop_module(0, |fb, _, _| {
            let sz = fb.const_i64(8);
            fb.call_builtin(lp_ir::Builtin::Malloc, &[sz]);
            vec![]
        });
        assert!(certify(&with_malloc).is_empty());

        let with_rand = loop_module(1, |fb, _, phis| {
            let r = fb.call_builtin(lp_ir::Builtin::Rand, &[]);
            let s2 = fb.add(phis[0], r);
            vec![s2]
        });
        assert!(certify(&with_rand).is_empty());
    }

    #[test]
    fn transitive_malloc_through_callee_disqualifies() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("leak", &[], Type::I64);
        let sz = fb.const_i64(8);
        let p = fb.call_builtin(lp_ir::Builtin::Malloc, &[sz]);
        let v = fb.cast(lp_ir::CastKind::PtrToInt, p);
        fb.ret(Some(v));
        let leak = m.add_function(fb.finish().unwrap());

        let mut fb = FunctionBuilder::new("main", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let bodyb = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, bodyb, exit);
        fb.switch_to(bodyb);
        fb.call(leak, Type::I64, &[]);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, bodyb, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        m.add_function(fb.finish().unwrap());
        assert!(certify(&m).is_empty());
    }

    #[test]
    fn non_affine_phi_is_rejected() {
        // x_{n+1} = load a[i] — no closed form, not a reduction chain.
        let m = loop_module(1, |fb, i, _| {
            let g = fb.global_addr(lp_ir::GlobalId(0));
            let p = fb.gep(g, i, 8, 0);
            let x = fb.load(Type::I64, p);
            vec![x]
        });
        assert!(certify(&m).is_empty());
    }
}
