//! Human-readable dumps of the compile-time analysis results — what LLVM
//! would print under `-debug-only=loopapalooza`. Used by the `lpstudy`
//! CLI's `--analyze` mode and handy in tests.

use crate::classify::LcdClass;
use crate::scev::ScevClass;
use crate::{FunctionAnalysis, ModuleAnalysis};
use lp_ir::{Function, Module};
use std::fmt::Write;

/// Renders the loop forest and register-LCD classification of one
/// function.
#[must_use]
pub fn dump_function(func: &Function, analysis: &FunctionAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fn @{}:", func.name);
    if analysis.loops.is_empty() {
        let _ = writeln!(out, "  (no loops)");
        return out;
    }
    for (lid, lp) in analysis.loops.iter() {
        let header = lp_ir::printer::block_label(func, lp.header);
        let canon = if lp.is_canonical() {
            "canonical"
        } else {
            "NON-CANONICAL"
        };
        let _ = writeln!(
            out,
            "  {lid} header={header} depth={} blocks={} {canon}",
            lp.depth,
            lp.blocks.len()
        );
        let lcds = &analysis.lcds[lid.index()];
        if lcds.phis.is_empty() {
            let _ = writeln!(out, "    (no header phis)");
        }
        for (phi, class) in &lcds.phis {
            let desc = match class {
                LcdClass::Computable(ScevClass::Induction) => {
                    "computable: induction variable (SCEV add-recurrence)".to_string()
                }
                LcdClass::Computable(ScevClass::Mutual) => {
                    "computable: mutual induction / polynomial chain".to_string()
                }
                LcdClass::Computable(ScevClass::NonComputable) => {
                    unreachable!("computable class cannot wrap NonComputable")
                }
                LcdClass::Reduction(op) => format!("reduction accumulator ({op})"),
                LcdClass::NonComputable => "NON-COMPUTABLE register LCD".to_string(),
            };
            let _ = writeln!(out, "    {phi}: {desc}");
        }
    }
    out
}

/// Renders the whole module's analysis, function by function, plus the
/// call graph's purity verdicts.
#[must_use]
pub fn dump_module(module: &Module, analysis: &ModuleAnalysis) -> String {
    let mut out = String::new();
    for (fid, func) in module.iter_functions() {
        out.push_str(&dump_function(func, analysis.function(fid)));
        let purity = match analysis.callgraph.purity(fid) {
            crate::Purity::Pure => "pure",
            crate::Purity::Impure => "impure",
        };
        let ts = if analysis.callgraph.calls_non_thread_safe(fid) {
            ", calls non-thread-safe builtins"
        } else {
            ""
        };
        let _ = writeln!(out, "  [{purity}{ts}]");
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_module;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{IcmpPred, Type};

    #[test]
    fn dump_mentions_each_classification() {
        let mut m = Module::new("d");
        let mut fb = FunctionBuilder::new("main", &[Type::Ptr], Type::I64);
        let base = fb.param(0);
        let n = fb.const_i64(10);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64); // induction
        let s = fb.phi(Type::I64); // reduction (sum of loads)
        let x = fb.phi(Type::I64); // non-computable (loaded)
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let a = fb.gep(base, x, 8, 0);
        let v = fb.load(Type::I64, a);
        let s2 = fb.add(s, v);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(s, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(s, body, s2);
        fb.add_phi_incoming(x, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(x, body, v);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(s));
        m.add_function(fb.finish().unwrap());
        let analysis = analyze_module(&m);
        let text = dump_module(&m, &analysis);
        assert!(text.contains("induction variable"), "{text}");
        assert!(text.contains("reduction accumulator"), "{text}");
        assert!(text.contains("NON-COMPUTABLE"), "{text}");
        assert!(text.contains("canonical"), "{text}");
        assert!(text.contains("[pure]"), "{text}");
    }

    #[test]
    fn dump_handles_loop_free_functions() {
        let mut m = Module::new("d");
        let mut fb = FunctionBuilder::new("main", &[], Type::Void);
        fb.ret(None);
        m.add_function(fb.finish().unwrap());
        let analysis = analyze_module(&m);
        let text = dump_module(&m, &analysis);
        assert!(text.contains("(no loops)"));
    }
}
