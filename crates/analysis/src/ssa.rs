//! SSA dominance verification.
//!
//! Complements `lp_ir::verify_module` (which checks structure and types)
//! with the def-dominates-use property that requires a dominator tree:
//!
//! - for a normal use, the defining instruction must precede the use in
//!   the same block or its block must strictly dominate the use's block;
//! - for a phi incoming `(pred, v)`, the definition of `v` must dominate
//!   the *end of the predecessor block*.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use lp_ir::{BlockId, Function, Inst, IrError, Module, ValueId, ValueKind};

fn def_site(func: &Function, v: ValueId) -> Option<(BlockId, usize)> {
    match func.value(v) {
        ValueKind::Inst(iid) => {
            let data = func.inst(*iid);
            let pos = func
                .block(data.block)
                .insts
                .iter()
                .position(|x| x == iid)
                .expect("instruction listed in its block");
            Some((data.block, pos))
        }
        _ => None, // params/constants dominate everything
    }
}

fn check_use(
    func: &Function,
    dom: &DomTree,
    use_block: BlockId,
    use_pos: usize,
    v: ValueId,
) -> Result<(), IrError> {
    let Some((def_block, def_pos)) = def_site(func, v) else {
        return Ok(());
    };
    let ok = if def_block == use_block {
        def_pos < use_pos
    } else {
        dom.strictly_dominates(def_block, use_block)
    };
    if ok {
        Ok(())
    } else {
        Err(IrError::Invalid(format!(
            "function {}: use of {v} in block {use_block} not dominated by its definition",
            func.name
        )))
    }
}

/// Verifies the SSA dominance property for one function.
///
/// # Errors
/// Returns [`IrError::Invalid`] describing the first violating use.
pub fn verify_ssa_function(func: &Function) -> Result<(), IrError> {
    let cfg = Cfg::new(func);
    let dom = DomTree::new(func, &cfg);
    for bid in func.block_ids() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        let block = func.block(bid);
        for (pos, &iid) in block.insts.iter().enumerate() {
            let data = func.inst(iid);
            if let Inst::Phi { incomings, .. } = &data.inst {
                for (pred, v) in incomings {
                    // Must dominate the end of the predecessor block.
                    if !cfg.is_reachable(*pred) {
                        continue;
                    }
                    let end_pos = func.block(*pred).insts.len();
                    check_use(func, &dom, *pred, end_pos, *v)?;
                }
            } else {
                for v in data.inst.operands() {
                    check_use(func, &dom, bid, pos, v)?;
                }
            }
        }
        // Terminator uses occur at the end of the block.
        let end_pos = block.insts.len();
        if let lp_ir::Term::CondBr { cond, .. } = &block.term {
            check_use(func, &dom, bid, end_pos, *cond)?;
        }
        if let lp_ir::Term::Ret(Some(v)) = &block.term {
            check_use(func, &dom, bid, end_pos, *v)?;
        }
    }
    Ok(())
}

/// Verifies the SSA dominance property for every function of a module.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_ssa(module: &Module) -> Result<(), IrError> {
    for (_, func) in module.iter_functions() {
        verify_ssa_function(func)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{IcmpPred, Type};

    #[test]
    fn valid_loop_passes() {
        let mut fb = FunctionBuilder::new("f", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let f = fb.finish().unwrap();
        assert!(verify_ssa_function(&f).is_ok());
    }

    #[test]
    fn use_before_def_across_branches_fails() {
        // entry -> (a | b) -> join; `x` defined only in `a` but used in
        // join — not dominated.
        let mut fb = FunctionBuilder::new("bad", &[Type::I1], Type::I64);
        let a = fb.create_block("a");
        let b = fb.create_block("b");
        let join = fb.create_block("join");
        let cond = fb.param(0);
        fb.cond_br(cond, a, b);
        fb.switch_to(a);
        let one = fb.const_i64(1);
        let x = fb.add(one, one);
        fb.br(join);
        fb.switch_to(b);
        fb.br(join);
        fb.switch_to(join);
        let y = fb.add(x, one);
        fb.ret(Some(y));
        let f = fb.finish().unwrap();
        // Structurally fine...
        assert!(lp_ir::verify_function(&f, None).is_ok());
        // ...but violates dominance.
        assert!(verify_ssa_function(&f).is_err());
    }

    #[test]
    fn phi_incoming_checked_at_predecessor_end() {
        // Valid: the latch value is defined in the body and flows into the
        // header phi along the body->header edge.
        let mut fb = FunctionBuilder::new("f", &[Type::I1], Type::I64);
        let l = fb.create_block("l");
        let exit = fb.create_block("exit");
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        fb.br(l);
        fb.switch_to(l);
        let p = fb.phi(Type::I64);
        let p2 = fb.add(p, one);
        fb.add_phi_incoming(p, BlockId::ENTRY, zero);
        fb.add_phi_incoming(p, l, p2);
        let c = fb.param(0);
        fb.cond_br(c, l, exit);
        fb.switch_to(exit);
        fb.ret(Some(p2));
        let f = fb.finish().unwrap();
        assert!(verify_ssa_function(&f).is_ok());
    }

    use lp_ir::BlockId;
}
