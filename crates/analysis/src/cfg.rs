//! Control-flow graph helpers: successor/predecessor maps and a
//! reverse-postorder block numbering.

use lp_ir::{BlockId, Function};

/// Precomputed CFG adjacency and orderings for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder (entry first).
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo`, or `usize::MAX` if unreachable.
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG for `func`.
    #[must_use]
    pub fn new(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut succs = Vec::with_capacity(n);
        for bid in func.block_ids() {
            succs.push(func.block(bid).term.successors());
        }
        let mut preds = vec![Vec::new(); n];
        for (b, ss) in succs.iter().enumerate() {
            for s in ss {
                preds[s.index()].push(BlockId(b as u32));
            }
        }
        // Iterative postorder DFS from entry.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::ENTRY, 0)];
        visited[BlockId::ENTRY.index()] = true;
        while let Some(&mut (block, ref mut next)) = stack.last_mut() {
            let ss = &succs[block.index()];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(block);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
        }
    }

    /// Successors of a block.
    #[must_use]
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of a block.
    #[must_use]
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse postorder (entry first). Unreachable blocks are
    /// omitted.
    #[must_use]
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse postorder, if reachable.
    #[must_use]
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.index()];
        (i != usize::MAX).then_some(i)
    }

    /// Returns `true` if `b` is reachable from the entry block.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Number of blocks in the function (including unreachable ones).
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::Type;

    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("d", &[Type::I1], Type::Void);
        let a = fb.create_block("a");
        let b = fb.create_block("b");
        let j = fb.create_block("j");
        let cond = fb.param(0);
        fb.cond_br(cond, a, b);
        fb.switch_to(a);
        fb.br(j);
        fb.switch_to(b);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(None);
        fb.finish().unwrap()
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.rpo()[0], BlockId::ENTRY);
        assert_eq!(cfg.rpo().len(), 4);
        // join must come after both arms.
        let j = cfg.rpo_index(BlockId(3)).unwrap();
        assert!(j > cfg.rpo_index(BlockId(1)).unwrap());
        assert!(j > cfg.rpo_index(BlockId(2)).unwrap());
    }

    #[test]
    fn preds_and_succs_agree() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId::ENTRY), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert!(cfg.preds(BlockId::ENTRY).is_empty());
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut fb = FunctionBuilder::new("u", &[], Type::Void);
        let dead = fb.create_block("dead");
        fb.ret(None);
        fb.switch_to(dead);
        fb.ret(None);
        let f = fb.finish().unwrap();
        let cfg = Cfg::new(&f);
        assert!(cfg.is_reachable(BlockId::ENTRY));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo().len(), 1);
    }
}
