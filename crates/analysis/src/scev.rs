//! Scalar evolution: classification of loop-header phis as *computable*
//! add-recurrences.
//!
//! The paper (§II-A) classifies a register LCD as computable when "a
//! compiler analysis can determine a static, compile-time known scalar
//! evolution expression" — induction variables (`{start,+,step}` with a
//! loop-invariant step), mutual induction variables, and generally any
//! recurrence whose per-iteration value is a function of the iteration
//! index alone. We implement the integer add-recurrence fragment that LLVM
//! SCEV resolves:
//!
//! - the latch update of a phi is decomposed into an **affine expression**
//!   `c0 + Σ ci·xi` over header phis and loop-invariant values (through
//!   `add`, `sub`, `mul`-by-constant and `shl`-by-constant chains);
//! - a phi is computable iff its update's self-coefficient is 0 or 1 and
//!   every other phi it references is itself computable (fixpoint);
//!   self-coefficient 1 yields a (possibly polynomial) add-recurrence,
//!   self-coefficient ≠ {0,1} is a geometric recurrence, which LLVM SCEV
//!   does not express.
//!
//! Floating-point phis are never computable (LLVM SCEV is integer-only);
//! they may still be classified as reductions by [`crate::reduction`].

use crate::loops::{Loop, LoopForest, LoopId};
use lp_ir::{BinOp, Function, Inst, Type, ValueId, ValueKind};
use std::collections::HashMap;

/// SCEV classification of a loop-header phi.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScevClass {
    /// A plain induction variable: `{start, +, step}` with loop-invariant
    /// step and no dependence on other phis.
    Induction,
    /// Computable through other computable phis (mutual induction /
    /// polynomial chains).
    Mutual,
    /// No compile-time scalar evolution exists.
    NonComputable,
}

impl ScevClass {
    /// Returns `true` for [`ScevClass::Induction`] and
    /// [`ScevClass::Mutual`].
    #[must_use]
    pub fn is_computable(self) -> bool {
        !matches!(self, ScevClass::NonComputable)
    }
}

/// Per-loop SCEV results for one function.
#[derive(Debug, Clone, Default)]
pub struct ScevInfo {
    /// For each loop (indexed by [`LoopId`]): the header phis in block
    /// order with their classification.
    per_loop: Vec<Vec<(ValueId, ScevClass)>>,
}

impl ScevInfo {
    /// Runs scalar evolution on every loop of `func`.
    #[must_use]
    pub fn new(func: &Function, forest: &LoopForest) -> ScevInfo {
        let per_loop = forest
            .iter()
            .map(|(_, lp)| classify_loop_phis(func, lp))
            .collect();
        ScevInfo { per_loop }
    }

    /// Header phis and their classes for `loop_id`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[must_use]
    pub fn header_phis(&self, loop_id: LoopId) -> &[(ValueId, ScevClass)] {
        &self.per_loop[loop_id.index()]
    }

    /// Class of a specific phi in a loop, if it is a header phi there.
    #[must_use]
    pub fn class_of(&self, loop_id: LoopId, phi: ValueId) -> Option<ScevClass> {
        self.per_loop[loop_id.index()]
            .iter()
            .find(|(v, _)| *v == phi)
            .map(|(_, c)| *c)
    }
}

/// An affine expression `konst + Σ coeff·value` where values are header
/// phis or loop-invariant values.
#[derive(Debug, Clone, Default)]
struct Affine {
    konst: i64,
    terms: HashMap<ValueId, i64>,
}

impl Affine {
    fn constant(c: i64) -> Affine {
        Affine {
            konst: c,
            terms: HashMap::new(),
        }
    }

    fn term(v: ValueId) -> Affine {
        let mut terms = HashMap::new();
        terms.insert(v, 1);
        Affine { konst: 0, terms }
    }

    fn add(mut self, other: &Affine, sign: i64) -> Affine {
        self.konst = self.konst.wrapping_add(other.konst.wrapping_mul(sign));
        for (v, c) in &other.terms {
            *self.terms.entry(*v).or_insert(0) += c.wrapping_mul(sign);
        }
        self.terms.retain(|_, c| *c != 0);
        self
    }

    fn scale(mut self, k: i64) -> Affine {
        self.konst = self.konst.wrapping_mul(k);
        for c in self.terms.values_mut() {
            *c = c.wrapping_mul(k);
        }
        self.terms.retain(|_, c| *c != 0);
        self
    }

    fn as_constant(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.konst)
    }
}

fn is_loop_invariant(func: &Function, lp: &Loop, v: ValueId) -> bool {
    match func.value(v) {
        ValueKind::Inst(iid) => !lp.contains(func.inst(*iid).block),
        _ => true, // params, constants, global/function addresses
    }
}

/// Decomposes `v` into an affine expression over header phis of `lp` and
/// loop-invariant values. `depth` bounds recursion on pathological chains.
fn decompose(
    func: &Function,
    lp: &Loop,
    header_phis: &[ValueId],
    v: ValueId,
    depth: u32,
) -> Option<Affine> {
    if depth == 0 {
        return None;
    }
    if let ValueKind::ConstInt(c) = func.value(v) {
        return Some(Affine::constant(*c));
    }
    if header_phis.contains(&v) {
        return Some(Affine::term(v));
    }
    if is_loop_invariant(func, lp, v) {
        if func.value_type(v) != Type::I64 {
            return None;
        }
        return Some(Affine::term(v));
    }
    let ValueKind::Inst(iid) = func.value(v) else {
        return None;
    };
    match &func.inst(*iid).inst {
        Inst::Bin { op, lhs, rhs } => {
            let l = decompose(func, lp, header_phis, *lhs, depth - 1);
            let r = decompose(func, lp, header_phis, *rhs, depth - 1);
            match op {
                BinOp::Add => Some(l?.add(&r?, 1)),
                BinOp::Sub => Some(l?.add(&r?, -1)),
                BinOp::Mul => {
                    let (l, r) = (l?, r?);
                    if let Some(k) = r.as_constant() {
                        Some(l.scale(k))
                    } else {
                        l.as_constant().map(|k| r.scale(k))
                    }
                }
                BinOp::Shl => {
                    let (l, r) = (l?, r?);
                    let k = r.as_constant()?;
                    (0..64).contains(&k).then(|| l.scale(1i64 << k))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// A derivable per-iteration step: `konst + Σ coeff·value` over
/// loop-invariant integer values. The replay certifier hands this to the
/// interpreter so it can seed any iteration's induction value in closed
/// form (`entry + k·step`) without running the preceding iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepSpec {
    /// Constant term.
    pub konst: i64,
    /// `(value, coefficient)` terms, every value loop-invariant `I64`,
    /// sorted by value id for determinism.
    pub terms: Vec<(ValueId, i64)>,
}

/// Derives the exact per-iteration step of header phi `phi` of `lp`, or
/// `None` when the phi is not a plain add-recurrence.
///
/// This is stricter than [`ScevClass::Induction`]: the latch update must
/// decompose affinely with a self-coefficient of exactly 1 (so
/// `phi(k) = phi(0) + k·step`), reference no other header phi, and every
/// remaining term must be a loop-invariant integer. Mutual-induction and
/// reset (`self-coefficient 0`) phis are rejected — their closed forms
/// are not a single step expression.
#[must_use]
pub fn derive_step(func: &Function, lp: &Loop, phi: ValueId) -> Option<StepSpec> {
    if lp.latches.len() != 1 || func.value_type(phi) != Type::I64 {
        return None;
    }
    let latch = lp.latches[0];
    let header = func.block(lp.header);
    let mut phis: Vec<ValueId> = Vec::new();
    for &iid in &header.insts {
        let data = func.inst(iid);
        if data.inst.is_phi() {
            phis.push(data.result);
        } else {
            break;
        }
    }
    let ValueKind::Inst(iid) = func.value(phi) else {
        return None;
    };
    let Inst::Phi { incomings, .. } = &func.inst(*iid).inst else {
        return None;
    };
    let (_, update) = incomings.iter().find(|(b, _)| *b == latch)?;
    let a = decompose(func, lp, &phis, *update, 16)?;
    // step = update − phi: the self term must carry coefficient exactly
    // 1, and what remains must be free of other header phis.
    let mut terms: Vec<(ValueId, i64)> = Vec::new();
    let mut self_coeff = 0i64;
    for (&v, &c) in &a.terms {
        if v == phi {
            self_coeff = c;
        } else if phis.contains(&v) {
            return None;
        } else {
            terms.push((v, c));
        }
    }
    if self_coeff != 1 {
        return None;
    }
    terms.sort_unstable_by_key(|(v, _)| v.index());
    Some(StepSpec {
        konst: a.konst,
        terms,
    })
}

/// Classifies the header phis of one loop.
fn classify_loop_phis(func: &Function, lp: &Loop) -> Vec<(ValueId, ScevClass)> {
    let header = func.block(lp.header);
    let mut phis: Vec<ValueId> = Vec::new();
    for &iid in &header.insts {
        let data = func.inst(iid);
        if data.inst.is_phi() {
            phis.push(data.result);
        } else {
            break;
        }
    }
    // Non-canonical (multi-latch) loops: loopsimplify would rewrite them;
    // we conservatively mark every phi non-computable.
    if lp.latches.len() != 1 {
        return phis
            .iter()
            .map(|&p| (p, ScevClass::NonComputable))
            .collect();
    }
    let latch = lp.latches[0];

    // Latch-incoming update value of each phi.
    let mut updates: HashMap<ValueId, ValueId> = HashMap::new();
    for &p in &phis {
        let ValueKind::Inst(iid) = func.value(p) else {
            continue;
        };
        if let Inst::Phi { incomings, .. } = &func.inst(*iid).inst {
            if let Some((_, v)) = incomings.iter().find(|(b, _)| *b == latch) {
                updates.insert(p, *v);
            }
        }
    }

    // Fixpoint: start with every integer phi plausible, drop violators.
    let mut affine: HashMap<ValueId, Option<Affine>> = HashMap::new();
    for &p in &phis {
        let a = if func.value_type(p) == Type::I64 {
            updates
                .get(&p)
                .and_then(|&u| decompose(func, lp, &phis, u, 16))
        } else {
            None
        };
        affine.insert(p, a);
    }
    let mut computable: Vec<ValueId> = phis
        .iter()
        .copied()
        .filter(|p| affine[p].is_some())
        .collect();
    loop {
        let snapshot = computable.clone();
        computable.retain(|&p| {
            let a = affine[&p].as_ref().expect("retained implies some");
            a.terms.iter().all(|(&v, &coeff)| {
                if v == p {
                    coeff == 1 || coeff == 0
                } else if phis.contains(&v) {
                    snapshot.contains(&v)
                } else {
                    true // loop-invariant term
                }
            })
        });
        if computable.len() == snapshot.len() {
            break;
        }
    }

    phis.iter()
        .map(|&p| {
            if !computable.contains(&p) {
                return (p, ScevClass::NonComputable);
            }
            let a = affine[&p].as_ref().expect("computable implies affine");
            let refs_other_phi = a.terms.keys().any(|&v| v != p && phis.contains(&v));
            let class = if refs_other_phi {
                ScevClass::Mutual
            } else {
                ScevClass::Induction
            };
            (p, class)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dom::DomTree;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{BlockId, IcmpPred};

    /// Builds a single loop whose body is produced by `body`, which
    /// receives the builder, the set of header phis it should fill, and
    /// returns latch updates for each phi. Phi 0 is always the counter.
    fn one_loop(
        extra_phis: &[Type],
        body: impl FnOnce(&mut FunctionBuilder, &[ValueId]) -> Vec<ValueId>,
    ) -> (Function, LoopForest) {
        let mut fb = FunctionBuilder::new("f", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let fzero = fb.const_f64(0.0);
        let header = fb.create_block("header");
        let bodyb = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let mut phis = vec![i];
        for &ty in extra_phis {
            phis.push(fb.phi(ty));
        }
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, bodyb, exit);
        fb.switch_to(bodyb);
        let i2 = fb.add(i, one);
        let mut updates = vec![i2];
        updates.extend(body(&mut fb, &phis));
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, bodyb, i2);
        for (k, &p) in phis.iter().enumerate().skip(1) {
            let init = if extra_phis[k - 1] == Type::F64 {
                fzero
            } else {
                zero
            };
            fb.add_phi_incoming(p, BlockId::ENTRY, init);
            fb.add_phi_incoming(p, bodyb, updates[k]);
        }
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let f = fb.finish().unwrap();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        (f, forest)
    }

    #[test]
    fn plain_counter_is_induction() {
        let (f, forest) = one_loop(&[], |_, _| vec![]);
        let scev = ScevInfo::new(&f, &forest);
        let phis = scev.header_phis(LoopId(0));
        assert_eq!(phis.len(), 1);
        assert_eq!(phis[0].1, ScevClass::Induction);
    }

    #[test]
    fn mutual_induction_detected() {
        // j_{n+1} = i_n * 3 + 2 — computable through i.
        let (f, forest) = one_loop(&[Type::I64], |fb, phis| {
            let three = fb.const_i64(3);
            let two = fb.const_i64(2);
            let t = fb.mul(phis[0], three);
            let j2 = fb.add(t, two);
            vec![j2]
        });
        let scev = ScevInfo::new(&f, &forest);
        let phis = scev.header_phis(LoopId(0));
        assert_eq!(phis[1].1, ScevClass::Mutual);
    }

    #[test]
    fn polynomial_chain_is_computable() {
        // s_{n+1} = s_n + i_n — a second-order (triangular-number) chain.
        let (f, forest) = one_loop(&[Type::I64], |fb, phis| {
            let s2 = fb.add(phis[1], phis[0]);
            vec![s2]
        });
        let scev = ScevInfo::new(&f, &forest);
        let phis = scev.header_phis(LoopId(0));
        assert_eq!(phis[1].1, ScevClass::Mutual);
    }

    #[test]
    fn geometric_recurrence_not_computable() {
        // x_{n+1} = 2*x_n + 1 — geometric, no SCEV.
        let (f, forest) = one_loop(&[Type::I64], |fb, phis| {
            let two = fb.const_i64(2);
            let one = fb.const_i64(1);
            let t = fb.mul(phis[1], two);
            let x2 = fb.add(t, one);
            vec![x2]
        });
        let scev = ScevInfo::new(&f, &forest);
        let phis = scev.header_phis(LoopId(0));
        assert_eq!(phis[1].1, ScevClass::NonComputable);
    }

    #[test]
    fn loaded_value_not_computable() {
        // p_{n+1} = load(p_n as address base) — pointer chasing.
        let (f, forest) = one_loop(&[Type::I64], |fb, phis| {
            let base = fb.const_null();
            let a = fb.gep(base, phis[1], 8, 0);
            let x = fb.load(Type::I64, a);
            vec![x]
        });
        let scev = ScevInfo::new(&f, &forest);
        let phis = scev.header_phis(LoopId(0));
        assert_eq!(phis[1].1, ScevClass::NonComputable);
    }

    #[test]
    fn float_phi_not_computable() {
        let (f, forest) = one_loop(&[Type::F64], |fb, phis| {
            let c = fb.const_f64(0.5);
            let x2 = fb.fadd(phis[1], c);
            vec![x2]
        });
        let scev = ScevInfo::new(&f, &forest);
        let phis = scev.header_phis(LoopId(0));
        assert_eq!(phis[1].1, ScevClass::NonComputable);
    }

    #[test]
    fn strided_iv_with_invariant_step() {
        // k_{n+1} = k_n + n (param is loop-invariant).
        let (f, forest) = one_loop(&[Type::I64], |fb, phis| {
            let step = fb.param(0);
            let k2 = fb.add(phis[1], step);
            vec![k2]
        });
        let scev = ScevInfo::new(&f, &forest);
        let phis = scev.header_phis(LoopId(0));
        assert_eq!(phis[1].1, ScevClass::Induction);
        assert!(phis[1].1.is_computable());
    }

    #[test]
    fn mutual_pair_where_one_breaks_drags_other_down() {
        // a_{n+1} = b_n + 1; b_{n+1} = load(...) — b non-computable, so a
        // must be too.
        let (f, forest) = one_loop(&[Type::I64, Type::I64], |fb, phis| {
            let one = fb.const_i64(1);
            let a2 = fb.add(phis[2], one);
            let base = fb.const_null();
            let addr = fb.gep(base, phis[2], 8, 0);
            let b2 = fb.load(Type::I64, addr);
            vec![a2, b2]
        });
        let scev = ScevInfo::new(&f, &forest);
        let phis = scev.header_phis(LoopId(0));
        assert_eq!(phis[1].1, ScevClass::NonComputable);
        assert_eq!(phis[2].1, ScevClass::NonComputable);
    }
}
