//! Dominator tree, via the Cooper–Harvey–Kennedy iterative algorithm
//! ("A Simple, Fast Dominance Algorithm").

use crate::cfg::Cfg;
use lp_ir::{BlockId, Function};

/// Dominator tree for one function. Unreachable blocks have no dominator
/// information.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (`None` for entry / unreachable).
    idom: Vec<Option<BlockId>>,
    /// DFS pre/post numbering of the dominator tree for O(1) dominance
    /// queries.
    pre: Vec<u32>,
    post: Vec<u32>,
}

impl DomTree {
    /// Computes the dominator tree.
    #[must_use]
    pub fn new(func: &Function, cfg: &Cfg) -> DomTree {
        let n = func.blocks.len();
        let rpo = cfg.rpo();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if !rpo.is_empty() {
            idom[BlockId::ENTRY.index()] = Some(BlockId::ENTRY);
            let mut changed = true;
            while changed {
                changed = false;
                for &b in rpo.iter().skip(1) {
                    let mut new_idom: Option<BlockId> = None;
                    for &p in cfg.preds(b) {
                        if idom[p.index()].is_none() {
                            continue; // unreachable or not yet processed
                        }
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, cfg, cur, p),
                        });
                    }
                    if let Some(ni) = new_idom {
                        if idom[b.index()] != Some(ni) {
                            idom[b.index()] = Some(ni);
                            changed = true;
                        }
                    }
                }
            }
            // Entry's idom is conventionally itself during the fixpoint;
            // expose it as None (roots have no immediate dominator).
            idom[BlockId::ENTRY.index()] = None;
        }

        // Build children lists and DFS-number the dominator tree.
        let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (b, d) in idom.iter().enumerate() {
            if let Some(d) = d {
                children[d.index()].push(BlockId(b as u32));
            }
        }
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut clock = 1u32;
        if n > 0 && cfg.is_reachable(BlockId::ENTRY) {
            let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::ENTRY, 0)];
            pre[BlockId::ENTRY.index()] = clock;
            clock += 1;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                let cs = &children[b.index()];
                if *next < cs.len() {
                    let c = cs[*next];
                    *next += 1;
                    pre[c.index()] = clock;
                    clock += 1;
                    stack.push((c, 0));
                } else {
                    post[b.index()] = clock;
                    clock += 1;
                    stack.pop();
                }
            }
        }
        DomTree { idom, pre, post }
    }

    /// Immediate dominator of `b` (`None` for the entry block and
    /// unreachable blocks).
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Returns `true` if `a` dominates `b` (reflexive: every reachable
    /// block dominates itself). Unreachable blocks dominate nothing and are
    /// dominated by nothing.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let (pa, pb) = (self.pre[a.index()], self.pre[b.index()]);
        if pa == 0 || pb == 0 {
            return false;
        }
        pa <= pb && self.post[a.index()] >= self.post[b.index()]
    }

    /// Returns `true` if `a` strictly dominates `b`.
    #[must_use]
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }
}

fn intersect(idom: &[Option<BlockId>], cfg: &Cfg, mut a: BlockId, mut b: BlockId) -> BlockId {
    // Walk up the current idom approximation using RPO indices.
    let index = |x: BlockId| cfg.rpo_index(x).expect("reachable");
    while a != b {
        while index(a) > index(b) {
            a = idom[a.index()].expect("idom set");
        }
        while index(b) > index(a) {
            b = idom[b.index()].expect("idom set");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::Type;

    /// entry -> (a | b) -> join -> (loop back to a? no) ret. Plus a loop:
    /// entry -> header; header -> body -> header; header -> exit.
    fn loop_fn() -> Function {
        let mut fb = FunctionBuilder::new("l", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(lp_ir::IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        fb.finish().unwrap()
    }

    #[test]
    fn loop_dominators() {
        let f = loop_fn();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let (entry, header, body, exit) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(header), Some(entry));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, body));
        assert!(dom.dominates(header, exit));
        assert!(dom.dominates(header, header));
        assert!(!dom.dominates(body, exit));
        assert!(dom.strictly_dominates(entry, exit));
        assert!(!dom.strictly_dominates(header, header));
    }

    #[test]
    fn diamond_join_dominated_by_entry_only() {
        let mut fb = FunctionBuilder::new("d", &[Type::I1], Type::Void);
        let a = fb.create_block("a");
        let b = fb.create_block("b");
        let j = fb.create_block("j");
        let cond = fb.param(0);
        fb.cond_br(cond, a, b);
        fb.switch_to(a);
        fb.br(j);
        fb.switch_to(b);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(None);
        let f = fb.finish().unwrap();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        assert_eq!(dom.idom(j), Some(BlockId::ENTRY));
        assert!(!dom.dominates(a, j));
        assert!(!dom.dominates(b, j));
    }

    #[test]
    fn unreachable_blocks_have_no_dominators() {
        let mut fb = FunctionBuilder::new("u", &[], Type::Void);
        let dead = fb.create_block("dead");
        fb.ret(None);
        fb.switch_to(dead);
        fb.ret(None);
        let f = fb.finish().unwrap();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        assert_eq!(dom.idom(dead), None);
        assert!(!dom.dominates(BlockId::ENTRY, dead));
        assert!(!dom.dominates(dead, BlockId::ENTRY));
    }
}
