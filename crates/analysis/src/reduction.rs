//! Reduction (recurrence-descriptor) detection.
//!
//! A header phi is a *reduction accumulator* (paper §II-A) when its only
//! in-loop use is a read-modify-write chain of a single associative,
//! commutative opcode whose result feeds back into the phi at the latch.
//! Such LCDs "may be decoupled from the remainder of the execution of the
//! loop" by tree/linear-chain reduction hardware (e.g. Arm SVE), so under
//! `reduc1` they stop being serializing dependencies.
//!
//! This mirrors LLVM's `RecurrenceDescriptor` for binary-op reductions
//! (`add`, `mul`, bitwise ops, min/max — both integer and fast-math float).

use crate::loops::Loop;
use lp_ir::{BinOp, Function, Inst, InstId, ValueId, ValueKind};

/// Tries to recognize `phi` (a header phi of `lp` with latch update
/// `update`) as a reduction. Returns the reduction opcode on success.
/// Recognizes both binary-op accumulation chains and the select/compare
/// min-max idiom (`m' = select(cmp(m, x), m, x)`).
#[must_use]
pub fn detect_reduction(
    func: &Function,
    lp: &Loop,
    phi: ValueId,
    update: ValueId,
) -> Option<BinOp> {
    if let Some(op) = detect_select_minmax(func, lp, phi, update) {
        return Some(op);
    }
    // The update must be a reduction-op chain containing exactly one leaf
    // occurrence of the phi.
    let ValueKind::Inst(top) = func.value(update) else {
        return None;
    };
    let Inst::Bin { op, .. } = func.inst(*top).inst else {
        return None;
    };
    if !op.is_reduction_op() {
        return None;
    }
    let mut chain: Vec<InstId> = Vec::new();
    let leaf_count = collect_chain(func, lp, op, update, phi, &mut chain)?;
    if leaf_count != 1 || chain.is_empty() {
        return None;
    }
    // Every in-loop use of the phi AND of every intermediate chain value
    // must stay inside the chain (the final update value may additionally
    // feed the phi's latch edge, which is not an instruction use). If a
    // partial sum escapes — e.g. `x += a[i]` where each `x` is also used
    // as a position — the accumulator cannot be decoupled, matching
    // LLVM's RecurrenceDescriptor.
    let chain_results: Vec<_> = chain.iter().map(|iid| func.inst(*iid).result).collect();
    for &b in &lp.blocks {
        for &iid in &func.block(b).insts {
            let data = func.inst(iid);
            if data.result == phi || chain.contains(&iid) {
                continue; // the phi itself or a chain link
            }
            if data
                .inst
                .operands()
                .any(|o| o == phi || chain_results.contains(&o))
            {
                return None;
            }
        }
        // Uses in terminators (e.g. compares feed condbr via an icmp
        // instruction, which is already covered above); `ret`/`condbr`
        // cannot use an i64/f64 phi directly except `ret`, which is
        // outside the loop for natural loops with in-loop latches.
    }
    Some(op)
}

/// Collects the same-opcode instruction chain from `v` down to `phi`,
/// returning the number of leaf occurrences of `phi`. Returns `None` if a
/// different opcode intervenes on a path that reaches the phi.
fn collect_chain(
    func: &Function,
    lp: &Loop,
    op: BinOp,
    v: ValueId,
    phi: ValueId,
    chain: &mut Vec<InstId>,
) -> Option<usize> {
    if v == phi {
        return Some(1);
    }
    let ValueKind::Inst(iid) = func.value(v) else {
        return Some(0);
    };
    let data = func.inst(*iid);
    if !lp.contains(data.block) {
        return Some(0);
    }
    match &data.inst {
        Inst::Bin { op: o, lhs, rhs } if *o == op => {
            let l = collect_chain(func, lp, op, *lhs, phi, chain)?;
            let r = collect_chain(func, lp, op, *rhs, phi, chain)?;
            if l + r > 0 {
                chain.push(*iid);
            }
            Some(l + r)
        }
        _ => {
            // A non-chain instruction: fine as long as the phi does not
            // hide beneath it.
            if value_reaches(func, lp, *iid, phi) {
                None
            } else {
                Some(0)
            }
        }
    }
}

/// Recognizes the select/compare min-max reduction idiom:
/// `m' = select(cmp(m, x), a, b)` where `{a, b} = {m, x}` and `m`'s only
/// in-loop uses are the compare and the select. Returns the equivalent
/// min/max opcode (by operand type; the exact min-vs-max flavour depends
/// on predicate and arm order, which does not matter for decoupling).
fn detect_select_minmax(
    func: &Function,
    lp: &Loop,
    phi: ValueId,
    update: ValueId,
) -> Option<BinOp> {
    let ValueKind::Inst(sel_id) = func.value(update) else {
        return None;
    };
    let Inst::Select {
        cond,
        then_val,
        else_val,
    } = &func.inst(*sel_id).inst
    else {
        return None;
    };
    // One arm must be the phi, the other the compared value.
    let other = if *then_val == phi {
        *else_val
    } else if *else_val == phi {
        *then_val
    } else {
        return None;
    };
    let ValueKind::Inst(cmp_id) = func.value(*cond) else {
        return None;
    };
    let (is_float, l, r) = match &func.inst(*cmp_id).inst {
        Inst::Icmp { lhs, rhs, .. } => (false, *lhs, *rhs),
        Inst::Fcmp { lhs, rhs, .. } => (true, *lhs, *rhs),
        _ => return None,
    };
    // The compare must be between the phi and the other arm.
    if !((l == phi && r == other) || (l == other && r == phi)) {
        return None;
    }
    // The phi must have no other in-loop uses.
    for &b in &lp.blocks {
        for &iid in &func.block(b).insts {
            if iid == *sel_id || iid == *cmp_id {
                continue;
            }
            let data = func.inst(iid);
            if data.result == phi {
                continue;
            }
            if data.inst.operands().any(|o| o == phi) {
                return None;
            }
        }
    }
    Some(if is_float { BinOp::FMax } else { BinOp::SMax })
}

/// Exact check whether `phi` feeds (transitively, through in-loop
/// non-phi definitions) into `iid`. Worklist over the def DAG with a
/// visited set, so arbitrarily deep chains are handled.
fn value_reaches(func: &Function, lp: &Loop, iid: InstId, phi: ValueId) -> bool {
    let mut visited: std::collections::HashSet<InstId> = std::collections::HashSet::new();
    let mut work = vec![iid];
    while let Some(cur) = work.pop() {
        if !visited.insert(cur) {
            continue;
        }
        let data = func.inst(cur);
        for op in data.inst.operands() {
            if op == phi {
                return true;
            }
            if let ValueKind::Inst(sub) = func.value(op) {
                // Only chase defs inside the loop; values from outside
                // cannot contain this iteration's phi. Skip phis: their
                // values come from previous iterations or the preheader.
                let sub_data = func.inst(*sub);
                if lp.contains(sub_data.block) && !sub_data.inst.is_phi() {
                    work.push(*sub);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dom::DomTree;
    use crate::loops::LoopForest;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{BlockId, IcmpPred, Type};

    /// Loop skeleton with one extra phi; `body` returns its latch update.
    fn reduction_loop(
        phi_ty: Type,
        body: impl FnOnce(&mut FunctionBuilder, ValueId, ValueId) -> ValueId,
    ) -> (Function, LoopForest, ValueId, ValueId) {
        let mut fb = FunctionBuilder::new("f", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let bodyb = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let acc = fb.phi(phi_ty);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, bodyb, exit);
        fb.switch_to(bodyb);
        let update = body(&mut fb, acc, i);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, bodyb, i2);
        let init = if phi_ty == Type::F64 {
            fb.const_f64(0.0)
        } else {
            zero
        };
        fb.add_phi_incoming(acc, BlockId::ENTRY, init);
        fb.add_phi_incoming(acc, bodyb, update);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        let f = fb.finish().unwrap();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        (f, forest, acc, update)
    }

    #[test]
    fn integer_sum_is_a_reduction() {
        let (f, forest, acc, update) = reduction_loop(Type::I64, |fb, acc, i| fb.add(acc, i));
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), Some(BinOp::Add));
    }

    #[test]
    fn float_product_is_a_reduction() {
        let (f, forest, acc, update) = reduction_loop(Type::F64, |fb, acc, i| {
            let x = fb.sitofp(i);
            fb.fmul(acc, x)
        });
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), Some(BinOp::FMul));
    }

    #[test]
    fn max_reduction_via_binop() {
        let (f, forest, acc, update) =
            reduction_loop(Type::I64, |fb, acc, i| fb.bin(BinOp::SMax, acc, i));
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), Some(BinOp::SMax));
    }

    #[test]
    fn chained_adds_in_one_iteration_still_reduce() {
        // acc' = (acc + a) + b — a two-link chain.
        let (f, forest, acc, update) = reduction_loop(Type::I64, |fb, acc, i| {
            let two = fb.const_i64(2);
            let t = fb.add(acc, i);
            fb.add(t, two)
        });
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), Some(BinOp::Add));
    }

    #[test]
    fn select_minmax_idiom_detected() {
        // m' = select(m < x, x, m) — max via compare+select.
        let (f, forest, acc, update) = reduction_loop(Type::I64, |fb, acc, i| {
            let c = fb.icmp(IcmpPred::Slt, acc, i);
            fb.select(c, i, acc)
        });
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), Some(BinOp::SMax));
    }

    #[test]
    fn float_select_minmax_idiom_detected() {
        let (f, forest, acc, update) = reduction_loop(Type::F64, |fb, acc, i| {
            let x = fb.sitofp(i);
            let c = fb.fcmp(lp_ir::FcmpPred::Ogt, acc, x);
            fb.select(c, acc, x)
        });
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), Some(BinOp::FMax));
    }

    #[test]
    fn select_with_foreign_arm_is_not_minmax() {
        // select(m < x, x+1, m) — the taken arm is not the compared value.
        let (f, forest, acc, update) = reduction_loop(Type::I64, |fb, acc, i| {
            let c = fb.icmp(IcmpPred::Slt, acc, i);
            let one = fb.const_i64(1);
            let xp = fb.add(i, one);
            fb.select(c, xp, acc)
        });
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), None);
    }

    #[test]
    fn select_minmax_with_escaping_phi_rejected() {
        // The accumulator is also stored each iteration: not decouplable.
        let (f, forest, acc, update) = reduction_loop(Type::I64, |fb, acc, i| {
            let p = fb.const_null();
            fb.store(acc, p);
            let c = fb.icmp(IcmpPred::Slt, acc, i);
            fb.select(c, i, acc)
        });
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), None);
    }

    #[test]
    fn subtraction_is_not_a_reduction() {
        let (f, forest, acc, update) = reduction_loop(Type::I64, |fb, acc, i| fb.sub(acc, i));
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), None);
    }

    #[test]
    fn extra_use_of_accumulator_disqualifies() {
        // The accumulator is also stored to memory each iteration — its
        // per-iteration value escapes, so it cannot be decoupled.
        let (f, forest, acc, update) = reduction_loop(Type::I64, |fb, acc, i| {
            let p = fb.const_null();
            fb.store(acc, p);
            fb.add(acc, i)
        });
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), None);
    }

    #[test]
    fn mixed_opcode_on_phi_path_disqualifies() {
        // acc' = (acc * 3) + i — the phi flows through a `mul` into an
        // `add` chain: not a single-op reduction.
        let (f, forest, acc, update) = reduction_loop(Type::I64, |fb, acc, i| {
            let three = fb.const_i64(3);
            let t = fb.mul(acc, three);
            fb.add(t, i)
        });
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), None);
    }

    #[test]
    fn phi_used_twice_disqualifies() {
        // acc' = acc + acc — doubling, not an accumulation over new values.
        let (f, forest, acc, update) = reduction_loop(Type::I64, |fb, acc, _i| fb.add(acc, acc));
        let lp = &forest.loops()[0];
        assert_eq!(detect_reduction(&f, lp, acc, update), None);
    }
}
