//! Golden tests pinning the captured `results/` quickstart artifacts:
//! regenerating them through the `lpstudy` binary must reproduce the
//! committed files — byte-for-byte where the content is deterministic
//! (the explain JSON and collapsed stacks), structurally where wall
//! clock timings are embedded (the Chrome trace's span-name sequence).
//!
//! To refresh after an intentional pipeline change:
//!
//! ```text
//! cargo run --release -p lp-bench --bin lpstudy -- explain \
//!   --explain-out results/explain-quickstart.json
//! cargo run --release -p lp-bench --bin lpstudy -- --trace-out results/trace-quickstart.json
//! cargo run --release -p lp-bench --bin lpstudy -- replay test --jobs 2 \
//!   --replay-out results/replay-quickstart.json
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench; results/ sits at the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn lpstudy(args: &[&str]) {
    let out = Command::new(env!("CARGO_BIN_EXE_lpstudy"))
        .args(args)
        .env("LP_LOG", "off")
        .output()
        .expect("lpstudy runs");
    assert!(
        out.status.success(),
        "lpstudy {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn explain_quickstart_json_regenerates_byte_identically() {
    let dir = std::env::temp_dir();
    let json = dir.join(format!("lp-golden-explain-{}.json", std::process::id()));
    lpstudy(&[
        "explain",
        "--quiet",
        "--explain-out",
        json.to_str().unwrap(),
    ]);
    let fresh = std::fs::read_to_string(&json).unwrap();
    let golden =
        std::fs::read_to_string(repo_root().join("results/explain-quickstart.json")).unwrap();
    assert_eq!(
        fresh, golden,
        "explain-quickstart.json drifted — if the change is intentional, \
         regenerate it (see this test's module docs)"
    );
    let fresh_collapsed = std::fs::read_to_string(json.with_extension("collapsed")).unwrap();
    let golden_collapsed =
        std::fs::read_to_string(repo_root().join("results/explain-quickstart.collapsed")).unwrap();
    assert_eq!(
        fresh_collapsed, golden_collapsed,
        "explain-quickstart.collapsed drifted"
    );
    let _ = std::fs::remove_file(&json);
    let _ = std::fs::remove_file(json.with_extension("collapsed"));
}

/// The bytecode engine pins to the *same* golden file: `--engine bc`
/// must reproduce `results/explain-quickstart.*` byte-for-byte, because
/// the engines are observationally identical and the explain pipeline
/// is deterministic.
#[test]
fn explain_quickstart_json_is_engine_invariant() {
    let dir = std::env::temp_dir();
    let json = dir.join(format!("lp-golden-explain-bc-{}.json", std::process::id()));
    lpstudy(&[
        "explain",
        "--quiet",
        "--engine",
        "bc",
        "--explain-out",
        json.to_str().unwrap(),
    ]);
    let fresh = std::fs::read_to_string(&json).unwrap();
    let golden =
        std::fs::read_to_string(repo_root().join("results/explain-quickstart.json")).unwrap();
    assert_eq!(
        fresh, golden,
        "explain-quickstart.json differs under --engine bc — the bytecode \
         engine must be observationally identical to the tree walk"
    );
    let fresh_collapsed = std::fs::read_to_string(json.with_extension("collapsed")).unwrap();
    let golden_collapsed =
        std::fs::read_to_string(repo_root().join("results/explain-quickstart.collapsed")).unwrap();
    assert_eq!(
        fresh_collapsed, golden_collapsed,
        "explain-quickstart.collapsed differs under --engine bc"
    );
    let _ = std::fs::remove_file(&json);
    let _ = std::fs::remove_file(json.with_extension("collapsed"));
}

/// The ordered `"name"` values of a Chrome trace — the structural
/// skeleton that survives timing jitter.
fn span_names(trace: &str) -> Vec<String> {
    lp_obs::validate_json(trace).expect("trace must be valid JSON");
    let mut names = Vec::new();
    let mut rest = trace;
    while let Some(at) = rest.find("\"name\":\"") {
        let tail = &rest[at + 8..];
        let end = tail.find('"').expect("terminated name");
        names.push(tail[..end].to_string());
        rest = &tail[end..];
    }
    names
}

/// Masks the wall-clock-derived values of an `lp-replay-v1` document
/// (`serial_ns`, `parallel_ns`, `measured_speedup`) so the rest — the
/// schema, loop/rejection structure, iteration counts, and predicted
/// speedups — can be compared byte-for-byte.
fn mask_replay_timings(json: &str) -> String {
    lp_obs::validate_json(json).expect("lp-replay-v1 must be valid JSON");
    json.lines()
        .map(|line| {
            let trimmed = line.trim_start();
            for key in [
                "\"serial_ns\":",
                "\"parallel_ns\":",
                "\"measured_speedup\":",
            ] {
                if trimmed.starts_with(key) {
                    let indent = &line[..line.len() - trimmed.len()];
                    let comma = if trimmed.trim_end().ends_with(',') {
                        ","
                    } else {
                        ""
                    };
                    return format!("{indent}{key} <t>{comma}");
                }
            }
            line.to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn replay_quickstart_has_stable_schema_and_loop_structure() {
    let dir = std::env::temp_dir();
    let json = dir.join(format!("lp-golden-replay-{}.json", std::process::id()));
    lpstudy(&[
        "replay",
        "test",
        "--quiet",
        "--jobs",
        "2",
        "--replay-out",
        json.to_str().unwrap(),
    ]);
    let fresh = std::fs::read_to_string(&json).unwrap();
    let golden =
        std::fs::read_to_string(repo_root().join("results/replay-quickstart.json")).unwrap();
    assert_eq!(
        mask_replay_timings(&fresh),
        mask_replay_timings(&golden),
        "replay-quickstart.json structure drifted — if the change is \
         intentional, regenerate it (see this test's module docs)"
    );
    let _ = std::fs::remove_file(&json);
}

/// As above, through the bytecode engine: everything but wall clock in
/// `results/replay-quickstart.json` must match the committed tree-walk
/// golden when the replay pipeline runs under `--engine bc`.
#[test]
fn replay_quickstart_is_engine_invariant() {
    let dir = std::env::temp_dir();
    let json = dir.join(format!("lp-golden-replay-bc-{}.json", std::process::id()));
    lpstudy(&[
        "replay",
        "test",
        "--quiet",
        "--engine",
        "bc",
        "--jobs",
        "2",
        "--replay-out",
        json.to_str().unwrap(),
    ]);
    let fresh = std::fs::read_to_string(&json).unwrap();
    let golden =
        std::fs::read_to_string(repo_root().join("results/replay-quickstart.json")).unwrap();
    assert_eq!(
        mask_replay_timings(&fresh),
        mask_replay_timings(&golden),
        "replay-quickstart.json structure differs under --engine bc"
    );
    let _ = std::fs::remove_file(&json);
}

#[test]
fn trace_quickstart_has_stable_span_structure() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("lp-golden-trace-{}.json", std::process::id()));
    lpstudy(&["--quiet", "--trace-out", trace.to_str().unwrap()]);
    let fresh = std::fs::read_to_string(&trace).unwrap();
    let golden =
        std::fs::read_to_string(repo_root().join("results/trace-quickstart.json")).unwrap();
    assert_eq!(
        span_names(&fresh),
        span_names(&golden),
        "trace-quickstart.json span structure drifted — if the change is \
         intentional, regenerate it (see this test's module docs)"
    );
    let _ = std::fs::remove_file(&trace);
}
