//! End-to-end contract of `--snapshot-out` and `lpstudy diff`: two
//! runs of the same deterministic workload must diff to silence, while
//! a run whose profile-store cache goes from cold to warm must surface
//! `store_hits`/`store_misses` at the top of the ranking — the diff
//! separating real behaviour changes from run-to-run noise.

use lp_obs::export::JsonValue;
use std::path::PathBuf;
use std::process::{Command, Output};

fn lpstudy(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lpstudy"))
        .args(args)
        .env("LP_LOG", "off")
        .env_remove("LP_PROFILE_CACHE")
        .output()
        .expect("spawn lpstudy")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lp-snapcli-{name}-{}", std::process::id()))
}

fn capture(snapshot: &str, extra: &[&str]) {
    let mut args = vec![
        "--bench",
        "eembc.matrix01",
        "--quiet",
        "--snapshot-out",
        snapshot,
    ];
    args.extend_from_slice(extra);
    let out = lpstudy(&args);
    assert!(
        out.status.success(),
        "lpstudy failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn same_seed_runs_diff_to_zero_significant_divergences() {
    let a = tmp("same-a.json");
    let b = tmp("same-b.json");
    capture(a.to_str().unwrap(), &[]);
    capture(b.to_str().unwrap(), &[]);

    let out = lpstudy(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "diff failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 significant"),
        "same-seed runs diverged:\n{stdout}"
    );

    // The snapshots themselves audit clean, too.
    let out = lpstudy(&["audit", a.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "audit failed: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn cold_vs_warm_profile_cache_ranks_store_counters_on_top() {
    let cache = tmp("cache-dir");
    let _ = std::fs::remove_dir_all(&cache);
    let cold = tmp("cold.json");
    let warm = tmp("warm.json");
    // First run populates the store (all misses), second replays it
    // (all hits) — the one intended behaviour change between the runs.
    capture(
        cold.to_str().unwrap(),
        &["--profile-cache", cache.to_str().unwrap()],
    );
    capture(
        warm.to_str().unwrap(),
        &["--profile-cache", cache.to_str().unwrap()],
    );

    // One bench run performs exactly one store lookup, so the flip is
    // a ±1 counter move — lower the absolute noise floor to see it.
    let out = lpstudy(&[
        "diff",
        cold.to_str().unwrap(),
        warm.to_str().unwrap(),
        "--json",
        "--noise-floor",
        "1",
    ]);
    assert!(
        out.status.success(),
        "diff failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = JsonValue::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("diff --json emits valid JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("lp-diff-v1")
    );
    let counters = doc
        .get("counters")
        .and_then(JsonValue::as_array)
        .expect("counters array");

    let pos = |name: &str| {
        counters
            .iter()
            .position(|c| c.get("name").and_then(JsonValue::as_str) == Some(name))
            .unwrap_or_else(|| panic!("{name} missing from the diff"))
    };
    let hits = pos("store_hits");
    let misses = pos("store_misses");
    for i in [hits, misses] {
        assert_eq!(
            counters[i].get("significant").and_then(JsonValue::as_bool),
            Some(true),
            "store counter not flagged: {:?}",
            counters[i]
        );
    }
    // The ranking puts the cache flip at the top: anything sorted above
    // the store counters can only be an equally-maximal divergence
    // (relative delta 1.0 — appeared from or vanished to zero).
    for entry in &counters[..hits.max(misses)] {
        let rel = entry.get("rel").and_then(JsonValue::as_f64).unwrap_or(0.0);
        assert!(
            (rel - 1.0).abs() < 1e-9,
            "non-maximal divergence outranks the cache flip: {entry:?}"
        );
    }

    let _ = std::fs::remove_file(&cold);
    let _ = std::fs::remove_file(&warm);
    let _ = std::fs::remove_dir_all(&cache);
}
