//! End-to-end contract of the run ledger and the `lpbench trend`
//! regression sentinel: three consecutive stable appends keep the gate
//! green, an injected ≥10% slowdown trips it with the distinct exit
//! code 2, and a real measuring run appends one parseable record.

use lp_obs::trend::{append_ledger, read_ledger, TrendRecord};
use std::path::PathBuf;
use std::process::{Command, Output};

fn lpbench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lpbench"))
        .args(args)
        .env("LP_LOG", "off")
        .env_remove("LP_PROFILE_CACHE")
        .output()
        .expect("spawn lpbench")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lp-{name}-{}", std::process::id()))
}

/// A ledger record in one fixed series with the given throughput.
fn record(profile_mips: f64, seq: u64) -> TrendRecord {
    TrendRecord {
        bench: "eembc.matrix01".to_string(),
        scale: "test".to_string(),
        label: String::new(),
        reps: 3,
        unix_ms: 1_700_000_000_000 + seq,
        machine: "deadbeefdeadbeef".to_string(),
        profile_mips,
        interp_mips: profile_mips * 12.0,
        slowdown: 12.0,
        journal_overhead: 0.004,
        counters: vec![("loop_instances".to_string(), 42)],
    }
}

#[test]
fn three_stable_runs_pass_and_an_injected_slowdown_exits_2() {
    let ledger = tmp("trend-gate.jsonl");
    let _ = std::fs::remove_file(&ledger);
    let path = ledger.to_str().unwrap();

    // Three consecutive appended runs on an unchanged tree: each check
    // in turn must pass (the first ones trivially — a fresh ledger has
    // too little history to fail).
    for (seq, mips) in [(0, 46.0), (1, 46.2), (2, 45.9)] {
        append_ledger(&ledger, &record(mips, seq)).unwrap();
        let out = lpbench(&["trend", "--ledger", path, "--check"]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "stable run {seq} failed: {}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // A fourth stable point passes with full history...
    append_ledger(&ledger, &record(46.1, 3)).unwrap();
    let out = lpbench(&["trend", "--ledger", path, "--check"]);
    assert_eq!(out.status.code(), Some(0));

    // ...but a ≥10% slowdown falls outside the noise band: exit 2, the
    // code CI distinguishes from crashes (1) and usage errors (2 comes
    // only from the verdict path here — stderr stays empty).
    append_ledger(&ledger, &record(46.0 * 0.88, 4)).unwrap();
    let out = lpbench(&["trend", "--ledger", path, "--check"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "slowdown not caught: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "verdict missing: {stdout}");

    // Without --check the same ledger only summarises (exit 0).
    let out = lpbench(&["trend", "--ledger", path]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("5 record(s)"));

    let _ = std::fs::remove_file(&ledger);
}

#[test]
fn checking_an_empty_ledger_fails_but_summarising_does_not() {
    let ledger = tmp("trend-empty.jsonl");
    let _ = std::fs::remove_file(&ledger);
    let path = ledger.to_str().unwrap();
    let out = lpbench(&["trend", "--ledger", path]);
    assert_eq!(out.status.code(), Some(0));
    let out = lpbench(&["trend", "--ledger", path, "--check"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn a_measuring_run_appends_one_self_describing_record() {
    let ledger = tmp("trend-append.jsonl");
    let _ = std::fs::remove_file(&ledger);
    let path = ledger.to_str().unwrap();
    let out = lpbench(&[
        "test",
        "--bench",
        "eembc.matrix01",
        "--reps",
        "1",
        "--trend",
        path,
        "--label",
        "unit test",
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "lpbench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let records = read_ledger(&ledger).expect("appended ledger parses");
    assert_eq!(records.len(), 1);
    let rec = &records[0];
    assert_eq!(rec.bench, "eembc.matrix01");
    assert_eq!(rec.scale, "test");
    assert_eq!(rec.label, "unit test");
    assert_eq!(rec.reps, 1);
    assert!(rec.profile_mips > 0.0, "throughput missing: {rec:?}");
    assert!(
        rec.interp_mips > rec.profile_mips,
        "profiling must cost something"
    );
    assert_eq!(rec.machine.len(), 16, "machine digest is 16 hex chars");
    assert!(!rec.counters.is_empty(), "key counters must ride along");

    // A second run lands in the same series (same bench/scale/machine).
    let out = lpbench(&[
        "test",
        "--bench",
        "eembc.matrix01",
        "--reps",
        "1",
        "--trend",
        path,
        "--quiet",
    ]);
    assert!(out.status.success());
    let records = read_ledger(&ledger).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].series_key(), records[1].series_key());

    let _ = std::fs::remove_file(&ledger);
}
