//! Pins the command-line contract of every experiment binary (the
//! `FlagSpec` table): unknown or misplaced flags exit with status 2 and
//! the exact historical diagnostics. A drift here breaks scripts that
//! drive the binaries, so the messages are asserted byte-for-byte.

use std::process::{Command, Output};

/// The explain-capable binaries (per `FLAG_SPECS`).
const EXPLAIN_OK: &[&str] = &["lpstudy", "fig4", "fig5"];

/// Binary name → path, via the paths Cargo bakes into integration tests.
fn exe(binary: &str) -> &'static str {
    match binary {
        "table1" => env!("CARGO_BIN_EXE_table1"),
        "table2" => env!("CARGO_BIN_EXE_table2"),
        "fig1" => env!("CARGO_BIN_EXE_fig1"),
        "fig2" => env!("CARGO_BIN_EXE_fig2"),
        "fig3" => env!("CARGO_BIN_EXE_fig3"),
        "fig4" => env!("CARGO_BIN_EXE_fig4"),
        "fig5" => env!("CARGO_BIN_EXE_fig5"),
        "ablations" => env!("CARGO_BIN_EXE_ablations"),
        "scaling" => env!("CARGO_BIN_EXE_scaling"),
        "sweep" => env!("CARGO_BIN_EXE_sweep"),
        "lpstudy" => env!("CARGO_BIN_EXE_lpstudy"),
        "lpbench" => env!("CARGO_BIN_EXE_lpbench"),
        other => panic!("unknown binary {other:?}"),
    }
}

fn run(binary: &str, args: &[&str]) -> Output {
    Command::new(exe(binary))
        .args(args)
        .env("LP_LOG", "off")
        .env_remove("LP_PROFILE_CACHE")
        .env_remove("LP_ENGINE")
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {binary}: {e}"))
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("stderr is UTF-8")
}

#[test]
fn unknown_argument_exits_2_with_the_pinned_message() {
    let rejecting = [
        "table1",
        "table2",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "ablations",
        "scaling",
    ];
    for binary in rejecting {
        let out = run(binary, &["--bogus"]);
        assert_eq!(out.status.code(), Some(2), "{binary}");
        assert_eq!(
            stderr_of(&out),
            "unknown argument \"--bogus\" (expected test|small|default, --jobs N, \
             --engine tree|bc, --trace-out FILE, --explain-out FILE, \
             --profile-cache DIR, --flight-out FILE, --metrics-out FILE, \
             --snapshot-out FILE, --sample-hz N, --quiet)\n",
            "{binary}"
        );
    }
}

#[test]
fn explain_out_is_rejected_where_unsupported() {
    let all = [
        "table1",
        "table2",
        "fig1",
        "fig2",
        "fig3",
        "ablations",
        "scaling",
        "sweep",
    ];
    for binary in all {
        assert!(!EXPLAIN_OK.contains(&binary));
        let out = run(binary, &["--explain-out", "/tmp/never-written.json"]);
        assert_eq!(out.status.code(), Some(2), "{binary}");
        assert_eq!(
            stderr_of(&out),
            format!("{binary} does not support --explain-out (use lpstudy, fig4, or fig5)\n"),
        );
    }
}

#[test]
fn sweep_rejects_extras_with_its_own_positional_list() {
    let out = run("sweep", &["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        stderr_of(&out),
        "unknown argument \"--bogus\" (expected test|small|default, --suite NAME, \
         --jobs N, --engine tree|bc, --trace-out FILE, --profile-cache DIR, \
         --flight-out FILE, --metrics-out FILE, --snapshot-out FILE, \
         --sample-hz N, --quiet)\n"
    );
}

#[test]
fn lpstudy_prints_usage_on_unknown_flag() {
    let out = run("lpstudy", &["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.starts_with("usage: lpstudy"), "got: {err}");
    assert!(err.contains("--profile-cache DIR"), "got: {err}");
}

#[test]
fn flags_missing_their_operand_exit_2() {
    for (args, message) in [
        (
            &["--profile-cache"][..],
            "--profile-cache requires a directory argument\n",
        ),
        (
            &["--trace-out"][..],
            "--trace-out requires a file argument\n",
        ),
        (
            &["--jobs", "zero"][..],
            "--jobs requires a non-negative integer argument\n",
        ),
        (
            &["--flight-out"][..],
            "--flight-out requires a file argument\n",
        ),
        (
            &["--metrics-out"][..],
            "--metrics-out requires a file argument\n",
        ),
        (
            &["--snapshot-out"][..],
            "--snapshot-out requires a file argument\n",
        ),
        (
            &["--sample-hz", "fast"][..],
            "--sample-hz requires a positive integer argument\n",
        ),
        (
            &["--engine"][..],
            "--engine requires an argument (tree|bc)\n",
        ),
        (
            &["--engine", "llvm"][..],
            "--engine \"llvm\" is not an engine (expected tree|bc)\n",
        ),
    ] {
        let out = run("fig1", args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert_eq!(stderr_of(&out), message, "{args:?}");
    }
}

#[test]
fn quiet_silences_stderr_byte_exactly_across_every_binary() {
    // --quiet must suppress heartbeats and lp_warn! alike, in every one
    // of the 12 binaries. The profile cache is pointed at a regular
    // file, so ProfileStore::open fails and emits an lp_warn! — a quiet
    // run must swallow even that.
    let dir = std::env::temp_dir();
    let bad_cache = dir.join(format!("lp-quiet-cache-{}", std::process::id()));
    std::fs::write(&bad_cache, b"not a directory").unwrap();
    let cache = bad_cache.to_str().unwrap().to_string();

    let standard = [
        "table1",
        "table2",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "ablations",
        "scaling",
    ];
    let mut invocations: Vec<(&str, Vec<String>)> = standard
        .iter()
        .map(|&b| {
            let args = ["test", "--quiet", "--profile-cache", &cache]
                .map(String::from)
                .to_vec();
            (b, args)
        })
        .collect();
    invocations.push((
        "sweep",
        [
            "test",
            "--suite",
            "eembc",
            "--quiet",
            "--profile-cache",
            &cache,
        ]
        .map(String::from)
        .to_vec(),
    ));
    invocations.push((
        "lpstudy",
        ["--bench", "eembc.matrix01", "--quiet"]
            .map(String::from)
            .to_vec(),
    ));
    invocations.push((
        "lpbench",
        [
            "test",
            "--bench",
            "eembc.matrix01",
            "--reps",
            "1",
            "--quiet",
        ]
        .map(String::from)
        .to_vec(),
    ));
    assert_eq!(invocations.len(), 12, "cover every binary");

    for (binary, args) in &invocations {
        let out = Command::new(exe(binary))
            .args(args)
            .env_remove("LP_LOG")
            .env_remove("LP_PROFILE_CACHE")
            .env_remove("LP_ENGINE")
            .output()
            .unwrap_or_else(|e| panic!("cannot spawn {binary}: {e}"));
        assert!(
            out.status.success(),
            "{binary} failed under --quiet: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stderr,
            b"",
            "{binary} wrote to stderr under --quiet: {:?}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let _ = std::fs::remove_file(&bad_cache);
}

#[test]
fn metrics_out_round_trips_every_counter() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("lp-metrics-{}.prom", std::process::id()));
    let out = run(
        "fig1",
        &["test", "--quiet", "--metrics-out", path.to_str().unwrap()],
    );
    assert!(out.status.success(), "fig1: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&path).unwrap();
    let samples = lp_obs::prometheus::parse(&text)
        .expect("--metrics-out must be valid Prometheus text exposition");
    for counter in lp_obs::Counter::all() {
        let (family, label) = lp_obs::prometheus::counter_series(counter);
        let found = samples.iter().any(|s| {
            s.name == family
                && match label {
                    None => true,
                    Some((k, v)) => s.labels.iter().any(|(lk, lv)| lk == k && lv == v),
                }
        });
        assert!(found, "counter {family} {label:?} missing from exposition");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn invalid_lp_engine_exits_2_with_the_pinned_message() {
    let out = Command::new(exe("fig1"))
        .args(["test"])
        .env("LP_LOG", "off")
        .env("LP_ENGINE", "llvm")
        .env_remove("LP_PROFILE_CACHE")
        .output()
        .expect("spawn fig1");
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        stderr_of(&out),
        "LP_ENGINE=\"llvm\" is not an engine (expected tree|bc)\n"
    );
}

#[test]
fn implicit_tree_via_lp_engine_warns_but_the_explicit_flag_does_not() {
    // bc became the default engine; tree selected *implicitly* through
    // the environment gets a one-release deprecation-style warning so
    // scripts pinned to the old default notice the flip.
    let implicit = Command::new(exe("fig1"))
        .args(["test"])
        .env("LP_LOG", "info")
        .env("LP_ENGINE", "tree")
        .env_remove("LP_PROFILE_CACHE")
        .output()
        .expect("spawn fig1");
    assert!(implicit.status.success());
    assert!(
        stderr_of(&implicit).contains("engine tree selected implicitly via LP_ENGINE"),
        "expected the implicit-tree warning, got: {}",
        stderr_of(&implicit)
    );

    // An explicit --engine tree is a deliberate oracle run: no warning,
    // even with the stale environment variable still set.
    let explicit = Command::new(exe("fig1"))
        .args(["test", "--engine", "tree"])
        .env("LP_LOG", "info")
        .env("LP_ENGINE", "tree")
        .env_remove("LP_PROFILE_CACHE")
        .output()
        .expect("spawn fig1");
    assert!(explicit.status.success());
    assert!(
        !stderr_of(&explicit).contains("selected implicitly"),
        "explicit --engine tree must not warn, got: {}",
        stderr_of(&explicit)
    );

    // LP_ENGINE=bc matches the new default and is equally silent.
    let env_bc = Command::new(exe("fig1"))
        .args(["test"])
        .env("LP_LOG", "info")
        .env("LP_ENGINE", "bc")
        .env_remove("LP_PROFILE_CACHE")
        .output()
        .expect("spawn fig1");
    assert!(env_bc.status.success());
    assert!(
        !stderr_of(&env_bc).contains("selected implicitly"),
        "LP_ENGINE=bc must not warn, got: {}",
        stderr_of(&env_bc)
    );
}

#[test]
fn invalid_profile_cache_mode_exits_2() {
    let out = Command::new(exe("table1"))
        .args(["test", "--profile-cache", "/tmp/unused"])
        .env("LP_LOG", "off")
        .env("LP_PROFILE_CACHE", "frobnicate")
        .output()
        .expect("spawn table1");
    assert_eq!(out.status.code(), Some(2));
    assert_eq!(
        stderr_of(&out),
        "LP_PROFILE_CACHE=\"frobnicate\" is not a store mode (expected off|ro|rw)\n"
    );
}
