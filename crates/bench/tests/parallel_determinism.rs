//! Differential determinism tests for the parallel sweep engine at the
//! binary surface: the same sweep run with `--jobs 1`, `--jobs 2`, and
//! `--jobs 8` must produce **byte-identical** stdout — CSV from the
//! `sweep` binary and the human report from `lpstudy --suite` alike.
//! Worker scheduling may interleave stderr heartbeats, but the
//! deterministic index-ordered merge keeps every report stable.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        // The explicit --jobs flag must win over any ambient LP_JOBS.
        .env("LP_JOBS", "3")
        .env("LP_LOG", "off")
        .output()
        .expect("binary runs")
}

fn stdout_for_jobs(bin: &str, args: &[&str], jobs: &str) -> String {
    let mut full: Vec<&str> = args.to_vec();
    full.extend_from_slice(&["--jobs", jobs]);
    let out = run(bin, &full);
    assert!(
        out.status.success(),
        "{bin} --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn sweep_csv_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_sweep");
    let args = ["test", "--suite", "eembc", "--quiet"];
    let serial = stdout_for_jobs(bin, &args, "1");
    // 10 EEMBC benchmarks × 3 models × 32 configs + header.
    assert_eq!(serial.lines().count(), 1 + 10 * 3 * 32);
    assert!(serial.starts_with("program,model,config,"));
    for jobs in ["2", "8"] {
        let parallel = stdout_for_jobs(bin, &args, jobs);
        assert_eq!(serial, parallel, "sweep CSV diverged at --jobs {jobs}");
    }
}

#[test]
fn lpstudy_suite_report_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_lpstudy");
    let args = ["--suite", "eembc", "test", "--quiet"];
    let serial = stdout_for_jobs(bin, &args, "1");
    assert!(serial.contains("suite eembc — 10 benchmarks"));
    assert!(serial.contains("(GEOMEAN)"));
    for jobs in ["2", "8"] {
        let parallel = stdout_for_jobs(bin, &args, jobs);
        assert_eq!(
            serial, parallel,
            "lpstudy --suite report diverged at --jobs {jobs}"
        );
    }
}

#[test]
fn fig2_output_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_fig2");
    let args = ["test", "--quiet"];
    let serial = stdout_for_jobs(bin, &args, "1");
    assert!(serial.starts_with("Figure 2"));
    for jobs in ["2", "8"] {
        let parallel = stdout_for_jobs(bin, &args, jobs);
        assert_eq!(serial, parallel, "fig2 diverged at --jobs {jobs}");
    }
}

#[test]
fn fig4_and_explain_json_are_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_fig4");
    let dir = std::env::temp_dir().join(format!("lp-fig4-jobs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let mut outputs: Vec<(String, Vec<u8>)> = Vec::new();
    for jobs in ["1", "2", "8"] {
        let json = dir.join(format!("explain-{jobs}.json"));
        let json_arg = json.to_str().expect("utf-8 path").to_string();
        let args = ["test", "--quiet", "--explain-out", &json_arg];
        let stdout = stdout_for_jobs(bin, &args, jobs);
        let bytes = std::fs::read(&json).expect("explain JSON written");
        outputs.push((stdout, bytes));
    }
    let (serial_stdout, serial_json) = &outputs[0];
    assert!(serial_stdout.starts_with("Figure 4"));
    assert!(serial_json.starts_with(b"{"));
    for (i, jobs) in ["2", "8"].iter().enumerate() {
        let (stdout, json) = &outputs[i + 1];
        assert_eq!(
            stdout, serial_stdout,
            "fig4 stdout diverged at --jobs {jobs}"
        );
        assert_eq!(json, serial_json, "explain JSON diverged at --jobs {jobs}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jobs_flag_rejects_garbage() {
    let bin = env!("CARGO_BIN_EXE_sweep");
    for bad in [&["--jobs"][..], &["--jobs", "many"]] {
        let mut args = vec!["test", "--suite", "eembc", "--quiet"];
        args.extend_from_slice(bad);
        let out = run(bin, &args);
        assert_eq!(out.status.code(), Some(2), "args {bad:?} must be rejected");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--jobs requires a non-negative integer"),
            "args {bad:?} must explain the usage"
        );
    }
}

#[test]
fn jobs_zero_clamps_to_serial_with_warning() {
    // An explicit `--jobs 0` is degenerate but not an error: it runs the
    // serial engine (identical output to `--jobs 1`) and warns.
    let bin = env!("CARGO_BIN_EXE_sweep");
    let args = ["test", "--suite", "eembc", "--quiet"];
    let serial = stdout_for_jobs(bin, &args, "1");
    // No --quiet here: the clamp warning must be visible on stderr.
    let out = Command::new(bin)
        .args(["test", "--suite", "eembc", "--jobs", "0"])
        .env("LP_JOBS", "3")
        .env("LP_LOG", "info")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "--jobs 0 must not be an error");
    assert_eq!(
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        serial,
        "--jobs 0 must take the serial path"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("clamping to 1 worker"),
        "--jobs 0 must warn about the clamp"
    );
}

#[test]
fn lp_jobs_zero_env_clamps_to_serial_with_warning() {
    let bin = env!("CARGO_BIN_EXE_sweep");
    let args = ["test", "--suite", "eembc", "--quiet"];
    let serial = stdout_for_jobs(bin, &args, "1");
    // No --quiet here: the clamp warning must be visible on stderr.
    let out = Command::new(bin)
        .args(["test", "--suite", "eembc"])
        .env("LP_JOBS", "0")
        .env("LP_LOG", "info")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "LP_JOBS=0 must not be an error");
    assert_eq!(
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        serial,
        "LP_JOBS=0 must take the serial path"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("LP_JOBS=0 requested; clamping to 1 worker"),
        "LP_JOBS=0 must warn about the clamp"
    );
}

#[test]
fn sweep_rejects_unknown_suite() {
    let bin = env!("CARGO_BIN_EXE_sweep");
    let out = run(bin, &["test", "--suite", "nope", "--quiet"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown suite"));
}
