//! Differential determinism tests for the parallel sweep engine at the
//! binary surface: the same sweep run with `--jobs 1`, `--jobs 2`, and
//! `--jobs 8` must produce **byte-identical** stdout — CSV from the
//! `sweep` binary and the human report from `lpstudy --suite` alike.
//! Worker scheduling may interleave stderr heartbeats, but the
//! deterministic index-ordered merge keeps every report stable.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        // The explicit --jobs flag must win over any ambient LP_JOBS.
        .env("LP_JOBS", "3")
        .env("LP_LOG", "off")
        .output()
        .expect("binary runs")
}

fn stdout_for_jobs(bin: &str, args: &[&str], jobs: &str) -> String {
    let mut full: Vec<&str> = args.to_vec();
    full.extend_from_slice(&["--jobs", jobs]);
    let out = run(bin, &full);
    assert!(
        out.status.success(),
        "{bin} --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn sweep_csv_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_sweep");
    let args = ["test", "--suite", "eembc", "--quiet"];
    let serial = stdout_for_jobs(bin, &args, "1");
    // 10 EEMBC benchmarks × 3 models × 32 configs + header.
    assert_eq!(serial.lines().count(), 1 + 10 * 3 * 32);
    assert!(serial.starts_with("program,model,config,"));
    for jobs in ["2", "8"] {
        let parallel = stdout_for_jobs(bin, &args, jobs);
        assert_eq!(serial, parallel, "sweep CSV diverged at --jobs {jobs}");
    }
}

#[test]
fn lpstudy_suite_report_is_byte_identical_across_job_counts() {
    let bin = env!("CARGO_BIN_EXE_lpstudy");
    let args = ["--suite", "eembc", "test", "--quiet"];
    let serial = stdout_for_jobs(bin, &args, "1");
    assert!(serial.contains("suite eembc — 10 benchmarks"));
    assert!(serial.contains("(GEOMEAN)"));
    for jobs in ["2", "8"] {
        let parallel = stdout_for_jobs(bin, &args, jobs);
        assert_eq!(
            serial, parallel,
            "lpstudy --suite report diverged at --jobs {jobs}"
        );
    }
}

#[test]
fn jobs_flag_rejects_garbage() {
    let bin = env!("CARGO_BIN_EXE_sweep");
    for bad in [&["--jobs"][..], &["--jobs", "0"], &["--jobs", "many"]] {
        let mut args = vec!["test", "--suite", "eembc", "--quiet"];
        args.extend_from_slice(bad);
        let out = run(bin, &args);
        assert_eq!(out.status.code(), Some(2), "args {bad:?} must be rejected");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--jobs requires a positive integer"),
            "args {bad:?} must explain the usage"
        );
    }
}

#[test]
fn sweep_rejects_unknown_suite() {
    let bin = env!("CARGO_BIN_EXE_sweep");
    let out = run(bin, &["test", "--suite", "nope", "--quiet"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown suite"));
}
