//! Figure 2: GEOMEAN limit speedups for the non-numeric suites
//! (SPEC CINT2000 & CINT2006) under the 14 paper configurations.
//!
//! Profiles each benchmark once, then evaluates all `(benchmark, row)`
//! cells on `--jobs N` workers; the printed figure is byte-identical for
//! any worker count.
//!
//! ```text
//! cargo run --release -p lp-bench --bin fig2 [test|small|default] [--jobs N]
//! ```

use lp_bench::{log_bar, run_suites, Cli, SweepTable};
use lp_runtime::table2_rows;
use lp_suite::SuiteId;

fn main() {
    let cli = Cli::parse();
    cli.enforce("fig2");
    let scale = cli.scale;
    let jobs = cli.jobs();
    let store = cli.store();
    let runs = run_suites(
        &[SuiteId::Cint2000, SuiteId::Cint2006],
        scale,
        jobs,
        store.as_ref(),
        cli.engine,
    );

    println!("Figure 2 — GEOMEAN speedups, non-numeric benchmarks ({scale:?} scale)");
    println!(
        "{:<14} {:<18} {:>9} {:>9}   (log-scale bars: cint2006)",
        "model", "config", "cint2000", "cint2006"
    );
    let rows = table2_rows();
    let table = SweepTable::build(&runs, &rows, jobs);
    let max = (0..rows.len())
        .map(|j| table.geomean_speedup(&runs, SuiteId::Cint2006, j))
        .fold(1.0f64, f64::max);
    for (j, (model, config)) in rows.into_iter().enumerate() {
        let s2000 = table.geomean_speedup(&runs, SuiteId::Cint2000, j);
        let s2006 = table.geomean_speedup(&runs, SuiteId::Cint2006, j);
        println!(
            "{:<14} {:<18} {:>8.2}x {:>8.2}x   {}",
            model.to_string(),
            config.to_string(),
            s2000,
            s2006,
            log_bar(s2006, max, 36)
        );
    }
    println!("\npaper reference (Fig. 2): best HELIX reduc1-dep1-fn2 = 4.6x (2000) / 7.2x (2006)");
    cli.finish("fig2");
}
