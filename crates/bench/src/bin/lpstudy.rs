//! `lpstudy` — study your own kernel from the command line.
//!
//! Reads a textual-IR module (see `lp_ir::parser` for the format, or
//! print any suite benchmark with `--dump`), runs the Loopapalooza
//! pipeline, and reports per-configuration limit speedups plus per-loop
//! detail for the headline configuration. With no input, studies a
//! built-in demo kernel (round-tripped through the textual parser, so
//! the full parse → verify → analyze → profile → evaluate pipeline runs).
//!
//! The `explain` subcommand goes one step further and *attributes* the
//! remaining gap: for each loop it ranks the limiters (memory RAW
//! conflicts, register LCDs, reductions, value-prediction misses, call
//! gates) that kept the loop away from its ideal conflict-free cost,
//! with counterfactual "lifting this alone unlocks ≤N×" bounds.
//!
//! ```text
//! cargo run --release -p lp-bench --bin lpstudy -- path/to/kernel.lp
//! cargo run --release -p lp-bench --bin lpstudy -- --dump 181.mcf   # print a benchmark as text
//! cargo run --release -p lp-bench --bin lpstudy -- --bench 456.hmmer
//! cargo run --release -p lp-bench --bin lpstudy -- --trace-out trace.json
//! cargo run --release -p lp-bench --bin lpstudy -- explain --explain-out explain.json
//! ```

use loopapalooza::Study;
use lp_bench::{run_suites, write_explain, Cli, SweepTable};
use lp_obs::{lp_info, span};
use lp_runtime::{best_helix, best_pdoall, geomean, ExecModel, Export, RejectReason};
use lp_suite::{Scale, SuiteId};

/// Benchmark the no-input demo round-trips through the textual parser.
const DEMO_BENCH: &str = "181.mcf";

fn usage() -> ! {
    eprintln!("usage: lpstudy [<file.lp> | --bench <name> | --suite <name> | --dump <name>");
    eprintln!("                | --analyze <file.lp|name> | explain [<file.lp|name>]");
    eprintln!("                | dispatch-heat [--suite <name>]");
    eprintln!("                | replay [--suite <name>] [--replay-out FILE]");
    eprintln!("                | diff <a.json> <b.json> [--json] [--include-timing]");
    eprintln!("                       [--noise-floor N] | audit <snap.json>]");
    eprintln!("               [--jobs N] [--profile-cache DIR] [--trace-out FILE]");
    eprintln!("               [--explain-out FILE] [--flight-out FILE] [--metrics-out FILE]");
    eprintln!("               [--snapshot-out FILE] [--sample-hz N] [--quiet]");
    eprintln!("  <file.lp>          study a textual-IR module");
    eprintln!("  --bench NAME       study a registered benchmark (e.g. 456.hmmer)");
    eprintln!("  --suite NAME       study a whole suite (eembc, cint2000, cfp2000, ...)");
    eprintln!("  --dump NAME        print a registered benchmark as textual IR");
    eprintln!("  --analyze WHAT     print the compile-time analysis (loops, LCD classes)");
    eprintln!("  explain [WHAT]     rank, per loop, the limiters that block further speedup");
    eprintln!("  dispatch-heat      profile the interpreter itself: ranked opcode and");
    eprintln!("                     opcode-pair dispatch heat over a suite (default eembc)");
    eprintln!("  replay             execute certified DOALL loops across real threads and");
    eprintln!("                     byte-compare every run against a serial reference;");
    eprintln!("                     prints measured vs predicted speedup per loop and ends");
    eprintln!("                     with `N divergence(s)` (exit 1 on any divergence)");
    eprintln!("  --replay-out FILE  write the lp-replay-v1 JSON document (replay only)");
    eprintln!("  diff A B           rank counter/histogram divergences between two");
    eprintln!("                     --snapshot-out captures (last line: N significant ...)");
    eprintln!("  audit SNAP         check cross-counter conservation laws over a snapshot");
    eprintln!("                     (exit 1 on any violation)");
    eprintln!("  (no input)         study a built-in demo kernel ({DEMO_BENCH})");
    eprintln!("  --jobs N           sweep worker count (default: LP_JOBS or all cores;");
    eprintln!("                     the printed output is identical for any value)");
    eprintln!("  --profile-cache DIR persist profiles under DIR and warm-start from them");
    eprintln!("                     (LP_PROFILE_CACHE=off|ro|rw selects the mode)");
    eprintln!("  --trace-out FILE   write a Chrome trace_event JSON of the run");
    eprintln!("  --explain-out FILE write limiter-attribution JSON (+ .collapsed stacks)");
    eprintln!("  --flight-out FILE  dump the flight-recorder journal (also on panic/SIGUSR1)");
    eprintln!("  --metrics-out FILE write a Prometheus text exposition of all counters");
    eprintln!("  --snapshot-out FILE write the cross-run registry snapshot (diff/audit input)");
    eprintln!("  --sample-hz N      dispatch-heat sampling rate (default 997 Hz)");
    eprintln!("  --quiet            suppress progress logging (see also LP_LOG=off|info|debug)");
    std::process::exit(2);
}

/// Rejects any rest argument beyond the `consumed` count — unknown flags
/// and stray operands get the usage text, not silence.
fn expect_consumed(args: &[String], consumed: usize) {
    if let Some(extra) = args.get(consumed) {
        eprintln!("unexpected extra argument {extra:?}");
        usage();
    }
}

fn parse_text(text: &str) -> lp_ir::Module {
    let _span = span!("parse");
    lp_ir::parser::parse_module(text).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        std::process::exit(1);
    })
}

fn load(what: &str) -> lp_ir::Module {
    if let Some(bench) = lp_suite::find(what) {
        let _span = span!("parse");
        return bench.build(Scale::Test);
    }
    let text = std::fs::read_to_string(what).unwrap_or_else(|e| {
        eprintln!("{what:?} is neither a benchmark name nor a readable file: {e}");
        std::process::exit(2);
    });
    parse_text(&text)
}

/// Round-trips the demo benchmark through the textual printer/parser so
/// the whole pipeline (including a genuine parse phase) is exercised.
fn demo_module(doing: &str) -> lp_ir::Module {
    lp_info!("no input given — {doing} the built-in demo kernel {DEMO_BENCH}");
    let bench = lp_suite::find(DEMO_BENCH).expect("demo benchmark registered");
    let text = lp_ir::printer::print_module(&bench.build(Scale::Test));
    parse_text(&text)
}

/// The `--suite` mode: profile every benchmark of one suite (each
/// exactly once, fanned over `--jobs` workers), evaluate the 14 paper
/// rows for all of them through the parallel sweep engine, and print a
/// per-row GEOMEAN table plus a per-benchmark summary under the best
/// HELIX configuration. Output is byte-identical for any worker count.
fn run_suite(cli: &Cli, name: &str) {
    let Some(suite) = SuiteId::all().into_iter().find(|s| s.label() == name) else {
        eprintln!("unknown suite {name:?}; expected one of:");
        for s in SuiteId::all() {
            eprintln!("  {}", s.label());
        }
        std::process::exit(2);
    };
    let jobs = cli.jobs();
    let store = cli.store();
    let runs = run_suites(&[suite], cli.scale, jobs, store.as_ref(), cli.engine);
    let rows = lp_runtime::table2_rows();
    let table = SweepTable::build(&runs, &rows, jobs);

    println!(
        "suite {} — {} benchmarks, {} rows each ({:?} scale)\n",
        suite.label(),
        runs.len(),
        rows.len(),
        cli.scale
    );
    println!(
        "{:<14} {:<18} {:>9} {:>9}",
        "model", "config", "speedup", "coverage"
    );
    for (j, (model, config)) in rows.iter().enumerate() {
        println!(
            "{:<14} {:<18} {:>8.2}x {:>8.1}%",
            model.to_string(),
            config.to_string(),
            table.geomean_speedup(&runs, suite, j),
            table.geomean_coverage(&runs, suite, j)
        );
    }
    let hx_row = rows
        .iter()
        .position(|&row| row == best_helix())
        .expect("paper rows include best HELIX");
    println!("\nper-benchmark speedup under best HELIX:");
    let mut speedups = Vec::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        let r = table.report(i, hx_row);
        println!(
            "  {:<18} {:>8.2}x  coverage {:>5.1}%",
            run.name, r.speedup, r.coverage
        );
        speedups.push(r.speedup);
    }
    println!("  {:<18} {:>8.2}x  (GEOMEAN)", "all", geomean(&speedups));
    if let Some(path) = &cli.explain_out {
        let (model, config) = best_helix();
        let attrs: Vec<_> = runs
            .iter()
            .map(|r| r.study.explain(model, config).1)
            .collect();
        write_explain(path, &attrs, None);
    }
    cli.finish("lpstudy");
}

/// The `explain` subcommand: evaluate the baseline DOALL row plus the
/// best-realistic PDOALL and HELIX rows, printing the ranked
/// limiter-attribution table for each and honouring `--explain-out`.
fn run_explain(cli: &Cli, module: &lp_ir::Module) {
    let store = cli.store();
    let study =
        Study::with_store(module, cli.machine_config(), store.as_ref()).unwrap_or_else(|e| {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        });
    let rows = [
        (
            ExecModel::Doall,
            "reduc0-dep0-fn0".parse().expect("valid config"),
        ),
        best_pdoall(),
        best_helix(),
    ];
    let mut attrs = Vec::with_capacity(rows.len());
    for (i, (model, config)) in rows.into_iter().enumerate() {
        let (_, attr) = study.explain(model, config);
        if i > 0 {
            println!();
        }
        print!("{}", attr.render_table());
        attrs.push(attr);
    }
    if let Some(path) = &cli.explain_out {
        write_explain(path, &attrs, Some(study.profile()));
    }
    cli.finish("lpstudy");
}

/// Opcode wire value → display name (`?` for values outside the enum).
fn opname(op: u8) -> &'static str {
    lp_ir::Opcode::from_u8(op).map_or("?", |o| o.name())
}

/// The `dispatch-heat` subcommand: profile the interpreter *itself*.
/// Dispatch-heat collection is switched on, a whole suite is profiled
/// while a sampling thread attributes wall time to the published
/// `(func, block, prev-opcode, cur-opcode)` progress word, and the
/// result is printed as ranked per-opcode and per-opcode-pair tables
/// plus collapsed stacks. The pair counts are exact (one bump per
/// dispatched instruction), so the ranking is deterministic and
/// cross-checkable against the profiler's event counters; the sampler
/// adds the wall-time view.
fn run_dispatch_heat(cli: &Cli, args: &[String]) {
    let mut suite_name = "eembc";
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--suite" => match args.get(i + 1) {
                Some(name) => {
                    suite_name = name;
                    i += 2;
                }
                None => usage(),
            },
            _ => usage(),
        }
    }
    let Some(suite) = SuiteId::all().into_iter().find(|s| s.label() == suite_name) else {
        eprintln!("unknown suite {suite_name:?}; expected one of:");
        for s in SuiteId::all() {
            eprintln!("  {}", s.label());
        }
        std::process::exit(2);
    };

    let hz = cli.sample_hz.unwrap_or(997).min(100_000) as u32;
    let counters = lp_obs::counters();
    let loads_before = counters.get(lp_obs::Counter::Loads);
    let phis_before = counters.get(lp_obs::Counter::PhisResolved);
    lp_obs::sampler::reset_pairs();
    let sampler = lp_obs::sampler::Sampler::start(hz);
    let store = cli.store();
    let runs = run_suites(&[suite], cli.scale, cli.jobs(), store.as_ref(), cli.engine);
    let report = sampler.stop();
    let pairs = lp_obs::sampler::pair_counts();
    let total: u64 = pairs.iter().sum();

    println!(
        "dispatch-heat — suite {} ({:?} scale): {} benchmark(s), {} dispatches, \
         sampler {} Hz ({} live samples, {} idle)\n",
        suite.label(),
        cli.scale,
        runs.len(),
        total,
        report.hz,
        report.taken,
        report.idle
    );

    println!("exact opcode dispatch heat:");
    println!(
        "  {:<4} {:<10} {:>14} {:>7}",
        "rank", "opcode", "dispatches", "share"
    );
    for (rank, &(op, n)) in lp_obs::sampler::ranked_opcodes(&pairs).iter().enumerate() {
        println!(
            "  {:<4} {:<10} {:>14} {:>6.1}%",
            rank + 1,
            opname(op),
            n,
            n as f64 / total.max(1) as f64 * 100.0
        );
    }

    println!("\ntop 10 opcode pairs (prev+cur):");
    println!(
        "  {:<4} {:<21} {:>14} {:>7}",
        "rank", "pair", "dispatches", "share"
    );
    for (rank, &(p, c, n)) in lp_obs::sampler::ranked_pairs(&pairs)
        .iter()
        .take(10)
        .enumerate()
    {
        println!(
            "  {:<4} {:<21} {:>14} {:>6.1}%",
            rank + 1,
            format!("{}+{}", opname(p), opname(c)),
            n,
            n as f64 / total.max(1) as f64 * 100.0
        );
    }

    if report.taken > 0 {
        println!("\nsampled wall-time attribution (by current opcode):");
        let sampled = report.pair_table();
        for &(op, n) in lp_obs::sampler::ranked_opcodes(&sampled).iter().take(10) {
            println!(
                "  {:<10} {:>6.1}%  ({} samples)",
                opname(op),
                n as f64 / report.taken as f64 * 100.0,
                n
            );
        }
        println!("\ncollapsed stacks (func;block;pair weight, top 20):");
        for &(word, n) in report.by_word.iter().take(20) {
            let (f, b, p, c) = lp_obs::sampler::unpack_progress(word);
            println!("f{f};b{b};{}+{} {n}", opname(p), opname(c));
        }
    }

    // The pair table and the profiler's event counters observe the same
    // dispatch stream through independent paths; a divergence means one
    // of them is mis-wired.
    let loads = counters.get(lp_obs::Counter::Loads) - loads_before;
    let phis = counters.get(lp_obs::Counter::PhisResolved) - phis_before;
    let load_op = lp_ir::Opcode::Load as usize;
    let phi_op = lp_ir::Opcode::Phi as usize;
    let load_dispatches: u64 = (0..lp_obs::sampler::OPCODE_LIMIT)
        .map(|prev| pairs[prev * lp_obs::sampler::OPCODE_LIMIT + load_op])
        .sum();
    let phi_dispatches: u64 = (0..lp_obs::sampler::OPCODE_LIMIT)
        .map(|prev| pairs[prev * lp_obs::sampler::OPCODE_LIMIT + phi_op])
        .sum();
    let verdict = |a: u64, b: u64| if a == b { "OK" } else { "MISMATCH" };
    println!("\ncross-check against profiler counters:");
    println!(
        "  loads         {loads:>14}  load dispatches {load_dispatches:>14}  {}",
        verdict(loads, load_dispatches)
    );
    println!(
        "  phis_resolved {phis:>14}  phi dispatches  {phi_dispatches:>14}  {}",
        verdict(phis, phi_dispatches)
    );
    cli.finish("lpstudy");
}

/// The `replay` subcommand: certify DOALL loops statically, gate them on
/// the run-time independence witness, execute the survivors' iterations
/// across real worker threads, and differentially validate every
/// replayed run against a plain serial reference. Prints a
/// measured-vs-predicted speedup table per benchmark; the last line is
/// always `... N divergence(s)` so CI can `grep '0 divergence(s)'`. Any
/// divergence is a hard failure (exit 1) naming the culprit loop.
fn run_replay(cli: &Cli, args: &[String]) {
    let mut suite_name = "eembc".to_string();
    let mut out: Option<std::path::PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--suite" => match args.get(i + 1) {
                Some(name) => {
                    suite_name = name.clone();
                    i += 2;
                }
                None => {
                    eprintln!("--suite requires a suite name");
                    std::process::exit(2);
                }
            },
            "--replay-out" => match args.get(i + 1) {
                Some(path) => {
                    out = Some(std::path::PathBuf::from(path));
                    i += 2;
                }
                None => {
                    eprintln!("--replay-out requires a file argument");
                    std::process::exit(2);
                }
            },
            _ => usage(),
        }
    }
    let Some(suite) = SuiteId::all().into_iter().find(|s| s.label() == suite_name) else {
        eprintln!("unknown suite {suite_name:?}; expected one of:");
        for s in SuiteId::all() {
            eprintln!("  {}", s.label());
        }
        std::process::exit(2);
    };
    let jobs = cli.jobs();
    println!(
        "parallel DOALL replay: suite {}, {} worker(s)",
        suite.label(),
        jobs.get()
    );

    let mut benches = Vec::new();
    for b in lp_suite::suite(suite) {
        let module = {
            let _span = span!("parse");
            b.build(cli.scale)
        };
        let r =
            lp_runtime::replay_module_with(&module, &[], jobs, cli.engine).unwrap_or_else(|e| {
                eprintln!("replay of {} failed: {e}", b.name);
                std::process::exit(1);
            });
        println!(
            "\n{}: {} loop(s) replayed, {} rejected",
            b.name,
            r.loops.len(),
            r.rejected.len()
        );
        if !r.loops.is_empty() {
            println!(
                "  {:<22} {:>8} {:>6} {:>10} {:>10} {:>10}",
                "function", "header", "insts", "iters", "predicted", "measured"
            );
            for l in &r.loops {
                println!(
                    "  {:<22} {:>8} {:>6} {:>10} {:>9.2}x {:>9.2}x",
                    l.func_name,
                    l.header.to_string(),
                    l.instances,
                    l.iterations,
                    l.predicted_speedup,
                    l.measured_speedup()
                );
            }
        }
        for rej in &r.rejected {
            match &rej.reason {
                RejectReason::Violation(v) => println!(
                    "  rejected {}:{} — witness {} conflict at {:#x} (iterations {} and {})",
                    rej.func_name,
                    rej.header,
                    v.kind.tag(),
                    v.addr,
                    v.earlier_iter,
                    v.later_iter
                ),
                RejectReason::NeverExecuted => println!(
                    "  rejected {}:{} — never executed, no witness",
                    rej.func_name, rej.header
                ),
            }
        }
        if let Some(d) = &r.divergence {
            println!("  DIVERGENCE {d}");
        }
        benches.push(r);
    }

    let replayed: usize = benches.iter().map(|b| b.loops.len()).sum();
    let rejected: usize = benches.iter().map(|b| b.rejected.len()).sum();
    let divergences = benches.iter().filter(|b| b.divergence.is_some()).count();
    if let Some(path) = &out {
        let doc = lp_runtime::ReplayExport {
            suite: suite.label(),
            jobs: jobs.get(),
            benches: &benches,
        };
        if let Err(e) = std::fs::write(path, doc.to_json_pretty()) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        lp_info!("wrote lp-replay-v1 document to {}", path.display());
    }
    println!(
        "\nreplay: {replayed} loop(s) certified and replayed, {rejected} rejected, \
         {divergences} divergence(s)"
    );
    cli.finish("lpstudy");
    if divergences > 0 {
        std::process::exit(1);
    }
}

fn read_snapshot(path: &str) -> lp_obs::RunSnapshot {
    lp_obs::RunSnapshot::read(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot load snapshot: {e}");
        std::process::exit(1);
    })
}

/// The `diff` subcommand: load two `--snapshot-out` captures and print
/// the ranked divergences (human by default, `--json` for the
/// `lp-diff-v1` document). The human report always ends with
/// `N significant divergence(s)` so CI can `grep '^0 significant'`.
fn run_diff(args: &[String]) {
    let mut paths = Vec::new();
    let mut opts = lp_obs::DiffOptions::default();
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--include-timing" => {
                opts.include_timing = true;
                i += 1;
            }
            "--noise-floor" => match args.get(i + 1).and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => {
                    opts.noise_floor = n;
                    i += 2;
                }
                None => {
                    eprintln!("--noise-floor requires an integer argument");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => usage(),
            path => {
                paths.push(path.to_string());
                i += 1;
            }
        }
    }
    let [a, b] = paths.as_slice() else { usage() };
    let diff = lp_obs::diff::diff(&read_snapshot(a), &read_snapshot(b), &opts);
    if json {
        println!("{}", diff.to_json());
    } else {
        print!("{}", diff.render());
    }
}

/// The `audit` subcommand: assert the cross-counter conservation laws
/// over one snapshot; any violated law is a non-zero exit.
fn run_audit(args: &[String]) {
    let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
    expect_consumed(args, 2);
    let snap = read_snapshot(path);
    let checks = lp_runtime::audit_snapshot(&snap);
    print!("{}", lp_runtime::render_audit(&checks));
    if lp_runtime::audit::failures(&checks) > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let cli = Cli::parse();
    let args = &cli.rest;
    let module = match args.first().map(String::as_str) {
        Some("diff") => {
            run_diff(args);
            return;
        }
        Some("audit") => {
            run_audit(args);
            return;
        }
        Some("--dump") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            expect_consumed(args, 2);
            let bench = lp_suite::find(name).unwrap_or_else(|| {
                eprintln!("unknown benchmark {name:?}; try one of:");
                for b in lp_suite::registry() {
                    eprintln!("  {}", b.name);
                }
                std::process::exit(2);
            });
            print!(
                "{}",
                lp_ir::printer::print_module(&bench.build(Scale::Test))
            );
            return;
        }
        Some("--analyze") => {
            let what = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            expect_consumed(args, 2);
            let module = load(what);
            let analysis = lp_analysis::analyze_module(&module);
            print!("{}", lp_analysis::dump_module(&module, &analysis));
            return;
        }
        Some("--suite") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            expect_consumed(args, 2);
            run_suite(&cli, name);
            return;
        }
        Some("--bench") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            expect_consumed(args, 2);
            let bench = lp_suite::find(name).unwrap_or_else(|| {
                eprintln!("unknown benchmark {name:?}");
                std::process::exit(2);
            });
            let _span = span!("parse");
            bench.build(cli.scale)
        }
        Some("dispatch-heat") => {
            run_dispatch_heat(&cli, args);
            return;
        }
        Some("replay") => {
            run_replay(&cli, args);
            return;
        }
        Some("explain") => {
            let module = match args.get(1).map(String::as_str) {
                Some(what) if !what.starts_with("--") => {
                    expect_consumed(args, 2);
                    load(what)
                }
                Some(_) => usage(),
                None => demo_module("explaining"),
            };
            run_explain(&cli, &module);
            return;
        }
        Some(path) if !path.starts_with("--") => {
            expect_consumed(args, 1);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            parse_text(&text)
        }
        Some(_) => usage(),
        None => demo_module("studying"),
    };

    let store = cli.store();
    let study =
        Study::with_store(&module, cli.machine_config(), store.as_ref()).unwrap_or_else(|e| {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        });
    println!(
        "program {} ran: result = {}, sequential cost = {} dynamic IR instructions\n",
        module.name,
        study.run_result().ret,
        study.run_result().cost
    );
    println!(
        "{:<14} {:<18} {:>9} {:>9}",
        "model", "config", "speedup", "coverage"
    );
    for r in study.table2_rows() {
        println!(
            "{:<14} {:<18} {:>8.2}x {:>8.1}%",
            r.model.to_string(),
            r.config.to_string(),
            r.speedup,
            r.coverage
        );
    }
    let (model, config) = best_helix();
    let report = study.evaluate(model, config);
    println!("\nper-loop detail under {model} {config}:");
    for lp in &report.loops {
        println!(
            "  {}@{} depth {} — {} instance(s), {} iteration(s), {:.2}x ({} parallel)",
            lp.func_name,
            lp.header,
            lp.depth,
            lp.instances,
            lp.iterations,
            lp.speedup(),
            lp.parallel_instances
        );
    }
    println!("\n{}", study.census());
    if let Some(path) = &cli.explain_out {
        let (_, attr) = study.explain(model, config);
        write_explain(path, std::slice::from_ref(&attr), Some(study.profile()));
    }
    cli.finish("lpstudy");
}
