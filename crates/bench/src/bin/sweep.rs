//! Full-lattice sweep: every benchmark × every execution model × all 32
//! configurations, exported as CSV for external plotting. The
//! machine-readable superset of Figures 2–4.
//!
//! ```text
//! cargo run --release -p lp-bench --bin sweep -- default > results/sweep.csv
//! ```

use lp_bench::{run_suites, Cli};
use lp_obs::lp_info;
use lp_runtime::export::{report_header, report_row};
use lp_runtime::{Config, ExecModel};
use lp_suite::SuiteId;

fn main() {
    let cli = Cli::parse();
    cli.expect_no_extra_args();
    cli.reject_explain_out("sweep");
    let runs = run_suites(&SuiteId::all(), cli.scale);

    let reg = lp_obs::registry();
    let t0 = reg.now_ns();
    let total = ExecModel::all().len() * Config::all().len() * runs.len();
    println!("{}", report_header());
    let mut rows = 0usize;
    for (i, run) in runs.iter().enumerate() {
        for model in ExecModel::all() {
            for config in Config::all() {
                let report = run.study.evaluate(model, config);
                println!("{}", report_row(&report));
                rows += 1;
            }
        }
        lp_info!(
            "[{}/{}] evaluated {:<18} {rows}/{total} configs, {:.2}s elapsed",
            i + 1,
            runs.len(),
            run.name,
            reg.now_ns().saturating_sub(t0) as f64 / 1e9
        );
    }
    lp_info!(
        "wrote {rows} rows ({} benchmarks x {} models x {} configs)",
        runs.len(),
        ExecModel::all().len(),
        Config::all().len()
    );
    cli.finish("sweep");
}
