//! Full-lattice sweep: every benchmark × every execution model × all 32
//! configurations, exported as CSV for external plotting. The
//! machine-readable superset of Figures 2–4.
//!
//! Each benchmark is profiled **once**; the `(benchmark × model ×
//! config)` lattice then fans out over `--jobs N` workers (default:
//! `LP_JOBS` or the machine's available parallelism). The CSV on stdout
//! is byte-identical for any worker count. `--suite NAME` (repeatable)
//! restricts the sweep to one or more suites.
//!
//! ```text
//! cargo run --release -p lp-bench --bin sweep -- default > results/sweep.csv
//! cargo run --release -p lp-bench --bin sweep -- test --suite eembc --jobs 4
//! ```

use lp_bench::{run_suites, Cli, SweepTable};
use lp_obs::lp_info;
use lp_runtime::export::{report_header, report_row};
use lp_runtime::{Config, ExecModel};
use lp_suite::SuiteId;

fn parse_suite(name: &str) -> SuiteId {
    SuiteId::all()
        .into_iter()
        .find(|s| s.label() == name)
        .unwrap_or_else(|| {
            eprintln!(
                "unknown suite {name:?} (expected one of: {})",
                SuiteId::all().map(|s| s.label()).join(", ")
            );
            std::process::exit(2);
        })
}

fn main() {
    let cli = Cli::parse();
    cli.enforce("sweep");
    let mut suites: Vec<SuiteId> = Vec::new();
    let mut rest = cli.rest.iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--suite" => match rest.next() {
                Some(name) => suites.push(parse_suite(name)),
                None => {
                    eprintln!("--suite requires a suite name argument");
                    std::process::exit(2);
                }
            },
            extra => {
                eprintln!(
                    "unknown argument {extra:?} (expected test|small|default, --suite NAME, \
                     --jobs N, --engine tree|bc, --trace-out FILE, --profile-cache DIR, \
                     --flight-out FILE, --metrics-out FILE, --snapshot-out FILE, \
                     --sample-hz N, --quiet)"
                );
                std::process::exit(2);
            }
        }
    }
    if suites.is_empty() {
        suites.extend(SuiteId::all());
    }
    let jobs = cli.jobs();
    let store = cli.store();
    let runs = run_suites(&suites, cli.scale, jobs, store.as_ref(), cli.engine);

    let reg = lp_obs::registry();
    let t0 = reg.now_ns();
    let models = ExecModel::all();
    let configs = Config::all();
    let rows: Vec<_> = models
        .iter()
        .flat_map(|&m| configs.iter().map(move |&c| (m, c)))
        .collect();
    let table = SweepTable::build(&runs, &rows, jobs);
    println!("{}", report_header());
    for i in 0..runs.len() {
        for j in 0..rows.len() {
            println!("{}", report_row(table.report(i, j)));
        }
    }
    lp_info!(
        "wrote {} rows ({} benchmarks x {} models x {} configs) on {jobs} worker(s), {:.2}s",
        runs.len() * rows.len(),
        runs.len(),
        models.len(),
        configs.len(),
        reg.now_ns().saturating_sub(t0) as f64 / 1e9
    );
    cli.finish("sweep");
}
