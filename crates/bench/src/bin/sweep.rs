//! Full-lattice sweep: every benchmark × every execution model × all 32
//! configurations, exported as CSV for external plotting. The
//! machine-readable superset of Figures 2–4.
//!
//! ```text
//! cargo run --release -p lp-bench --bin sweep -- default > results/sweep.csv
//! ```

use lp_bench::{run_suites, scale_from_args};
use lp_runtime::export::{report_header, report_row};
use lp_runtime::{Config, ExecModel};
use lp_suite::SuiteId;

fn main() {
    let scale = scale_from_args();
    let runs = run_suites(&SuiteId::all(), scale);
    eprintln!();

    println!("{}", report_header());
    let mut rows = 0usize;
    for run in &runs {
        for model in ExecModel::all() {
            for config in Config::all() {
                let report = run.study.evaluate(model, config);
                println!("{}", report_row(&report));
                rows += 1;
            }
        }
    }
    eprintln!("wrote {rows} rows ({} benchmarks x 3 models x 32 configs)", runs.len());
}
