//! lpbench — wall-clock throughput harness for the profiler inner loop.
//!
//! Measures, per benchmark, the plain interpreter (NullSink) and the
//! fully instrumented profiler run (best of `--reps` repetitions), plus
//! one end-to-end sweep (profile + full Table II evaluation lattice),
//! and emits a machine-readable `BENCH_profiler.json`:
//!
//! ```text
//! cargo run --release -p lp-bench --bin lpbench -- small --out results/BENCH_profiler.json
//! ```
//!
//! `--baseline FILE` embeds the totals of a previous lpbench run into
//! the new report (the before/after record the perf trajectory keeps);
//! `--check FILE` compares the current *slowdown ratio* (interpreter
//! throughput ÷ profiler throughput — hardware-independent, unlike raw
//! instructions/sec) against a checked-in baseline and exits 1 when the
//! profiler regressed more than 30%, which is what the CI smoke job
//! gates on. Each benchmark is additionally profiled with the
//! flight-recorder journal disabled; `--check` also fails when the
//! always-on journaling overhead (`journal_overhead` in `totals`, the
//! median over per-rep aggregates) exceeds 3% beyond its own MAD-based
//! noise allowance. Counters of the hot-path caches (`mem_page_cache_*`,
//! `shadow_page_cache_*`) ride along in the `counters` object.
//!
//! `--trend FILE` appends one `lp-trend-v1` record (bench id, reps,
//! median-of-reps throughput, machine digest, key counters, optional
//! `--label`) to an append-only run ledger; the `lpbench trend`
//! subcommand summarises a ledger, and `lpbench trend --check` exits 2
//! when the newest record falls below the robust noise band of its own
//! history (see `lp_obs::trend`).

use lp_analysis::analyze_module;
use lp_bench::{run_benchmarks, Cli, SweepTable};
use lp_interp::{Engine, Exec, ExecUnit, MachineConfig};
use lp_obs::{lp_info, JsonWriter};
use lp_suite::{Benchmark, Scale, SuiteId};
use std::path::PathBuf;

/// Allowed relative slowdown-ratio regression before `--check` fails.
const CHECK_TOLERANCE: f64 = 0.30;

/// Allowed always-on flight-recorder overhead (profiler run with the
/// journal enabled vs disabled) before `--check` fails.
const JOURNAL_TOLERANCE: f64 = 0.03;

/// Per-benchmark measurement: dynamic instructions, the best wall-clock
/// time of each pipeline stage, and every per-rep sample behind it (the
/// robust gates work on medians over the rep vectors, not the minima).
struct Row {
    name: &'static str,
    insts: u64,
    interp_ns: u64,
    profile_ns: u64,
    /// Profiler run with the flight-recorder journal disabled — the
    /// reference the always-on journaling overhead gate compares against.
    profile_nojournal_ns: u64,
    /// Per-rep samples, index = rep.
    interp_reps: Vec<u64>,
    profile_reps: Vec<u64>,
    profile_nojournal_reps: Vec<u64>,
}

/// Millions of instructions per second (0 when the clock read 0).
fn mips(insts: u64, ns: u64) -> f64 {
    if ns == 0 {
        0.0
    } else {
        insts as f64 / ns as f64 * 1e3
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Default => "default",
    }
}

/// Extracts the flat object following `"key":{` (no nested objects).
fn json_section<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":{{");
    let start = text.find(&pat)? + pat.len();
    let end = text[start..].find('}')? + start;
    Some(&text[start..end])
}

/// Extracts the number following `"key":` in a compact JSON fragment.
fn json_number(fragment: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = fragment.find(&pat)? + pat.len();
    let rest = &fragment[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The baseline summary lifted out of a previous lpbench report.
struct Baseline {
    interp_mips: f64,
    profile_mips: f64,
    slowdown: f64,
    /// `(name, profile_mips)` per benchmark present in the baseline.
    per_bench: Vec<(String, f64)>,
}

fn read_baseline(path: &PathBuf) -> Option<Baseline> {
    let text = std::fs::read_to_string(path).ok()?;
    let totals = json_section(&text, "totals")?;
    let mut per_bench = Vec::new();
    let mut rest = text.as_str();
    while let Some(i) = rest.find("{\"name\":\"") {
        let frag = &rest[i..];
        let name_start = i + "{\"name\":\"".len();
        let name_end = rest[name_start..].find('"')? + name_start;
        let entry_end = frag.find('}').unwrap_or(frag.len());
        if let Some(pm) = json_number(&frag[..entry_end + 1], "profile_mips") {
            per_bench.push((rest[name_start..name_end].to_string(), pm));
        }
        rest = &rest[name_end..];
    }
    Some(Baseline {
        interp_mips: json_number(totals, "interp_mips")?,
        profile_mips: json_number(totals, "profile_mips")?,
        slowdown: json_number(totals, "slowdown")?,
        per_bench,
    })
}

/// Times one closure, returning `(wall_ns, result)`.
fn timed<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let reg = lp_obs::registry();
    let t0 = reg.now_ns();
    let r = f();
    (reg.now_ns().saturating_sub(t0), r)
}

fn measure(bench: &Benchmark, scale: Scale, reps: u32, engine: Engine) -> Row {
    let module = bench.build(scale);
    let analysis = analyze_module(&module);
    let config = MachineConfig {
        engine,
        ..MachineConfig::default()
    };
    // Compile once, execute `reps` times: the ExecUnit lifecycle the
    // plain-interpreter column measures (bytecode translation happens
    // here, outside the timed region, exactly as a study run amortizes
    // it across evaluations).
    let unit = ExecUnit::with_engine(&module, engine);
    let mut insts = 0;
    let mut interp_reps = Vec::with_capacity(reps.max(1) as usize);
    let mut profile_reps = Vec::with_capacity(reps.max(1) as usize);
    let mut profile_nojournal_reps = Vec::with_capacity(reps.max(1) as usize);
    let journal = lp_obs::journal::global();
    for _ in 0..reps.max(1) {
        let (ns, result) = timed(|| Exec::new(&unit).run(&[]));
        let result = result.unwrap_or_else(|e| panic!("benchmark {} failed: {e}", bench.name));
        insts = result.result.cost;
        interp_reps.push(ns);

        let (ns, result) =
            timed(|| lp_runtime::profile_module(&module, &analysis, &[], config.clone()));
        result.unwrap_or_else(|e| panic!("benchmark {} failed under profiling: {e}", bench.name));
        profile_reps.push(ns);

        journal.set_enabled(false);
        let (ns, result) =
            timed(|| lp_runtime::profile_module(&module, &analysis, &[], config.clone()));
        journal.set_enabled(true);
        result.unwrap_or_else(|e| panic!("benchmark {} failed under profiling: {e}", bench.name));
        profile_nojournal_reps.push(ns);
    }
    Row {
        name: bench.name,
        insts,
        interp_ns: interp_reps.iter().copied().min().unwrap_or(u64::MAX),
        profile_ns: profile_reps.iter().copied().min().unwrap_or(u64::MAX),
        profile_nojournal_ns: profile_nojournal_reps
            .iter()
            .copied()
            .min()
            .unwrap_or(u64::MAX),
        interp_reps,
        profile_reps,
        profile_nojournal_reps,
    }
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: lpbench [test|small|default] [--engine tree|bc] [--bench NAME]... [--reps N] \
         [--out FILE] [--baseline FILE] [--check FILE] [--trend FILE] [--label TEXT] [--jobs N] \
         [--quiet]\n\
         \x20      lpbench trend [--ledger FILE] [--check] [--window N] [--min-history N]"
    );
    std::process::exit(2);
}

/// Stable fingerprint of the measuring machine: the cost-model knobs
/// that shape the numbers plus the host architecture and OS. Records
/// from different machines land in different trend series.
fn machine_digest() -> String {
    let text = format!(
        "{:?}|{}|{}",
        MachineConfig::default(),
        std::env::consts::ARCH,
        std::env::consts::OS
    );
    format!("{:016x}", lp_obs::trend::fnv1a(text.as_bytes()))
}

/// The `lpbench trend` subcommand: summarise the run ledger and, with
/// `--check`, judge the newest record against the MAD noise band of its
/// own series — exit 2 on a regression (the distinct code CI gates on).
fn run_trend(cli: &Cli) -> ! {
    let mut ledger = PathBuf::from("results/BENCH_trend.jsonl");
    let mut check = false;
    let mut window = lp_obs::trend::DEFAULT_WINDOW;
    let mut min_history = lp_obs::trend::DEFAULT_MIN_HISTORY;
    let mut rest = cli.rest.iter().skip(1);
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--ledger" => match rest.next() {
                Some(p) => ledger = PathBuf::from(p),
                None => usage_exit(),
            },
            "--check" => check = true,
            "--window" => match rest.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => window = n,
                _ => usage_exit(),
            },
            "--min-history" => match rest.next().and_then(|n| n.parse().ok()) {
                Some(n) => min_history = n,
                _ => usage_exit(),
            },
            _ => usage_exit(),
        }
    }
    let records = lp_obs::trend::read_ledger(&ledger).unwrap_or_else(|e| {
        eprintln!("cannot read trend ledger: {e}");
        std::process::exit(1);
    });
    if records.is_empty() {
        println!("trend ledger {} is empty", ledger.display());
        if check {
            eprintln!("nothing to check");
            std::process::exit(1);
        }
        std::process::exit(0);
    }
    // One line per series: run count, newest point, noise band when the
    // series is deep enough to have one.
    let mut keys: Vec<String> = Vec::new();
    for r in &records {
        let key = r.series_key();
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    println!(
        "trend ledger {} — {} record(s), {} series",
        ledger.display(),
        records.len(),
        keys.len()
    );
    for key in &keys {
        let series: Vec<&lp_obs::TrendRecord> =
            records.iter().filter(|r| &r.series_key() == key).collect();
        let newest = series.last().expect("series is non-empty");
        let history: Vec<f64> = series[..series.len() - 1]
            .iter()
            .map(|r| r.profile_mips)
            .collect();
        let recent = &history[history.len().saturating_sub(window)..];
        let band = if recent.len() >= min_history.max(1) {
            let b = lp_obs::trend::noise_band(
                recent,
                lp_obs::trend::BAND_K,
                lp_obs::trend::BAND_REL_FLOOR,
            );
            format!(
                "band [{:.2}, {:.2}] over {} prior",
                b.lower,
                b.upper,
                recent.len()
            )
        } else {
            format!("{} prior run(s), no band yet", recent.len())
        };
        let label = if newest.label.is_empty() {
            String::new()
        } else {
            format!(" [{}]", newest.label)
        };
        println!(
            "  {} {} ({}): {} run(s), latest {:.2} Mi/s{label}, {band}",
            newest.bench,
            newest.scale,
            &newest.machine[..8.min(newest.machine.len())],
            series.len(),
            newest.profile_mips,
        );
    }
    if check {
        let verdict =
            lp_obs::trend::check_latest(&records, window, min_history).expect("non-empty ledger");
        println!("{}", verdict.render());
        if !verdict.passed() {
            std::process::exit(2);
        }
    }
    std::process::exit(0);
}

fn main() {
    let cli = Cli::parse();
    cli.enforce("lpbench");
    if cli.rest.first().map(String::as_str) == Some("trend") {
        run_trend(&cli);
    }
    let mut reps: u32 = 3;
    let mut out: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;
    let mut trend_path: Option<PathBuf> = None;
    let mut label = String::new();
    let mut picked: Vec<Benchmark> = Vec::new();
    let mut rest = cli.rest.iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--bench" => match rest.next().map(|n| lp_suite::find(n)) {
                Some(Some(b)) => picked.push(b),
                Some(None) => {
                    eprintln!("unknown benchmark (see lp_suite::registry)");
                    std::process::exit(2);
                }
                None => usage_exit(),
            },
            "--reps" => match rest.next().and_then(|n| n.parse().ok()) {
                Some(n) => reps = n,
                None => usage_exit(),
            },
            "--out" => match rest.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => usage_exit(),
            },
            "--baseline" => match rest.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => usage_exit(),
            },
            "--check" => match rest.next() {
                Some(p) => check_path = Some(PathBuf::from(p)),
                None => usage_exit(),
            },
            "--trend" => match rest.next() {
                Some(p) => trend_path = Some(PathBuf::from(p)),
                None => usage_exit(),
            },
            "--label" => match rest.next() {
                Some(l) => label = l.clone(),
                None => usage_exit(),
            },
            _ => usage_exit(),
        }
    }
    if picked.is_empty() {
        picked = lp_suite::suite(SuiteId::Eembc);
    }
    let jobs = cli.jobs();

    let rows: Vec<Row> = picked
        .iter()
        .map(|b| {
            let row = measure(b, cli.scale, reps, cli.engine);
            lp_info!(
                "{:<18} {:>12} insts  interp {:>8.2} Mi/s  profile {:>8.2} Mi/s  ({:.2}x slowdown)",
                row.name,
                row.insts,
                mips(row.insts, row.interp_ns),
                mips(row.insts, row.profile_ns),
                row.profile_ns as f64 / row.interp_ns.max(1) as f64
            );
            row
        })
        .collect();

    // End-to-end: profile every picked benchmark once, evaluate the full
    // Table II row lattice against the shared profiles.
    let (sweep_ns, n_points) = timed(|| {
        let runs = run_benchmarks(&picked, cli.scale, jobs, None, cli.engine);
        let table_rows = lp_runtime::table2_rows();
        let table = SweepTable::build(&runs, &table_rows, jobs);
        runs.len() * table.rows().len()
    });

    let t_insts: u64 = rows.iter().map(|r| r.insts).sum();
    let t_interp: u64 = rows.iter().map(|r| r.interp_ns).sum();
    let t_profile: u64 = rows.iter().map(|r| r.profile_ns).sum();
    let t_nojournal: u64 = rows.iter().map(|r| r.profile_nojournal_ns).sum();
    let cur_slowdown = t_profile as f64 / t_interp.max(1) as f64;

    // Robust per-rep statistics: rep r's aggregate is the sum across
    // benchmarks of that rep's sample, so the rep vectors line up into
    // `reps` paired aggregate observations of each pipeline stage.
    let nreps = reps.max(1) as usize;
    let agg = |pick: &dyn Fn(&Row) -> &Vec<u64>| -> Vec<f64> {
        (0..nreps)
            .map(|r| rows.iter().map(|row| pick(row)[r]).sum::<u64>() as f64)
            .collect()
    };
    let interp_agg = agg(&|row| &row.interp_reps);
    let profile_agg = agg(&|row| &row.profile_reps);
    let nojournal_agg = agg(&|row| &row.profile_nojournal_reps);
    let interp_med_ns = lp_obs::trend::median(&mut interp_agg.clone());
    let profile_med_ns = lp_obs::trend::median(&mut profile_agg.clone());
    let nojournal_med_ns = lp_obs::trend::median(&mut nojournal_agg.clone());
    // Relative cost of always-on journaling, per rep (pairing reps
    // cancels slow-machine moments that hit both runs alike); the point
    // estimate is the median so one noisy rep cannot trip the gate, and
    // the MAD feeds the gate's noise allowance. Negative values are
    // timer noise — the journal cannot speed a run up.
    let mut overheads: Vec<f64> = profile_agg
        .iter()
        .zip(&nojournal_agg)
        .map(|(p, n)| p / n.max(1.0) - 1.0)
        .collect();
    let journal_overhead = lp_obs::trend::median(&mut overheads);
    let journal_overhead_mad = lp_obs::trend::mad(&overheads, journal_overhead);

    let mut w = JsonWriter::compact();
    w.begin_object();
    w.key("schema");
    w.string("lpbench-v1");
    w.key("scale");
    w.string(scale_label(cli.scale));
    w.key("engine");
    w.string(cli.engine.name());
    w.key("reps");
    w.uint(u64::from(reps));
    w.key("jobs");
    w.uint(jobs.get() as u64);
    w.key("benchmarks");
    w.begin_array();
    for r in &rows {
        w.begin_object();
        w.key("name");
        w.string(r.name);
        w.key("insts");
        w.uint(r.insts);
        w.key("interp_ns");
        w.uint(r.interp_ns);
        w.key("profile_ns");
        w.uint(r.profile_ns);
        w.key("profile_nojournal_ns");
        w.uint(r.profile_nojournal_ns);
        w.key("interp_mips");
        w.fixed(mips(r.insts, r.interp_ns), 3);
        w.key("profile_mips");
        w.fixed(mips(r.insts, r.profile_ns), 3);
        w.key("slowdown");
        w.fixed(r.profile_ns as f64 / r.interp_ns.max(1) as f64, 3);
        w.end_object();
    }
    w.end_array();
    w.key("totals");
    w.begin_object();
    w.key("insts");
    w.uint(t_insts);
    w.key("interp_ns");
    w.uint(t_interp);
    w.key("profile_ns");
    w.uint(t_profile);
    w.key("profile_nojournal_ns");
    w.uint(t_nojournal);
    w.key("interp_mips");
    w.fixed(mips(t_insts, t_interp), 3);
    w.key("profile_mips");
    w.fixed(mips(t_insts, t_profile), 3);
    w.key("slowdown");
    w.fixed(cur_slowdown, 3);
    w.key("interp_med_ns");
    w.fixed(interp_med_ns, 0);
    w.key("profile_med_ns");
    w.fixed(profile_med_ns, 0);
    w.key("profile_nojournal_med_ns");
    w.fixed(nojournal_med_ns, 0);
    w.key("journal_overhead");
    w.fixed(journal_overhead, 4);
    w.key("journal_overhead_mad");
    w.fixed(journal_overhead_mad, 4);
    w.end_object();
    w.key("sweep");
    w.begin_object();
    w.key("benchmarks");
    w.uint(picked.len() as u64);
    w.key("points");
    w.uint(n_points as u64);
    w.key("wall_ns");
    w.uint(sweep_ns);
    w.end_object();
    w.key("counters");
    w.begin_object();
    for (name, value) in lp_obs::counters().snapshot() {
        w.key(&name);
        w.uint(value);
    }
    w.end_object();
    if let Some(path) = &baseline_path {
        match read_baseline(path) {
            Some(base) => {
                w.key("baseline");
                w.begin_object();
                w.key("interp_mips");
                w.fixed(base.interp_mips, 3);
                w.key("profile_mips");
                w.fixed(base.profile_mips, 3);
                w.key("slowdown");
                w.fixed(base.slowdown, 3);
                w.key("profile_speedup");
                w.fixed(mips(t_insts, t_profile) / base.profile_mips.max(1e-9), 3);
                w.key("slowdown_ratio");
                w.fixed(base.slowdown / cur_slowdown.max(1e-9), 3);
                w.key("per_bench");
                w.begin_array();
                for r in &rows {
                    let Some((_, base_pm)) = base.per_bench.iter().find(|(n, _)| n == r.name)
                    else {
                        continue;
                    };
                    w.begin_object();
                    w.key("name");
                    w.string(r.name);
                    w.key("baseline_profile_mips");
                    w.fixed(*base_pm, 3);
                    w.key("profile_mips");
                    w.fixed(mips(r.insts, r.profile_ns), 3);
                    w.key("profile_speedup");
                    w.fixed(mips(r.insts, r.profile_ns) / base_pm.max(1e-9), 3);
                    w.end_object();
                }
                w.end_array();
                w.end_object();
            }
            None => {
                eprintln!("cannot read lpbench baseline {}", path.display());
                std::process::exit(2);
            }
        }
    }
    w.end_object();
    let json = w.finish() + "\n";

    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            lp_info!("wrote {}", path.display());
        }
        None => print!("{json}"),
    }

    if let Some(path) = &trend_path {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let record = lp_obs::TrendRecord {
            bench: picked.iter().map(|b| b.name).collect::<Vec<_>>().join("+"),
            scale: scale_label(cli.scale).to_string(),
            label: label.clone(),
            reps: u64::from(reps),
            unix_ms,
            machine: machine_digest(),
            profile_mips: mips(t_insts, profile_med_ns as u64),
            interp_mips: mips(t_insts, interp_med_ns as u64),
            slowdown: profile_med_ns / interp_med_ns.max(1.0),
            journal_overhead,
            counters: lp_obs::counters().snapshot(),
        };
        if let Err(e) = lp_obs::trend::append_ledger(path, &record) {
            eprintln!("cannot append trend record to {}: {e}", path.display());
            std::process::exit(1);
        }
        lp_info!("appended trend record to {}", path.display());
    }

    if let Some(path) = &check_path {
        // Engine equivalence gate: profile every picked benchmark under
        // both engines and byte-compare the serialized profile cache
        // entries (profile + run result). Any divergence — result, cost,
        // region tree, conflict census, LCD classes — flips a byte.
        for b in &picked {
            let module = b.build(cli.scale);
            let analysis = analyze_module(&module);
            let encoded = |engine: Engine| {
                let config = MachineConfig {
                    engine,
                    ..MachineConfig::default()
                };
                let (p, r) = lp_runtime::profile_module(&module, &analysis, &[], config)
                    .unwrap_or_else(|e| panic!("benchmark {} failed: {e}", b.name));
                lp_runtime::encode_entry(&p, &r)
            };
            if encoded(Engine::Tree) != encoded(Engine::Bc) {
                eprintln!(
                    "lpbench check FAILED: {} profiles diverge between --engine tree and bc",
                    b.name
                );
                std::process::exit(1);
            }
        }
        lp_info!(
            "engine check passed: {} benchmark(s) profile byte-identically under tree and bc",
            picked.len()
        );
        let Some(base) = read_baseline(path) else {
            eprintln!("cannot read lpbench baseline {}", path.display());
            std::process::exit(2);
        };
        // The slowdown ratio (profiler time per instruction over plain
        // interpreter time per instruction) cancels out the machine's
        // absolute speed, so a checked-in baseline transfers across CI
        // runners; raw insts/sec would not.
        let limit = base.slowdown * (1.0 + CHECK_TOLERANCE);
        if cur_slowdown > limit {
            eprintln!(
                "lpbench check FAILED: profiler slowdown {cur_slowdown:.3}x exceeds baseline \
                 {:.3}x by more than {:.0}% (limit {limit:.3}x)",
                base.slowdown,
                CHECK_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        // Median-of-reps overhead, discounted by its own scaled MAD: the
        // gate only fires when even the measurement's noise band cannot
        // explain the excess, so a single slow rep no longer flakes CI.
        let overhead_floor = journal_overhead - 1.4826 * journal_overhead_mad;
        if overhead_floor > JOURNAL_TOLERANCE {
            eprintln!(
                "lpbench check FAILED: always-on journaling overhead {:.1}% (median of {nreps} \
                 rep(s), MAD {:.2}%) exceeds {:.0}% beyond measurement noise",
                journal_overhead * 100.0,
                journal_overhead_mad * 100.0,
                JOURNAL_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        lp_info!(
            "lpbench check passed: slowdown {:.3}x vs baseline {:.3}x (limit {:.3}x), \
             journal overhead {:.2}% (MAD {:.2}%)",
            cur_slowdown,
            base.slowdown,
            limit,
            journal_overhead * 100.0,
            journal_overhead_mad * 100.0
        );
    }
    cli.finish("lpbench");
}
