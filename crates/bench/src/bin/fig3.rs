//! Figure 3: GEOMEAN limit speedups for the numeric suites
//! (EEMBC, SPEC CFP2000 & CFP2006) under the 14 paper configurations.
//!
//! Profiles each benchmark once, then evaluates all `(benchmark, row)`
//! cells on `--jobs N` workers; the printed figure is byte-identical for
//! any worker count.
//!
//! ```text
//! cargo run --release -p lp-bench --bin fig3 [test|small|default] [--jobs N]
//! ```

use lp_bench::{log_bar, run_suites, Cli, SweepTable};
use lp_runtime::table2_rows;
use lp_suite::SuiteId;

fn main() {
    let cli = Cli::parse();
    cli.enforce("fig3");
    let scale = cli.scale;
    let jobs = cli.jobs();
    let store = cli.store();
    let suites = [SuiteId::Eembc, SuiteId::Cfp2000, SuiteId::Cfp2006];
    let runs = run_suites(&suites, scale, jobs, store.as_ref(), cli.engine);

    println!("Figure 3 — GEOMEAN speedups, numeric benchmarks ({scale:?} scale)");
    println!(
        "{:<14} {:<18} {:>9} {:>9} {:>9}   (log-scale bars: cfp2000)",
        "model", "config", "eembc", "cfp2000", "cfp2006"
    );
    let rows = table2_rows();
    let table = SweepTable::build(&runs, &rows, jobs);
    let max = (0..rows.len())
        .map(|j| table.geomean_speedup(&runs, SuiteId::Cfp2000, j))
        .fold(1.0f64, f64::max);
    for (j, (model, config)) in rows.into_iter().enumerate() {
        let eembc = table.geomean_speedup(&runs, SuiteId::Eembc, j);
        let cfp2000 = table.geomean_speedup(&runs, SuiteId::Cfp2000, j);
        let cfp2006 = table.geomean_speedup(&runs, SuiteId::Cfp2006, j);
        println!(
            "{:<14} {:<18} {:>8.2}x {:>8.2}x {:>8.2}x   {}",
            model.to_string(),
            config.to_string(),
            eembc,
            cfp2000,
            cfp2006,
            log_bar(cfp2000, max, 36)
        );
    }
    println!("\npaper reference (Fig. 3): best HELIX reduc1-dep1-fn2 = 21.6x-50.6x across numeric suites");
    cli.finish("fig3");
}
