//! Figure 3: GEOMEAN limit speedups for the numeric suites
//! (EEMBC, SPEC CFP2000 & CFP2006) under the 14 paper configurations.
//!
//! ```text
//! cargo run --release -p lp-bench --bin fig3 [test|small|default]
//! ```

use lp_bench::{log_bar, run_suites, suite_geomean_speedup, Cli};
use lp_runtime::paper_rows;
use lp_suite::SuiteId;

fn main() {
    let cli = Cli::parse();
    cli.expect_no_extra_args();
    cli.reject_explain_out("fig3");
    let scale = cli.scale;
    let suites = [SuiteId::Eembc, SuiteId::Cfp2000, SuiteId::Cfp2006];
    let runs = run_suites(&suites, scale);

    println!("Figure 3 — GEOMEAN speedups, numeric benchmarks ({scale:?} scale)");
    println!(
        "{:<14} {:<18} {:>9} {:>9} {:>9}   (log-scale bars: cfp2000)",
        "model", "config", "eembc", "cfp2000", "cfp2006"
    );
    let rows = paper_rows();
    let max = rows
        .iter()
        .map(|&(m, c)| suite_geomean_speedup(&runs, SuiteId::Cfp2000, m, c))
        .fold(1.0f64, f64::max);
    for (model, config) in rows {
        let eembc = suite_geomean_speedup(&runs, SuiteId::Eembc, model, config);
        let cfp2000 = suite_geomean_speedup(&runs, SuiteId::Cfp2000, model, config);
        let cfp2006 = suite_geomean_speedup(&runs, SuiteId::Cfp2006, model, config);
        println!(
            "{:<14} {:<18} {:>8.2}x {:>8.2}x {:>8.2}x   {}",
            model.to_string(),
            config.to_string(),
            eembc,
            cfp2000,
            cfp2006,
            log_bar(cfp2000, max, 36)
        );
    }
    println!("\npaper reference (Fig. 3): best HELIX reduc1-dep1-fn2 = 21.6x-50.6x across numeric suites");
    cli.finish("fig3");
}
