//! Figure 5: GEOMEAN dynamic coverage (percent of dynamic IR
//! instructions inside parallel loops) for the three configurations the
//! paper highlights: `reduc0-dep0-fn2` PDOALL, `reduc0-dep0-fn2` HELIX,
//! and `reduc0-dep1-fn2` HELIX.
//!
//! Profiles each benchmark once, then evaluates all `(benchmark, row)`
//! cells on `--jobs N` workers; the printed figure is byte-identical for
//! any worker count.
//!
//! ```text
//! cargo run --release -p lp-bench --bin fig5 [test|small|default] [--jobs N]
//! ```

use lp_bench::{run_suites, write_explain, Cli, SweepTable};
use lp_runtime::{Config, ExecModel};
use lp_suite::SuiteId;

fn main() {
    let cli = Cli::parse();
    cli.enforce("fig5");
    let scale = cli.scale;
    let jobs = cli.jobs();
    let store = cli.store();
    let suites = SuiteId::all();
    let runs = run_suites(&suites, scale, jobs, store.as_ref(), cli.engine);

    let rows: [(&str, ExecModel, Config); 3] = [
        (
            "PDOALL reduc0-dep0-fn2",
            ExecModel::PartialDoall,
            "reduc0-dep0-fn2".parse().unwrap(),
        ),
        (
            "HELIX  reduc0-dep0-fn2",
            ExecModel::Helix,
            "reduc0-dep0-fn2".parse().unwrap(),
        ),
        (
            "HELIX  reduc0-dep1-fn2",
            ExecModel::Helix,
            "reduc0-dep1-fn2".parse().unwrap(),
        ),
    ];
    let table_rows: Vec<(ExecModel, Config)> = rows.iter().map(|&(_, m, c)| (m, c)).collect();
    let table = SweepTable::build(&runs, &table_rows, jobs);

    println!("Figure 5 — GEOMEAN dynamic coverage, percent ({scale:?} scale)");
    print!("{:<24}", "configuration");
    for s in suites {
        print!(" {:>9}", s.label());
    }
    println!();
    for (j, (label, _, _)) in rows.iter().enumerate() {
        print!("{label:<24}");
        for s in suites {
            let cov = table.geomean_coverage(&runs, s, j);
            print!(" {cov:>8.1}%");
        }
        println!();
    }
    println!("\npaper reference (Fig. 5): coverage rises dramatically from dep0-fn2 PDOALL");
    println!("to dep0-fn2 HELIX to dep1-fn2 HELIX, especially for the non-numeric suites.");
    if let Some(path) = &cli.explain_out {
        // Attribute under the most permissive highlighted row — what still
        // limits coverage after dep1 HELIX lifts the register LCDs.
        let (_, model, config) = rows[2];
        let attrs: Vec<_> = runs
            .iter()
            .map(|r| r.study.explain(model, config).1)
            .collect();
        write_explain(path, &attrs, None);
    }
    cli.finish("fig5");
}
