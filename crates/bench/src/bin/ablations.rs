//! Ablations for the design choices called out in DESIGN.md:
//!
//! 1. **Cactus-stack filter** (§II-E): profile call-heavy suites with and
//!    without treating per-iteration frames as iteration-local, showing
//!    how much loop-level parallelism the structural call-stack hazard
//!    destroys on a conventional stack.
//! 2. **HELIX vs classic DOACROSS**: combine synchronization deltas by
//!    per-LCD sync points (HELIX) vs one sync point from the last producer
//!    to the first consumer (classic DOACROSS), quantifying the benefit
//!    of generalized DOACROSS.
//! 3. **Hybrid vs individual value predictors** on the suite's traced
//!    register-LCD streams (dep2 sensitivity, §III-C).
//!
//! ```text
//! cargo run --release -p lp-bench --bin ablations [test|small|default]
//! ```

use lp_analysis::analyze_module;
use lp_bench::Cli;
use lp_runtime::{
    evaluate_with, geomean, parallel_map, profile_module_cached, EvalOptions, ProfilerOptions,
};
use lp_suite::SuiteId;

fn main() {
    let cli = Cli::parse();
    cli.enforce("ablations");
    let scale = cli.scale;
    let jobs = cli.jobs();
    let store = cli.store();
    let store = store.as_ref();

    // ---- 1. cactus-stack filter --------------------------------------
    println!("Ablation 1 — cactus-stack frame filter (PDOALL reduc1-dep2-fn2)\n");
    println!(
        "{:<12} {:>12} {:>14}",
        "suite", "with cactus", "without cactus"
    );
    let (model, config) = lp_runtime::best_pdoall();
    for suite in [SuiteId::Eembc, SuiteId::Cint2000] {
        // This ablation re-profiles on purpose (the profiler option under
        // test changes the profile), so the benchmarks fan out instead.
        let pairs = parallel_map(&lp_suite::suite(suite), jobs, |_, b| {
            let module = b.build(scale);
            let analysis = analyze_module(&module);
            // The profiler option under test is part of the ProfileKey,
            // so the two legs cache under distinct entries.
            let speedup_with_cactus = |cactus: bool| {
                let (profile, _) = profile_module_cached(
                    &module,
                    &analysis,
                    cli.machine_config(),
                    ProfilerOptions {
                        cactus_stack: cactus,
                    },
                    store,
                )
                .expect("benchmark runs");
                evaluate_with(&profile, model, config, EvalOptions::default()).speedup
            };
            (speedup_with_cactus(true), speedup_with_cactus(false))
        });
        let (with, without): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        println!(
            "{:<12} {:>11.2}x {:>13.2}x",
            suite.label(),
            geomean(&with),
            geomean(&without)
        );
    }
    println!("\n=> without disjoint (cactus) stack frames, loops containing calls serialize");
    println!("   on reused frame addresses — the structural hazard of paper §II-E.\n");

    // ---- 2. HELIX (max) vs classic DOACROSS (sum) ---------------------
    println!("Ablation 2 — HELIX per-LCD sync (max delta) vs DOACROSS chain (sum)\n");
    println!("{:<12} {:>10} {:>12}", "suite", "HELIX", "DOACROSS");
    let (hx_model, hx_config) = lp_runtime::best_helix();
    for suite in [SuiteId::Cint2000, SuiteId::Cint2006] {
        let pairs = parallel_map(&lp_suite::suite(suite), jobs, |_, b| {
            let module = b.build(scale);
            let analysis = analyze_module(&module);
            let (profile, _) = profile_module_cached(
                &module,
                &analysis,
                cli.machine_config(),
                ProfilerOptions::default(),
                store,
            )
            .expect("benchmark runs");
            let helix =
                evaluate_with(&profile, hx_model, hx_config, EvalOptions::default()).speedup;
            let doacross = evaluate_with(
                &profile,
                hx_model,
                hx_config,
                EvalOptions {
                    doacross_single_sync: true,
                    ..EvalOptions::default()
                },
            )
            .speedup;
            (helix, doacross)
        });
        let (helix, doacross): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        println!(
            "{:<12} {:>9.2}x {:>11.2}x",
            suite.label(),
            geomean(&helix),
            geomean(&doacross)
        );
    }
    println!("\n=> HELIX's per-LCD synchronization dominates a single DOACROSS sync point.\n");

    // ---- 3. predictors ------------------------------------------------
    println!("Ablation 3 — value predictor components on characteristic LCD streams\n");
    use lp_predict::{Fcm, LastValue, Predictor, Stride, TwoDeltaStride};
    let streams: [(&str, Vec<u64>); 4] = [
        ("constant", vec![9; 512]),
        ("strided", (0..512).map(|i| 40 + 3 * i).collect()),
        (
            "mostly-strided",
            (0..512u64)
                .scan(0u64, |x, i| {
                    *x += if i % 64 == 0 { 17 } else { 3 };
                    Some(*x)
                })
                .collect(),
        ),
        (
            "chaotic",
            (0..512u64)
                .scan(0x2545F4914F6CDD1Du64, |x, _| {
                    *x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    Some(*x >> 33)
                })
                .collect(),
        ),
    ];
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "stream", "last", "stride", "2delta", "fcm", "hybrid"
    );
    for (name, stream) in &streams {
        let acc = |mut p: Box<dyn Predictor>| -> f64 {
            let mut hits = 0usize;
            for &v in stream {
                if p.predict() == Some(v) {
                    hits += 1;
                }
                p.update(v);
            }
            100.0 * hits as f64 / stream.len() as f64
        };
        let mut hybrid = lp_predict::HybridPredictor::new();
        for &v in stream {
            hybrid.observe(v);
        }
        println!(
            "{:<16} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            name,
            acc(Box::new(LastValue::new())),
            acc(Box::new(Stride::new())),
            acc(Box::new(TwoDeltaStride::new())),
            acc(Box::new(Fcm::new())),
            100.0 * hybrid.stats().accuracy(),
        );
    }
    cli.finish("ablations");
}
