//! Core-count scaling curves — the bridge from the paper's
//! infinite-resource limit study to the finite-core systems its related
//! work reports against (HELIX-RC: 6.5× on 16 cores for CINT;
//! SWARM/T4: 19× on 64 cores): evaluate the best HELIX and best PDOALL
//! configurations with the core count bounded.
//!
//! ```text
//! cargo run --release -p lp-bench --bin scaling [test|small|default]
//! ```

use lp_bench::{run_suites, Cli, SuiteRun};
use lp_runtime::{best_helix, best_pdoall, geomean, EvalOptions};
use lp_suite::SuiteId;

const CORES: [Option<u32>; 7] = [
    Some(2),
    Some(4),
    Some(8),
    Some(16),
    Some(32),
    Some(64),
    None,
];

fn geomean_at(
    runs: &[SuiteRun],
    suite: SuiteId,
    model: lp_runtime::ExecModel,
    config: lp_runtime::Config,
    cores: Option<u32>,
) -> f64 {
    let values: Vec<f64> = runs
        .iter()
        .filter(|r| r.suite == suite)
        .map(|r| {
            lp_runtime::evaluate_with(
                r.study.profile(),
                model,
                config,
                EvalOptions {
                    cores,
                    ..EvalOptions::default()
                },
            )
            .speedup
        })
        .collect();
    geomean(&values)
}

fn main() {
    let cli = Cli::parse();
    cli.enforce("scaling");
    let scale = cli.scale;
    let store = cli.store();
    let suites = SuiteId::all();
    let runs = run_suites(&suites, scale, cli.jobs(), store.as_ref(), cli.engine);

    for (label, (model, config)) in [
        ("best HELIX (reduc1-dep1-fn2)", best_helix()),
        ("best PDOALL (reduc1-dep2-fn2)", best_pdoall()),
    ] {
        println!("GEOMEAN speedup vs core count — {label} ({scale:?} scale)");
        print!("{:<10}", "suite");
        for c in CORES {
            match c {
                Some(p) => print!(" {p:>7}"),
                None => print!(" {:>7}", "inf"),
            }
        }
        println!();
        for suite in suites {
            print!("{:<10}", suite.label());
            for c in CORES {
                print!(" {:>6.2}x", geomean_at(&runs, suite, model, config, c));
            }
            println!();
        }
        println!();
    }
    println!("reference points from the paper's related work: HELIX-RC reached 6.5x");
    println!("on 16 cores for SpecINT2006; SWARM/T4 19x on 64 cores (no frequent LCDs).");
    cli.finish("scaling");
}
