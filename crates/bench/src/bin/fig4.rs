//! Figure 4: per-benchmark speedups across all SPEC suites for the best
//! realistic PDOALL (`reduc1-dep2-fn2`) and best HELIX (`reduc1-dep1-fn2`)
//! configurations, with the winner marked.
//!
//! Profiles each benchmark once, then evaluates both rows for every
//! benchmark on `--jobs N` workers; the printed figure is byte-identical
//! for any worker count.
//!
//! ```text
//! cargo run --release -p lp-bench --bin fig4 [test|small|default] [--jobs N]
//! ```

use lp_bench::{log_bar, run_suites, write_explain, Cli, SweepTable};
use lp_runtime::{best_helix, best_pdoall, geomean};
use lp_suite::SuiteId;

fn main() {
    let cli = Cli::parse();
    cli.enforce("fig4");
    let scale = cli.scale;
    let jobs = cli.jobs();
    let store = cli.store();
    let spec = [
        SuiteId::Cint2000,
        SuiteId::Cfp2000,
        SuiteId::Cint2006,
        SuiteId::Cfp2006,
    ];
    let runs = run_suites(&spec, scale, jobs, store.as_ref(), cli.engine);

    let (pd_model, pd_config) = best_pdoall();
    let (hx_model, hx_config) = best_helix();
    let table = SweepTable::build(&runs, &[(pd_model, pd_config), (hx_model, hx_config)], jobs);

    println!("Figure 4 — per-benchmark speedups, all SPEC ({scale:?} scale)");
    println!(
        "{:<18} {:>12} {:>12}  winner  (log-scale bar: winner)",
        "benchmark", "PDOALL", "HELIX"
    );
    let mut pd_all = Vec::new();
    let mut hx_all = Vec::new();
    let max = (0..runs.len())
        .map(|i| table.report(i, 0).speedup.max(table.report(i, 1).speedup))
        .fold(1.0f64, f64::max);
    let mut pdoall_wins = 0usize;
    let mut attrs = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let pd = table.report(i, 0).speedup;
        let hx = table.report(i, 1).speedup;
        pd_all.push(pd);
        hx_all.push(hx);
        let winner = if pd > hx { "PDOALL" } else { "HELIX" };
        if pd > hx {
            pdoall_wins += 1;
        }
        if cli.explain_out.is_some() {
            // Attribute under each benchmark's winning configuration.
            let (model, config) = if pd > hx {
                (pd_model, pd_config)
            } else {
                (hx_model, hx_config)
            };
            attrs.push(run.study.explain(model, config).1);
        }
        println!(
            "{:<18} {:>11.2}x {:>11.2}x  {:<6}  {}",
            run.name,
            pd,
            hx,
            winner,
            log_bar(pd.max(hx), max, 30)
        );
    }
    if let Some(path) = &cli.explain_out {
        write_explain(path, &attrs, None);
    }
    println!(
        "\nGEOMEAN: PDOALL {:.2}x, HELIX {:.2}x; PDOALL wins {} of {} benchmarks",
        geomean(&pd_all),
        geomean(&hx_all),
        pdoall_wins,
        runs.len()
    );
    println!("paper reference (Fig. 4): PDOALL wins on 179.art, 450.soplex, 482.sphinx3, 429.mcf");
    cli.finish("fig4");
}
