//! Table I: the ordering-constraint census — how many register LCDs are
//! computable / reduction / predictable / unpredictable, how many loops
//! carry frequent vs infrequent memory LCDs, and how many loops contain
//! calls (the structural constraint), per suite and overall.
//!
//! ```text
//! cargo run --release -p lp-bench --bin table1 [test|small|default]
//! ```

use lp_bench::{run_suites, Cli};
use lp_runtime::Census;
use lp_suite::SuiteId;

fn main() {
    let cli = Cli::parse();
    cli.enforce("table1");
    let scale = cli.scale;
    let store = cli.store();
    let runs = run_suites(
        &SuiteId::all(),
        scale,
        cli.jobs(),
        store.as_ref(),
        cli.engine,
    );

    println!("Table I — ordering constraints and dependencies, quantified ({scale:?} scale)\n");
    for suite in SuiteId::all() {
        let census = Census::over(
            runs.iter()
                .filter(|r| r.suite == suite)
                .map(|r| r.study.profile()),
        );
        println!("[{suite}]");
        println!("{census}\n");
    }
    let total = Census::over(runs.iter().map(|r| r.study.profile()));
    println!("[all suites]");
    println!("{total}");
    cli.finish("table1");
}
