//! Figure 1: the three parallel execution models, rendered as ASCII
//! timelines from the *actual cost models* on a toy 4-iteration loop with
//! one loop-carried dependency detected at iteration 2.
//!
//! ```text
//! cargo run -p lp-bench --bin fig1
//! ```

use lp_bench::Cli;
use lp_runtime::model::{doall_cost, helix_cost, pdoall_cost};

const ITER_LEN: u64 = 8;
const N: usize = 4;

fn draw(label: &str, starts: &[u64], total: u64) {
    println!("{label}");
    for (k, &s) in starts.iter().enumerate() {
        let pad = " ".repeat(s as usize);
        let body = "#".repeat(ITER_LEN as usize);
        println!("  iter {k}: {pad}{body}");
    }
    println!("  time ->  0{}{total}\n", "-".repeat(total as usize));
}

fn main() {
    let cli = Cli::parse();
    cli.enforce("fig1");
    let lens = [ITER_LEN; N];
    println!("Figure 1 — parallel execution models (toy loop, {N} iterations, LCD at iter 2)\n");

    // (a) DOALL: no conflicts assumed — all iterations start together.
    let cost = doall_cost(&lens, false, false).unwrap();
    draw(
        "(a) DOALL (conflict-free case): all iterations start at once",
        &[0; N],
        cost,
    );

    // (b) Partial-DOALL: the conflict at iteration 2 restarts the phase.
    let conflicts = [2u32];
    let cost = pdoall_cost(&lens, &conflicts, false).unwrap();
    let mut starts = [0u64; N];
    let mut phase_start = 0;
    let mut ci = 0;
    let mut phase_longest = 0;
    for k in 0..N {
        if ci < conflicts.len() && conflicts[ci] as usize == k {
            ci += 1;
            phase_start += phase_longest;
            phase_longest = 0;
        }
        starts[k] = phase_start;
        phase_longest = phase_longest.max(lens[k]);
    }
    draw(
        "(b) Partial-DOALL: LCD detected at iter 2 delays the younger iterations",
        &starts,
        cost,
    );

    // (c) HELIX: synchronization skews every iteration by delta.
    let delta = 3u64;
    let cost = helix_cost(&lens, delta, false).unwrap();
    let starts: Vec<u64> = (0..N as u64).map(|k| k * delta).collect();
    draw(
        "(c) DOACROSS / HELIX: per-iteration synchronization (delta = 3)",
        &starts,
        cost,
    );

    println!(
        "costs: DOALL {}, PDOALL {}, HELIX {}, serial {}",
        doall_cost(&lens, false, false).unwrap(),
        pdoall_cost(&lens, &conflicts, false).unwrap(),
        helix_cost(&lens, delta, false).unwrap(),
        ITER_LEN * N as u64,
    );
    cli.finish("fig1");
}
