//! Table II: the configuration flags and their definitions, generated
//! from the implemented `Config` lattice so the table can never drift
//! from the code.
//!
//! ```text
//! cargo run -p lp-bench --bin table2
//! ```

use lp_bench::Cli;
use lp_runtime::{Config, DepMode, FnMode, ReducMode};

fn definition(config: &Config) -> [&'static str; 3] {
    let reduc = match config.reduc {
        ReducMode::Reduc0 => "reductions are treated as non-computable LCDs",
        ReducMode::Reduc1 => "reductions are considered parallel with no overheads",
    };
    let dep = match config.dep {
        DepMode::Dep0 => "non-computable LCDs are not considered parallelizable",
        DepMode::Dep1 => "non-computable LCDs are lowered to memory (frequent memory LCDs)",
        DepMode::Dep2 => "non-computable LCDs are accelerated using 'realistic' value prediction",
        DepMode::Dep3 => {
            "non-computable register LCDs are accelerated using perfect value prediction"
        }
    };
    let fnm = match config.fnm {
        FnMode::Fn0 => "loops with any function calls are marked as sequential",
        FnMode::Fn1 => "only calls identified by the compiler as pure are considered parallel",
        FnMode::Fn2 => "pure, thread-safe library, and instrumented user calls can be parallel",
        FnMode::Fn3 => "all function calls can be parallelized",
    };
    [reduc, dep, fnm]
}

fn main() {
    let cli = Cli::parse();
    cli.enforce("table2");
    println!("Table II — configuration flags and their definitions\n");
    let mut seen = std::collections::BTreeSet::new();
    for config in Config::all() {
        for (flag, text) in ["reduc", "dep", "fn"].iter().zip(definition(&config)) {
            let key = format!("{flag}:{text}");
            if seen.insert(key) {
                let name = config
                    .to_string()
                    .split('-')
                    .find(|p| p.starts_with(flag))
                    .unwrap()
                    .to_string();
                println!("  -{name:<8} {text}");
            }
        }
    }
    println!("\nmodels: DOALL | Partial-DOALL | HELIX-style (see lp_runtime::ExecModel)");
    cli.finish("table2");
}
